//! The `server.*` metric schema reported by `semitri-server`.
//!
//! Like [`MetricsObserver`](crate::MetricsObserver) for the `stage.*`
//! schema, [`ServerMetrics`] pre-resolves every handle once at startup so
//! the request hot path is a handful of atomic operations, and registers
//! the full schema up front so a `/metrics` scrape shows every series
//! from the first request onward.

use crate::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Pre-resolved handles for every `server.*` metric.
pub struct ServerMetrics {
    /// `server.connections` — TCP connections accepted.
    pub connections: Arc<Counter>,
    /// `server.requests` — HTTP requests parsed (any endpoint).
    pub requests: Arc<Counter>,
    /// `server.responses_2xx` — successful responses written.
    pub responses_2xx: Arc<Counter>,
    /// `server.responses_4xx` — client-error responses written.
    pub responses_4xx: Arc<Counter>,
    /// `server.responses_5xx` — server-error responses written (includes
    /// panics caught at the request boundary).
    pub responses_5xx: Arc<Counter>,
    /// `server.request_secs` — wall-clock latency per request, all
    /// endpoints.
    pub request_secs: Arc<Histogram>,
    /// `server.annotate_secs` — wall-clock latency of `POST /annotate`
    /// bodies only (parse + pipeline + encode).
    pub annotate_secs: Arc<Histogram>,
    /// `server.sessions` — live streaming sessions right now.
    pub sessions: Arc<Gauge>,
    /// `server.sessions_opened` — sessions created by a first push.
    pub sessions_opened: Arc<Counter>,
    /// `server.sessions_flushed` — sessions ended by an explicit flush.
    pub sessions_flushed: Arc<Counter>,
    /// `server.sessions_evicted` — sessions dropped by LRU pressure.
    pub sessions_evicted: Arc<Counter>,
    /// `server.evicted_records` — accepted records that were inside
    /// sessions when LRU pressure closed them (their final episodes are
    /// annotated at eviction, not dropped).
    pub evicted_records: Arc<Counter>,
    /// `server.backpressure_rejections` — pushes refused because a queue
    /// bound was hit (HTTP 429).
    pub backpressure_rejections: Arc<Counter>,
    /// `server.generation` — id of the snapshot generation currently
    /// serving reads (bumps on every `/admin/update` publish).
    pub generation: Arc<Gauge>,
    /// `server.updates_applied` — mutations folded into published
    /// generations over the server's lifetime.
    pub updates_applied: Arc<Counter>,
}

impl ServerMetrics {
    /// Every counter/gauge name in the schema, in report order.
    pub const COUNTERS_AND_GAUGES: [&'static str; 13] = [
        "server.connections",
        "server.requests",
        "server.responses_2xx",
        "server.responses_4xx",
        "server.responses_5xx",
        "server.sessions",
        "server.sessions_opened",
        "server.sessions_flushed",
        "server.sessions_evicted",
        "server.evicted_records",
        "server.backpressure_rejections",
        "server.generation",
        "server.updates_applied",
    ];

    /// Every histogram name in the schema.
    pub const HISTOGRAMS: [&'static str; 2] = ["server.request_secs", "server.annotate_secs"];

    /// Resolves (and thereby registers) every `server.*` metric in
    /// `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            connections: registry.counter("server.connections"),
            requests: registry.counter("server.requests"),
            responses_2xx: registry.counter("server.responses_2xx"),
            responses_4xx: registry.counter("server.responses_4xx"),
            responses_5xx: registry.counter("server.responses_5xx"),
            request_secs: registry.histogram("server.request_secs"),
            annotate_secs: registry.histogram("server.annotate_secs"),
            sessions: registry.gauge("server.sessions"),
            sessions_opened: registry.counter("server.sessions_opened"),
            sessions_flushed: registry.counter("server.sessions_flushed"),
            sessions_evicted: registry.counter("server.sessions_evicted"),
            evicted_records: registry.counter("server.evicted_records"),
            backpressure_rejections: registry.counter("server.backpressure_rejections"),
            generation: registry.gauge("server.generation"),
            updates_applied: registry.counter("server.updates_applied"),
        }
    }

    /// Classifies a response status code into the 2xx/4xx/5xx counters
    /// (other classes are counted as 5xx — the server never emits them).
    pub fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_registers_up_front() {
        let registry = MetricsRegistry::new();
        let _m = ServerMetrics::new(&registry);
        let snap = registry.snapshot();
        for name in ServerMetrics::COUNTERS_AND_GAUGES {
            let present = snap.counters.contains_key(name) || snap.gauges.contains_key(name);
            assert!(present, "{name} not pre-registered");
        }
        for name in ServerMetrics::HISTOGRAMS {
            assert!(snap.histogram(name).is_some(), "{name} not pre-registered");
        }
    }

    #[test]
    fn response_classes_route_to_the_right_counter() {
        let registry = MetricsRegistry::new();
        let m = ServerMetrics::new(&registry);
        m.count_response(200);
        m.count_response(204);
        m.count_response(404);
        m.count_response(429);
        m.count_response(500);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.responses_2xx"), 2);
        assert_eq!(snap.counter("server.responses_4xx"), 2);
        assert_eq!(snap.counter("server.responses_5xx"), 1);
    }

    #[test]
    fn session_gauge_tracks_open_and_close() {
        let registry = MetricsRegistry::new();
        let m = ServerMetrics::new(&registry);
        m.sessions.add(1);
        m.sessions_opened.inc();
        m.sessions.add(1);
        m.sessions_opened.inc();
        m.sessions.add(-1);
        m.sessions_flushed.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.sessions_opened"), 2);
        assert_eq!(snap.counter("server.sessions_flushed"), 1);
        assert_eq!(snap.gauges["server.sessions"], 1);
    }
}
