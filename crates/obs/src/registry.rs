//! Named-metric registry: counters, gauges and histograms, with
//! point-in-time snapshots renderable as a human table or JSON lines.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (pool sizes, queue depths, in-flight work).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics. Handles are `Arc`s resolved once and then
/// updated lock-free; the registry lock is only taken on registration and
/// snapshot.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock");
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock");
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An immutable copy of a [`MetricsRegistry`], with report formatters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The histogram snapshot named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The counter value named `name` (`0` when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders every metric as an aligned, human-readable table.
    /// Histogram latencies are shown in milliseconds.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("counters/gauges:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "histograms (ms): {:<19} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "", "count", "min", "mean", "p50", "p95", "p99", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<33} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                    name,
                    h.count,
                    h.min * 1e3,
                    h.mean() * 1e3,
                    h.p50() * 1e3,
                    h.p95() * 1e3,
                    h.p99() * 1e3,
                    h.max * 1e3,
                ));
            }
        }
        out
    }

    /// Renders every metric as one JSON object per line (seconds, exact
    /// values) — machine-ingestible without a JSON dependency downstream.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"min\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}\n",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.mean()),
                json_f64(h.p50()),
                json_f64(h.p95()),
                json_f64(h.p99()),
                json_f64(h.max),
            ));
        }
        out
    }
}

/// JSON-safe float rendering (JSON has no Infinity/NaN literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        r.gauge("g").set(-5);
        r.gauge("g").add(1);
        assert_eq!(r.gauge("g").get(), -4);
        r.histogram("h").record(0.5);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_is_a_consistent_copy() {
        let r = MetricsRegistry::new();
        r.counter("jobs").add(7);
        r.histogram("lat").record(0.010);
        let snap = r.snapshot();
        r.counter("jobs").add(100); // must not affect the snapshot
        assert_eq!(snap.counter("jobs"), 7);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn table_and_json_render_every_metric() {
        let r = MetricsRegistry::new();
        r.counter("stage.point.records").add(4);
        r.gauge("batch.threads").set(8);
        r.histogram("stage.point.secs").record(0.002);
        let snap = r.snapshot();
        let table = snap.render_table();
        assert!(table.contains("stage.point.records"), "{table}");
        assert!(table.contains("batch.threads"), "{table}");
        assert!(table.contains("stage.point.secs"), "{table}");
        let json = snap.to_json_lines();
        assert_eq!(json.lines().count(), 3);
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        // every line is a braces-balanced object
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn concurrent_registration_yields_one_metric() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        r.counter("shared").inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("shared"), 2_000);
    }
}
