//! # semitri-obs — the SeMiTri observability substrate
//!
//! The paper evaluates SeMiTri *per layer*: Fig. 17 reports separate
//! latencies for episode computation, the region (landuse) join, line
//! (map-matching) annotation and point (HMM) annotation. This crate is
//! the production counterpart of that methodology — a dependency-free
//! metrics substrate every annotation path reports through:
//!
//! * [`Counter`] / [`Gauge`] — atomic scalars;
//! * [`Histogram`] — concurrent log-bucketed latency histograms with
//!   exact min/mean/max and bucket-resolved p50/p95/p99;
//! * [`MetricsRegistry`] — named metrics with snapshot / table / JSON-line
//!   reporting;
//! * [`Stage`] + [`PipelineObserver`] — span-style stage hooks fired by
//!   the sequential pipeline, the streaming annotator and the batch pool,
//!   so all three report the *same* per-layer schema;
//! * [`MetricsObserver`] — the canonical observer routing stage spans
//!   into a registry;
//! * [`ServerMetrics`] — pre-resolved handles for the `server.*` schema
//!   reported by the `semitri-server` annotation server;
//! * [`StoreMetrics`] — pre-resolved handles for the `store.*` schema
//!   published from the columnar trajectory store's own counters
//!   (compression ratios, block-skip hit rates, query counts).
//!
//! ## Allocation discipline of the observed stages
//!
//! The spans this crate times wrap the pipeline's hot paths, which are
//! engineered to perform **no per-record heap allocation** once their
//! caller-owned scratch buffers reach steady state — so a latency
//! histogram here measures the kernels, not the allocator:
//!
//! * **Episode** — cleaning and segmentation walk the record slice with
//!   index cursors (no temporary per-fix collections); allocations happen
//!   per trajectory for the output buffers.
//! * **Region** — the Algorithm 1 landuse join runs R\*-tree lookups
//!   through a reusable traversal stack (`RangeScratch`); labels are
//!   interned `Arc<str>`s cloned by reference count, never re-formatted.
//! * **Line** — map matching threads a `MatchScratch` arena (candidate
//!   buffers, epoch-stamped slot map, kernel-weight rows, cell cache)
//!   through every episode; per-fix work is pure arithmetic over those
//!   buffers.
//! * **Point** — POI grid lookups are closure-based with no temporary
//!   collections; the Viterbi trellis is sized per *stop* (episode
//!   granularity), never per record.
//!
//! Per-*episode* and per-*trajectory* outputs (the annotation vectors
//! themselves) still allocate — they are the result, not the hot path.
//! The `hotpath` benchmark in `semitri-bench` tracks the per-unit cost of
//! each stage kernel and fails CI if the matcher regresses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;
mod server;
mod store;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use server::ServerMetrics;
pub use store::StoreMetrics;

use std::sync::Arc;

/// The annotation layers of the pipeline (the paper's per-layer
/// evaluation axes), in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Trajectory Computation Layer: cleaning + stop/move segmentation.
    Episode,
    /// Semantic Region Annotation Layer: landuse spatial join.
    Region,
    /// Semantic Line Annotation Layer: map matching + mode inference.
    Line,
    /// Semantic Point Annotation Layer: HMM stop annotation.
    Point,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; 4] = [Stage::Episode, Stage::Region, Stage::Line, Stage::Point];

    /// Stable lowercase identifier used in metric names and reports.
    pub fn id(self) -> &'static str {
        match self {
            Stage::Episode => "episode",
            Stage::Region => "region",
            Stage::Line => "line",
            Stage::Point => "point",
        }
    }

    /// Dense index (`Stage::ALL[stage.index()] == stage`).
    pub fn index(self) -> usize {
        match self {
            Stage::Episode => 0,
            Stage::Region => 1,
            Stage::Line => 2,
            Stage::Point => 3,
        }
    }

    /// Name of the latency histogram for this stage.
    pub fn secs_metric(self) -> &'static str {
        match self {
            Stage::Episode => "stage.episode.secs",
            Stage::Region => "stage.region.secs",
            Stage::Line => "stage.line.secs",
            Stage::Point => "stage.point.secs",
        }
    }

    /// Name of the processed-record counter for this stage.
    pub fn records_metric(self) -> &'static str {
        match self {
            Stage::Episode => "stage.episode.records",
            Stage::Region => "stage.region.records",
            Stage::Line => "stage.line.records",
            Stage::Point => "stage.point.records",
        }
    }

    /// Name of the span counter for this stage.
    pub fn calls_metric(self) -> &'static str {
        match self {
            Stage::Episode => "stage.episode.calls",
            Stage::Region => "stage.region.calls",
            Stage::Line => "stage.line.calls",
            Stage::Point => "stage.point.calls",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// What the preprocessing stage had to repair before a feed could be
/// segmented. Counts are per-trajectory (the pipeline) or cumulative
/// (the streaming annotator). Offline, reordered fixes are *repaired*
/// (sorted back into place, counted but kept), so
/// `input == kept + dropped_nonfinite + deduped + dropped_conflicts + dropped_outliers`;
/// the streaming annotator cannot rewrite the past and drops them, so
/// there `reordered` joins the right-hand side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Fixes seen on input.
    pub input: u64,
    /// Fixes that survived preprocessing (what segmentation runs on).
    pub kept: u64,
    /// Fixes dropped for a NaN/∞ coordinate or timestamp.
    pub dropped_nonfinite: u64,
    /// Fixes that arrived out of timestamp order and were re-sorted
    /// (offline paths) or dropped (streaming, which cannot rewrite the
    /// past).
    pub reordered: u64,
    /// Co-located duplicate fixes (same timestamp, < 1 m apart) collapsed
    /// to the first arrival.
    pub deduped: u64,
    /// Conflicting same-instant fixes (same timestamp, far apart) dropped
    /// in favor of the first arrival.
    pub dropped_conflicts: u64,
    /// Fixes dropped by the physical speed bound (teleports).
    pub dropped_outliers: u64,
}

impl CleaningReport {
    /// Metric names for the preprocessing counters, in report order.
    /// These are **counters, not histograms**: `stage.preprocess` is a
    /// sub-span of the episode stage, so it has no latency histogram of
    /// its own and the `stage.*.secs` schema stays exactly [`Stage::ALL`].
    pub const METRICS: [&'static str; 6] = [
        "stage.preprocess.records",
        "stage.preprocess.kept",
        "stage.preprocess.dropped",
        "stage.preprocess.reordered",
        "stage.preprocess.deduped",
        "stage.preprocess.calls",
    ];

    /// Total fixes dropped outright (non-finite + conflicting +
    /// speed-outlier); reordered and deduped fixes are repairs, not drops.
    pub fn dropped(&self) -> u64 {
        self.dropped_nonfinite + self.dropped_conflicts + self.dropped_outliers
    }

    /// Accumulates `other` into `self` (fleet- or session-level totals).
    pub fn merge(&mut self, other: &CleaningReport) {
        self.input += other.input;
        self.kept += other.kept;
        self.dropped_nonfinite += other.dropped_nonfinite;
        self.reordered += other.reordered;
        self.deduped += other.deduped;
        self.dropped_conflicts += other.dropped_conflicts;
        self.dropped_outliers += other.dropped_outliers;
    }

    /// The change from `earlier` (a previous snapshot of a cumulative
    /// report) to `self`, saturating at zero per field.
    pub fn delta_since(&self, earlier: &CleaningReport) -> CleaningReport {
        CleaningReport {
            input: self.input.saturating_sub(earlier.input),
            kept: self.kept.saturating_sub(earlier.kept),
            dropped_nonfinite: self
                .dropped_nonfinite
                .saturating_sub(earlier.dropped_nonfinite),
            reordered: self.reordered.saturating_sub(earlier.reordered),
            deduped: self.deduped.saturating_sub(earlier.deduped),
            dropped_conflicts: self
                .dropped_conflicts
                .saturating_sub(earlier.dropped_conflicts),
            dropped_outliers: self
                .dropped_outliers
                .saturating_sub(earlier.dropped_outliers),
        }
    }
}

/// Span-style hooks fired around each pipeline stage. Implementations
/// must be cheap and thread-safe: the batch pool fires them from every
/// worker concurrently.
pub trait PipelineObserver: Send + Sync {
    /// A stage began for trajectory `trajectory_id`.
    fn on_stage_start(&self, stage: Stage, trajectory_id: u64) {
        let _ = (stage, trajectory_id);
    }

    /// A stage finished: it processed `records` records in
    /// `elapsed_secs` wall-clock seconds.
    fn on_stage_end(&self, stage: Stage, trajectory_id: u64, records: usize, elapsed_secs: f64);

    /// The preprocessing sub-stage cleaned a feed for `trajectory_id`
    /// (0 from the streaming annotator, which has no trajectory identity).
    /// Fires before the episode stage span; default is a no-op so
    /// existing observers are unaffected.
    fn on_preprocess(&self, trajectory_id: u64, report: &CleaningReport) {
        let _ = (trajectory_id, report);
    }

    /// A stage reported an auxiliary named counter (e.g.
    /// [`KERNEL_FALLBACK_METRIC`], the matcher's forward-row cache-miss
    /// recomputations). `name` is a `'static` metric name from this
    /// crate's schema constants; default is a no-op so existing observers
    /// are unaffected. Zero deltas may be skipped by callers.
    fn on_counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }
}

/// Counter metric: kernel weights the matcher recomputed because the
/// symmetric forward-row cache missed (ring eviction or pair beyond the
/// row stride). High values mean the `max_neighbors` stride is too small
/// for the data's neighbor density — wasted `exp` calls, never drift (the
/// recompute is bit-identical to the cached row).
pub const KERNEL_FALLBACK_METRIC: &str = "stage.line.kernel_fallback";

/// An observer that discards every event (useful as a default and in
/// benchmarks isolating observer overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl PipelineObserver for NullObserver {
    fn on_stage_end(&self, _: Stage, _: u64, _: usize, _: f64) {}
}

/// Per-stage metric handles, resolved once.
struct StageMetrics {
    secs: Arc<Histogram>,
    records: Arc<Counter>,
    calls: Arc<Counter>,
}

/// The canonical [`PipelineObserver`]: routes every stage span into a
/// [`MetricsRegistry`] under the `stage.<id>.{secs,records,calls}`
/// schema. Handles are pre-resolved, so the hot path is three atomic
/// operations with no allocation or locking.
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    stages: [StageMetrics; 4],
    preprocess: [Arc<Counter>; 6],
}

impl MetricsObserver {
    /// Builds an observer over `registry`, registering every stage metric
    /// up front (so the schema is visible even before any trajectory runs).
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let stages = Stage::ALL.map(|s| StageMetrics {
            secs: registry.histogram(s.secs_metric()),
            records: registry.counter(s.records_metric()),
            calls: registry.counter(s.calls_metric()),
        });
        let preprocess = CleaningReport::METRICS.map(|name| registry.counter(name));
        Self {
            registry,
            stages,
            preprocess,
        }
    }

    /// The registry this observer reports into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl PipelineObserver for MetricsObserver {
    fn on_stage_end(&self, stage: Stage, _trajectory_id: u64, records: usize, elapsed_secs: f64) {
        let m = &self.stages[stage.index()];
        m.secs.record(elapsed_secs);
        m.records.add(records as u64);
        m.calls.inc();
    }

    fn on_preprocess(&self, _trajectory_id: u64, report: &CleaningReport) {
        let [records, kept, dropped, reordered, deduped, calls] = &self.preprocess;
        records.add(report.input);
        kept.add(report.kept);
        dropped.add(report.dropped());
        reordered.add(report.reordered);
        deduped.add(report.deduped);
        calls.inc();
    }

    fn on_counter(&self, name: &'static str, delta: u64) {
        // auxiliary counters are rare (once per trajectory, not per fix),
        // so the registry lookup here is off the hot path
        self.registry.counter(name).add(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ids_and_indexes_are_dense_and_stable() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::ALL[s.index()], s);
            assert!(s.secs_metric().contains(s.id()));
            assert!(s.records_metric().contains(s.id()));
            assert!(s.calls_metric().contains(s.id()));
            assert_eq!(format!("{s}"), s.id());
        }
    }

    #[test]
    fn metrics_observer_registers_schema_up_front() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = MetricsObserver::new(registry.clone());
        // schema visible before any span fires
        let snap = registry.snapshot();
        for s in Stage::ALL {
            assert!(snap.histogram(s.secs_metric()).is_some(), "{s}");
            assert_eq!(snap.counter(s.records_metric()), 0);
        }
        obs.on_stage_end(Stage::Line, 7, 120, 0.004);
        obs.on_stage_end(Stage::Line, 8, 80, 0.006);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(Stage::Line.records_metric()), 200);
        assert_eq!(snap.counter(Stage::Line.calls_metric()), 2);
        let h = snap.histogram(Stage::Line.secs_metric()).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0.004);
        assert_eq!(h.max, 0.006);
    }

    #[test]
    fn null_observer_is_a_no_op() {
        NullObserver.on_stage_start(Stage::Episode, 1);
        NullObserver.on_stage_end(Stage::Episode, 1, 10, 0.1);
        NullObserver.on_preprocess(1, &CleaningReport::default());
        NullObserver.on_counter(KERNEL_FALLBACK_METRIC, 3);
    }

    #[test]
    fn auxiliary_counters_accumulate_through_on_counter() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = MetricsObserver::new(registry.clone());
        obs.on_counter(KERNEL_FALLBACK_METRIC, 5);
        obs.on_counter(KERNEL_FALLBACK_METRIC, 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(KERNEL_FALLBACK_METRIC), 7);
        assert!(
            snap.histogram(KERNEL_FALLBACK_METRIC).is_none(),
            "auxiliary counter must not be a histogram"
        );
    }

    #[test]
    fn cleaning_report_merge_delta_and_metrics() {
        let a = CleaningReport {
            input: 100,
            kept: 90,
            dropped_nonfinite: 4,
            reordered: 7,
            deduped: 3,
            dropped_conflicts: 2,
            dropped_outliers: 1,
        };
        assert_eq!(a.dropped(), 7);
        assert_eq!(a.kept + a.dropped() + a.deduped, a.input);

        let mut total = CleaningReport::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.input, 200);
        assert_eq!(total.delta_since(&a), a);
        assert_eq!(a.delta_since(&total), CleaningReport::default());

        let registry = Arc::new(MetricsRegistry::new());
        let obs = MetricsObserver::new(registry.clone());
        // preprocess counters are registered up front, and stay counters:
        // the stage.* histogram set must remain exactly Stage::ALL
        let snap = registry.snapshot();
        for name in CleaningReport::METRICS {
            assert_eq!(snap.counter(name), 0, "{name} not pre-registered");
            assert!(
                snap.histogram(name).is_none(),
                "{name} must not be a histogram"
            );
        }
        obs.on_preprocess(3, &a);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stage.preprocess.records"), 100);
        assert_eq!(snap.counter("stage.preprocess.kept"), 90);
        assert_eq!(snap.counter("stage.preprocess.dropped"), 7);
        assert_eq!(snap.counter("stage.preprocess.reordered"), 7);
        assert_eq!(snap.counter("stage.preprocess.deduped"), 3);
        assert_eq!(snap.counter("stage.preprocess.calls"), 1);
    }
}
