//! The `store.*` metric schema reported by `semitri-store`.
//!
//! The columnar store keeps its own lock-free counters (blocks written,
//! bytes before/after compression, block-skip hit rates, query counts);
//! [`StoreMetrics`] mirrors that state into a [`MetricsRegistry`] so a
//! `/metrics` scrape shows the storage engine next to the `stage.*` and
//! `server.*` schemas. Storage state is *published* (gauges set from a
//! snapshot, typically right before a scrape), while query latencies are
//! *recorded* live into the `store.query_secs` histogram by whoever
//! times the query — the store itself stays free of timing syscalls on
//! its read path.

use crate::{Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Pre-resolved handles for every `store.*` metric.
pub struct StoreMetrics {
    /// `store.trajectories` — registered trajectory metadata rows.
    pub trajectories: Arc<Gauge>,
    /// `store.episodes` — stored episode rows.
    pub episodes: Arc<Gauge>,
    /// `store.ssts` — stored (alive) semantic trajectories.
    pub ssts: Arc<Gauge>,
    /// `store.fix_count` — GPS fixes held in compressed fix columns.
    pub fix_count: Arc<Gauge>,
    /// `store.fix_blocks` — fix-column blocks written.
    pub fix_blocks: Arc<Gauge>,
    /// `store.fix_raw_bytes` — what the fixes would occupy row-form.
    pub fix_raw_bytes: Arc<Gauge>,
    /// `store.fix_compressed_bytes` — compressed fix payload held.
    pub fix_compressed_bytes: Arc<Gauge>,
    /// `store.live_tuples` — alive semantic tuples in the matrix.
    pub live_tuples: Arc<Gauge>,
    /// `store.dead_tuples` — tombstoned tuples awaiting compaction.
    pub dead_tuples: Arc<Gauge>,
    /// `store.label_bits` — bits held by the bitpacked label streams.
    pub label_bits: Arc<Gauge>,
    /// `store.time_queries` — time-window episode queries served.
    pub time_queries: Arc<Gauge>,
    /// `store.rect_queries` — spatial episode queries served.
    pub rect_queries: Arc<Gauge>,
    /// `store.olap_queries` — warehouse aggregate scans served.
    pub olap_queries: Arc<Gauge>,
    /// `store.ep_blocks_checked` — episode blocks examined by queries.
    pub ep_blocks_checked: Arc<Gauge>,
    /// `store.ep_blocks_skipped` — blocks skipped via min/max summaries.
    pub ep_blocks_skipped: Arc<Gauge>,
    /// `store.log_bytes` — durable log size (0 when in-memory).
    pub log_bytes: Arc<Gauge>,
    /// `store.query_secs` — wall-clock latency of store queries, timed
    /// by the caller (the server's write-through path).
    pub query_secs: Arc<Histogram>,
}

impl StoreMetrics {
    /// Every gauge name in the schema, in report order.
    pub const GAUGES: [&'static str; 16] = [
        "store.trajectories",
        "store.episodes",
        "store.ssts",
        "store.fix_count",
        "store.fix_blocks",
        "store.fix_raw_bytes",
        "store.fix_compressed_bytes",
        "store.live_tuples",
        "store.dead_tuples",
        "store.label_bits",
        "store.time_queries",
        "store.rect_queries",
        "store.olap_queries",
        "store.ep_blocks_checked",
        "store.ep_blocks_skipped",
        "store.log_bytes",
    ];

    /// Every histogram name in the schema.
    pub const HISTOGRAMS: [&'static str; 1] = ["store.query_secs"];

    /// Resolves (and thereby registers) every `store.*` metric in
    /// `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            trajectories: registry.gauge("store.trajectories"),
            episodes: registry.gauge("store.episodes"),
            ssts: registry.gauge("store.ssts"),
            fix_count: registry.gauge("store.fix_count"),
            fix_blocks: registry.gauge("store.fix_blocks"),
            fix_raw_bytes: registry.gauge("store.fix_raw_bytes"),
            fix_compressed_bytes: registry.gauge("store.fix_compressed_bytes"),
            live_tuples: registry.gauge("store.live_tuples"),
            dead_tuples: registry.gauge("store.dead_tuples"),
            label_bits: registry.gauge("store.label_bits"),
            time_queries: registry.gauge("store.time_queries"),
            rect_queries: registry.gauge("store.rect_queries"),
            olap_queries: registry.gauge("store.olap_queries"),
            ep_blocks_checked: registry.gauge("store.ep_blocks_checked"),
            ep_blocks_skipped: registry.gauge("store.ep_blocks_skipped"),
            log_bytes: registry.gauge("store.log_bytes"),
            query_secs: registry.histogram("store.query_secs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_registers_up_front() {
        let registry = MetricsRegistry::new();
        let _m = StoreMetrics::new(&registry);
        let snap = registry.snapshot();
        for name in StoreMetrics::GAUGES {
            assert!(snap.gauges.contains_key(name), "{name} not pre-registered");
        }
        for name in StoreMetrics::HISTOGRAMS {
            assert!(snap.histogram(name).is_some(), "{name} not pre-registered");
        }
    }

    #[test]
    fn gauges_reflect_the_latest_publish() {
        let registry = MetricsRegistry::new();
        let m = StoreMetrics::new(&registry);
        m.fix_count.set(1_000);
        m.fix_compressed_bytes.set(3_600);
        m.fix_count.set(2_000);
        let snap = registry.snapshot();
        assert_eq!(snap.gauges["store.fix_count"], 2_000);
        assert_eq!(snap.gauges["store.fix_compressed_bytes"], 3_600);
    }
}
