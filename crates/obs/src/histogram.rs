//! Lock-free log-bucketed latency histograms.
//!
//! A [`Histogram`] spreads samples over geometrically-spaced buckets
//! (16 per decade from 1 ns to 1000 s) and additionally tracks the exact
//! count, sum, minimum and maximum with atomic operations, so `min`,
//! `mean` and `max` are exact while quantiles are resolved to bucket
//! precision (≤ ~15% relative error) and clamped into `[min, max]`.
//! Recording is wait-free per bucket and safe from any number of threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per decade of the geometric grid.
const PER_DECADE: usize = 16;
/// Decades covered: 1e-9 s (1 ns) .. 1e3 s.
const DECADES: usize = 12;
/// Smallest bucket upper bound, in seconds.
const MIN_BOUND: f64 = 1e-9;
/// Bucket count, including the underflow (`<= MIN_BOUND`) and overflow
/// (`> 1e3`) buckets.
pub(crate) const BUCKETS: usize = PER_DECADE * DECADES + 2;

/// Upper bound of bucket `i` (the underflow bucket is `MIN_BOUND`, the
/// overflow bucket is unbounded and reports `f64::INFINITY`).
fn bucket_upper_bound(i: usize) -> f64 {
    if i >= BUCKETS - 1 {
        return f64::INFINITY;
    }
    MIN_BOUND * 10f64.powf(i as f64 / PER_DECADE as f64)
}

/// Bucket index for a (non-negative, finite) sample.
fn bucket_index(v: f64) -> usize {
    if v <= MIN_BOUND {
        return 0;
    }
    // bucket i (i >= 1) covers (ub(i-1), ub(i)]
    let z = ((v / MIN_BOUND).log10() * PER_DECADE as f64).ceil();
    if z >= (BUCKETS - 1) as f64 {
        BUCKETS - 1
    } else {
        (z as usize).max(1)
    }
}

/// A concurrent log-bucketed histogram of non-negative `f64` samples
/// (seconds, by convention).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Exact sum, stored as `f64` bits and updated with a CAS loop.
    sum_bits: AtomicU64,
    /// Exact minimum, `f64::INFINITY` bits when empty.
    min_bits: AtomicU64,
    /// Exact maximum, `f64::NEG_INFINITY` bits when empty.
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample. Negative samples are clamped to zero; NaN is
    /// ignored (a poisoned upstream computation must not poison the
    /// telemetry).
    pub fn record(&self, sample: f64) {
        if sample.is_nan() {
            return;
        }
        let v = sample.max(0.0);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |s| s + v);
        fetch_update_f64(&self.min_bits, |m| m.min(v));
        fetch_update_f64(&self.max_bits, |m| m.max(v));
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            buckets,
        }
    }
}

/// CAS-loop atomic update of an `f64` stored as bits.
fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Exact minimum (`0.0` when empty).
    pub min: f64,
    /// Exact maximum (`0.0` when empty).
    pub max: f64,
    /// Per-bucket sample counts (log-spaced; see module docs).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Exact arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the nearest-rank sample, clamped into `[min, max]` — so
    /// quantiles are monotone in `q` and never leave the observed range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), 0.0);
    }

    #[test]
    fn exact_stats_and_bounded_quantiles() {
        let h = Histogram::new();
        let samples = [0.001, 0.002, 0.004, 0.010, 0.100];
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.001);
        assert_eq!(s.max, 0.100);
        let mean = samples.iter().sum::<f64>() / 5.0;
        assert!((s.mean() - mean).abs() < 1e-15);
        // quantiles bucket-accurate: within ~15% above the true value
        let p50 = s.p50();
        assert!((0.004..=0.0047).contains(&p50), "p50 {p50}");
        assert!(s.min <= p50 && p50 <= s.p95() && s.p95() <= s.p99() && s.p99() <= s.max);
    }

    #[test]
    fn nan_ignored_negative_clamped() {
        let h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(-1.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn overflow_and_underflow_buckets() {
        let h = Histogram::new();
        h.record(0.0); // underflow bucket
        h.record(1e9); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        // quantiles stay clamped to the observed range despite the
        // unbounded overflow bucket
        assert_eq!(s.p99(), 1e9);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
        // each sample lands in a bucket whose bound covers it
        for &v in &[1e-9, 2e-9, 1e-6, 3.3e-4, 0.5, 12.0, 999.0] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} vs bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} vs bucket {i}");
            }
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        h.record(1e-6 * (t * 1_000 + i) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4_000);
        assert_eq!(s.max, 1e-6 * 3_999.0);
    }
}
