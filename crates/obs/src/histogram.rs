//! Concurrent log-bucketed latency histograms.
//!
//! A [`Histogram`] spreads samples over geometrically-spaced buckets
//! (16 per decade from 1 ns to 1000 s) and additionally tracks the exact
//! count, mean, minimum and maximum, so `min`, `mean` and `max` are exact
//! while quantiles are resolved to bucket precision (≤ ~15% relative
//! error) and clamped into `[min, max]`. Bucket increments are wait-free;
//! the exact scalar statistics are kept behind a mutex whose critical
//! section is a handful of arithmetic ops — long-uptime correctness
//! (a count-weighted incremental mean that cannot drift or overflow the
//! way a raw running sum does) is worth that short lock. Recording is
//! safe from any number of threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buckets per decade of the geometric grid.
const PER_DECADE: usize = 16;
/// Decades covered: 1e-9 s (1 ns) .. 1e3 s.
const DECADES: usize = 12;
/// Smallest bucket upper bound, in seconds.
const MIN_BOUND: f64 = 1e-9;
/// Bucket count, including the underflow (`<= MIN_BOUND`) and overflow
/// (`> 1e3`) buckets.
pub(crate) const BUCKETS: usize = PER_DECADE * DECADES + 2;

/// Upper bound of bucket `i` (the underflow bucket is `MIN_BOUND`, the
/// overflow bucket is unbounded and reports `f64::INFINITY`).
fn bucket_upper_bound(i: usize) -> f64 {
    if i >= BUCKETS - 1 {
        return f64::INFINITY;
    }
    MIN_BOUND * 10f64.powf(i as f64 / PER_DECADE as f64)
}

/// Bucket index for a (non-negative, finite) sample.
fn bucket_index(v: f64) -> usize {
    if v <= MIN_BOUND {
        return 0;
    }
    // bucket i (i >= 1) covers (ub(i-1), ub(i)]
    let z = ((v / MIN_BOUND).log10() * PER_DECADE as f64).ceil();
    if z >= (BUCKETS - 1) as f64 {
        BUCKETS - 1
    } else {
        (z as usize).max(1)
    }
}

/// Exact scalar statistics, updated under a short lock so the mean can be
/// maintained incrementally (Welford-style `m += (v - m) / n`): a running
/// mean never exceeds `max`, so it cannot overflow to infinity or drift
/// by absorption after hundreds of millions of observations, both of
/// which a `sum / count` mean does.
#[derive(Clone, Copy)]
struct ExactStats {
    count: u64,
    mean: f64,
    /// Kahan-compensated running sum, reported in snapshots for
    /// compatibility; the mean is *not* derived from it.
    sum: f64,
    sum_comp: f64,
    min: f64,
    max: f64,
}

impl ExactStats {
    const EMPTY: Self = Self {
        count: 0,
        mean: 0.0,
        sum: 0.0,
        sum_comp: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };
}

/// A concurrent log-bucketed histogram of non-negative `f64` samples
/// (seconds, by convention).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Lock-free mirror of the sample count for cheap `count()` reads.
    count: AtomicU64,
    exact: Mutex<ExactStats>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            exact: Mutex::new(ExactStats::EMPTY),
        }
    }

    /// Records one sample. Negative samples are clamped to zero; NaN is
    /// ignored (a poisoned upstream computation must not poison the
    /// telemetry).
    pub fn record(&self, sample: f64) {
        if sample.is_nan() {
            return;
        }
        let v = sample.max(0.0);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // A panic cannot happen inside the critical section below, so a
        // poisoned lock only ever means another recorder died mid-update;
        // the stats themselves are still coherent.
        let mut s = self.exact.lock().unwrap_or_else(|e| e.into_inner());
        s.count += 1;
        s.mean += (v - s.mean) / s.count as f64;
        let y = v - s.sum_comp;
        let t = s.sum + y;
        s.sum_comp = (t - s.sum) - y;
        s.sum = t;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = *self.exact.lock().unwrap_or_else(|e| e.into_inner());
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: s.count,
            sum: s.sum,
            mean: if s.count == 0 { 0.0 } else { s.mean },
            min: if s.count == 0 { 0.0 } else { s.min },
            max: if s.count == 0 { 0.0 } else { s.max },
            buckets,
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Kahan-compensated sum of all samples. May saturate to infinity for
    /// astronomically large inputs; the mean does not depend on it.
    pub sum: f64,
    /// Exact count-weighted incremental mean (`0.0` when empty).
    pub mean: f64,
    /// Exact minimum (`0.0` when empty).
    pub min: f64,
    /// Exact maximum (`0.0` when empty).
    pub max: f64,
    /// Per-bucket sample counts (log-spaced; see module docs).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean (`0.0` when empty), clamped into `[min, max]` so
    /// rounding in the incremental update can never report a mean outside
    /// the observed range.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean.clamp(self.min, self.max)
        }
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the nearest-rank sample, clamped into `[min, max]` — so
    /// quantiles are monotone in `q` and never leave the observed range.
    /// A single-sample histogram reports that sample exactly for every
    /// `q`, as do `q <= 0` (the minimum) and `q >= 1` (the maximum).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 || q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Nearest rank is ceil(q * n), but the product can land one ulp
        // above an exact integer (0.9 * 10 == 9.000000000000002 in f64),
        // which a bare ceil() would round up to the *next* rank. Shave a
        // few ulps relative to the magnitude before taking the ceiling.
        let pos = q * self.count as f64;
        let rank = ((pos * (1.0 - 4.0 * f64::EPSILON)).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), 0.0);
    }

    #[test]
    fn exact_stats_and_bounded_quantiles() {
        let h = Histogram::new();
        let samples = [0.001, 0.002, 0.004, 0.010, 0.100];
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.001);
        assert_eq!(s.max, 0.100);
        let mean = samples.iter().sum::<f64>() / 5.0;
        assert!((s.mean() - mean).abs() < 1e-15);
        // quantiles bucket-accurate: within ~15% above the true value
        let p50 = s.p50();
        assert!((0.004..=0.0047).contains(&p50), "p50 {p50}");
        assert!(s.min <= p50 && p50 <= s.p95() && s.p95() <= s.p99() && s.p99() <= s.max);
    }

    #[test]
    fn nan_ignored_negative_clamped() {
        let h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(-1.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn overflow_and_underflow_buckets() {
        let h = Histogram::new();
        h.record(0.0); // underflow bucket
        h.record(1e9); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        // quantiles stay clamped to the observed range despite the
        // unbounded overflow bucket
        assert_eq!(s.p99(), 1e9);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(0.00317);
        let s = h.snapshot();
        // not bucket upper bounds: the one observed sample, exactly
        assert_eq!(s.p50(), 0.00317);
        assert_eq!(s.p95(), 0.00317);
        assert_eq!(s.p99(), 0.00317);
        assert_eq!(s.mean(), 0.00317);
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let h = Histogram::new();
        for &v in &[0.001, 0.010, 0.100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0.001);
        assert_eq!(s.quantile(-3.0), 0.001);
        assert_eq!(s.quantile(1.0), 0.100);
        assert_eq!(s.quantile(7.0), 0.100);
    }

    #[test]
    fn nearest_rank_has_no_float_off_by_one() {
        // 10 samples a decade apart, one per distinct bucket: p90 must
        // resolve to the 9th sample's bucket. The old implementation
        // computed ceil(0.9 * 10) == ceil(9.000000000000002) == 10 and
        // reported the maximum instead.
        let h = Histogram::new();
        let samples: Vec<f64> = (0..10).map(|i| 1e-7 * 10f64.powi(i)).collect();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let p90 = s.quantile(0.90);
        assert!(p90 >= samples[8], "p90 {p90} below the 9th sample");
        assert!(p90 < samples[9], "p90 {p90} leaked into the max sample");
        // and the true extreme is still reachable
        assert_eq!(s.quantile(1.0), samples[9]);
    }

    #[test]
    fn mean_survives_huge_samples_without_overflow() {
        let h = Histogram::new();
        h.record(1e308);
        h.record(1e308);
        let s = h.snapshot();
        // a sum-based mean computes (1e308 + 1e308) / 2 == inf / 2 == inf
        assert_eq!(s.mean(), 1e308);
        assert!(s.mean().is_finite());
    }

    #[test]
    fn mean_does_not_drift_over_many_observations() {
        let h = Histogram::new();
        for _ in 0..1_000_000 {
            h.record(0.1);
        }
        let s = h.snapshot();
        // the incremental mean of a constant stream is bit-exact; the old
        // sum/count mean had already drifted to 0.10000000000000152 here
        assert_eq!(s.mean(), 0.1);
        assert_eq!(s.count, 1_000_000);
    }

    #[test]
    fn mean_stays_inside_observed_range() {
        let h = Histogram::new();
        for i in 0..10_000 {
            h.record(1e-9 + (i % 7) as f64 * 1e-4);
        }
        let s = h.snapshot();
        assert!(s.mean() >= s.min && s.mean() <= s.max);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
        // each sample lands in a bucket whose bound covers it
        for &v in &[1e-9, 2e-9, 1e-6, 3.3e-4, 0.5, 12.0, 999.0] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} vs bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} vs bucket {i}");
            }
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        h.record(1e-6 * (t * 1_000 + i) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4_000);
        assert_eq!(s.max, 1e-6 * 3_999.0);
    }
}
