//! Property tests for the metrics substrate: histogram statistics must be
//! ordered and exact-where-promised on arbitrary sample sets.

use proptest::prelude::*;
use semitri_obs::{Histogram, MetricsObserver, MetricsRegistry, PipelineObserver, Stage};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_are_ordered_and_bounded(
        samples in proptest::collection::vec(0.0..100.0f64, 1..400),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);

        // exact statistics
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert!((s.mean() - mean).abs() <= 1e-9 * mean.abs().max(1.0));

        // ordered quantiles: min ≤ p50 ≤ p95 ≤ p99 ≤ max
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(s.min <= p50, "min {} p50 {}", s.min, p50);
        prop_assert!(p50 <= p95, "p50 {} p95 {}", p50, p95);
        prop_assert!(p95 <= p99, "p95 {} p99 {}", p95, p99);
        prop_assert!(p99 <= s.max, "p99 {} max {}", p99, s.max);
        // mean inside the observed range
        prop_assert!(s.min <= s.mean() + 1e-12 && s.mean() <= s.max + 1e-12);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        samples in proptest::collection::vec(1e-9..10.0f64, 1..200),
        qs in proptest::collection::vec(0.0..1.0f64, 2..20),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let values: Vec<f64> = qs.iter().map(|&q| s.quantile(q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn observer_records_and_counts_match_spans(
        spans in proptest::collection::vec((0usize..10_000, 0.0..1.0f64), 1..100),
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = MetricsObserver::new(registry.clone());
        let mut records = 0u64;
        for (i, &(n, secs)) in spans.iter().enumerate() {
            obs.on_stage_end(Stage::Region, i as u64, n, secs);
            records += n as u64;
        }
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter(Stage::Region.records_metric()), records);
        prop_assert_eq!(snap.counter(Stage::Region.calls_metric()), spans.len() as u64);
        let h = snap.histogram(Stage::Region.secs_metric()).unwrap();
        prop_assert_eq!(h.count, spans.len() as u64);
    }
}
