//! Live-updating pipeline: a mutation log plus generation-swapped
//! snapshots.
//!
//! The frozen read path (flat R\*-trees, per-cell oracle arenas) is
//! immutable on purpose: that is what makes a [`SeMiTri`] shareable
//! across worker threads without a single lock on the hot path. A
//! long-running annotation service still has to absorb map edits — new
//! road segments, fresh POIs, landuse revisions, named regions — while
//! annotating. [`LiveSeMiTri`] supplies that without giving up the
//! frozen read path:
//!
//! * mutations accumulate in a **side log** ([`LiveSeMiTri::submit`]);
//!   readers never observe a half-applied edit;
//! * [`LiveSeMiTri::publish`] drains the log, applies it to the owned
//!   base [`City`], rebuilds a complete pipeline — frozen trees *and*
//!   oracle arenas — off to the side, and swaps it in as generation
//!   `N+1` through a [`GenerationHandle`];
//! * annotation entry points pin **one generation per trajectory**
//!   (per batch for the batch engine, per episode for streaming), so a
//!   publish never pauses in-flight work and never splits a single
//!   trajectory across two worlds mid-layer.
//!
//! At most two generations stay reachable through the handle (current +
//! retired), bounding memory at two live worlds plus whatever in-flight
//! pins still exist.

use crate::batch::BatchOutput;
use crate::pipeline::{PipelineConfig, PipelineOutput, SeMiTri};
use crate::streaming::StreamingAnnotator;
use semitri_data::{
    City, FeedError, GpsFeed, LanduseCategory, NamedRegion, PoiCategory, RawTrajectory, RegionKind,
    RoadClass,
};
use semitri_episodes::VelocityPolicy;
use semitri_geo::{Point, Polygon, Rect};
use semitri_index::{Generation, GenerationHandle, GenerationId};
use semitri_obs::PipelineObserver;
use std::sync::{Arc, Mutex};

/// One edit to the city substrate, queued in the side log until the next
/// [`LiveSeMiTri::publish`] folds it into a new generation.
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Adds a road segment between two fresh nodes (the endpoints are not
    /// snapped onto existing nodes; the new segment is a candidate for
    /// map matching either way).
    AddRoad {
        /// Start endpoint.
        from: Point,
        /// End endpoint.
        to: Point,
        /// Road class (drives the mode-inference speed model).
        class: RoadClass,
        /// Whether a bus line runs on the segment.
        bus_route: bool,
        /// Display name.
        name: String,
    },
    /// Adds one POI.
    AddPoi {
        /// Location.
        point: Point,
        /// Category (enters the HMM priors and the observation model).
        category: PoiCategory,
        /// Display name.
        name: String,
    },
    /// Recategorizes the landuse cell covering a point.
    SetLanduse {
        /// Any point inside the target cell.
        at: Point,
        /// New category.
        category: LanduseCategory,
    },
    /// Adds a named free-form region with a rectangular extent.
    AddRegion {
        /// Display name ("EPFL campus").
        name: String,
        /// Kind of place.
        kind: RegionKind,
        /// Rectangular extent.
        bounds: Rect,
    },
}

impl Mutation {
    /// Checks the mutation against the invariants the substrate types
    /// assert on (finite coordinates, non-degenerate geometry), so a bad
    /// edit is rejected at submission instead of panicking a rebuild.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Mutation::AddRoad { from, to, .. } => {
                if !from.is_finite() || !to.is_finite() {
                    return Err("road endpoints must be finite".into());
                }
                if from.distance(*to) <= 0.0 {
                    return Err("road segment must have positive length".into());
                }
                Ok(())
            }
            Mutation::AddPoi { point, .. } => {
                if !point.is_finite() {
                    return Err("poi location must be finite".into());
                }
                Ok(())
            }
            Mutation::SetLanduse { at, .. } => {
                if !at.is_finite() {
                    return Err("landuse point must be finite".into());
                }
                Ok(())
            }
            Mutation::AddRegion { bounds, .. } => {
                if bounds.is_empty() {
                    return Err("region bounds must be non-empty".into());
                }
                Ok(())
            }
        }
    }
}

/// What one [`LiveSeMiTri::publish`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOutcome {
    /// The generation the rebuild was published as.
    pub generation: GenerationId,
    /// How many queued mutations it folded in (0 republishes the same
    /// world under a new id).
    pub applied: usize,
}

/// Mutable state behind the log lock: the accumulated city plus the
/// not-yet-published edits.
struct LiveState {
    base: City,
    pending: Vec<Mutation>,
}

/// A [`SeMiTri`] pipeline that accepts live map updates.
///
/// Readers resolve the pipeline through [`LiveSeMiTri::pin`] (or the
/// `annotate*` conveniences, which pin per trajectory); writers queue
/// [`Mutation`]s and call [`LiveSeMiTri::publish`]. The publish path is
/// the only place a rebuild happens, and the generation swap itself is a
/// single pointer exchange — annotation never waits on it.
pub struct LiveSeMiTri {
    handle: Arc<GenerationHandle<SeMiTri>>,
    state: Mutex<LiveState>,
    make_config: Box<dyn Fn() -> PipelineConfig + Send + Sync>,
    observer: Option<Arc<dyn PipelineObserver>>,
}

impl LiveSeMiTri {
    /// Builds generation 0 from `city` using a configuration produced by
    /// `make_config` ([`PipelineConfig`] holds a boxed segmentation
    /// policy and is not `Clone`, so rebuilds need a factory, not a
    /// value). `observer`, when given, is installed on every generation's
    /// pipeline — a server's metrics registry sees spans across swaps.
    pub fn new(
        city: City,
        make_config: impl Fn() -> PipelineConfig + Send + Sync + 'static,
        observer: Option<Arc<dyn PipelineObserver>>,
    ) -> Self {
        let make_config: Box<dyn Fn() -> PipelineConfig + Send + Sync> = Box::new(make_config);
        let mut pipeline = SeMiTri::new(city.clone(), make_config());
        pipeline.set_observer(observer.clone());
        Self {
            handle: Arc::new(GenerationHandle::new(pipeline)),
            state: Mutex::new(LiveState {
                base: city,
                pending: Vec::new(),
            }),
            make_config,
            observer,
        }
    }

    /// Queues one mutation for the next publish. Invalid mutations (see
    /// [`Mutation::validate`]) are rejected here so the rebuild path can
    /// assume every queued edit applies cleanly.
    pub fn submit(&self, mutation: Mutation) -> Result<(), String> {
        mutation.validate()?;
        self.lock_state().pending.push(mutation);
        Ok(())
    }

    /// Number of mutations queued and not yet published.
    pub fn pending(&self) -> usize {
        self.lock_state().pending.len()
    }

    /// Drains the mutation log, rebuilds the full pipeline (frozen trees
    /// and oracle arenas included) on the updated city, and publishes it
    /// as the next generation.
    ///
    /// The log lock is held across the rebuild so concurrent publishes
    /// serialize and generations are strictly cumulative; *submitters*
    /// may briefly block behind a rebuild, but annotation readers take no
    /// lock here at all — they keep resolving pins against the old
    /// generation until the final pointer swap.
    pub fn publish(&self) -> PublishOutcome {
        let mut state = self.lock_state();
        let drained: Vec<Mutation> = state.pending.drain(..).collect();
        for m in &drained {
            apply(&mut state.base, m);
        }
        let mut pipeline = SeMiTri::new(state.base.clone(), (self.make_config)());
        pipeline.set_observer(self.observer.clone());
        let generation = self.handle.publish(pipeline);
        PublishOutcome {
            generation,
            applied: drained.len(),
        }
    }

    /// The generation handle, for sessions that pin per episode
    /// ([`StreamingAnnotator::live`]) or callers managing pins directly.
    pub fn handle(&self) -> &Arc<GenerationHandle<SeMiTri>> {
        &self.handle
    }

    /// Pins the current generation (see [`GenerationHandle::pin`]).
    pub fn pin(&self) -> Arc<Generation<SeMiTri>> {
        self.handle.pin()
    }

    /// Id of the current generation.
    pub fn current_id(&self) -> GenerationId {
        self.handle.current_id()
    }

    /// Annotates one trajectory, pinned to a single generation end to
    /// end: a publish landing mid-annotation changes nothing for this
    /// trajectory and everything for the next one.
    pub fn annotate(&self, traj: &RawTrajectory) -> PipelineOutput {
        self.pin().snapshot().annotate(traj)
    }

    /// Fallible twin of [`LiveSeMiTri::annotate`] over a raw feed.
    pub fn try_annotate_feed(&self, feed: &GpsFeed) -> Result<PipelineOutput, FeedError> {
        self.pin().snapshot().try_annotate_feed(feed)
    }

    /// Annotates a batch on the pool, pinned to one generation for the
    /// whole batch (every trajectory in the batch sees the same world).
    pub fn annotate_batch(&self, batch: &[RawTrajectory], threads: usize) -> BatchOutput {
        self.pin().snapshot().annotate_batch(batch, threads)
    }

    /// Opens a streaming session over the handle: the session pins the
    /// current generation and re-pins at each episode-open boundary.
    pub fn streaming(&self, policy: VelocityPolicy) -> StreamingAnnotator<'static> {
        StreamingAnnotator::live(Arc::clone(&self.handle), policy)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, LiveState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Folds one mutation into the owned city. Only called with validated
/// mutations, so the substrate asserts cannot fire.
fn apply(city: &mut City, m: &Mutation) {
    match m {
        Mutation::AddRoad {
            from,
            to,
            class,
            bus_route,
            name,
        } => {
            let a = city.roads.add_node(*from);
            let b = city.roads.add_node(*to);
            city.roads.add_edge(a, b, *class, *bus_route, name.clone());
        }
        Mutation::AddPoi {
            point,
            category,
            name,
        } => {
            city.pois.push(*point, *category, name.clone());
        }
        Mutation::SetLanduse { at, category } => {
            city.landuse.set_category_at(*at, *category);
        }
        Mutation::AddRegion { name, kind, bounds } => {
            let id = city.regions.iter().map(|r| r.id + 1).max().unwrap_or(0);
            city.regions.push(NamedRegion {
                id,
                name: name.clone(),
                kind: *kind,
                polygon: Polygon::from_rect(bounds),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::CityConfig;

    fn small_city() -> City {
        City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 2_000.0, 2_000.0),
            poi_count: 60,
            region_count: 2,
            seed: 9,
            ..CityConfig::default()
        })
    }

    #[test]
    fn publish_applies_the_log_cumulatively() {
        let live = LiveSeMiTri::new(small_city(), PipelineConfig::default, None);
        assert_eq!(live.current_id(), GenerationId(0));
        let before_pois = live.pin().snapshot().city().pois.len();

        live.submit(Mutation::AddPoi {
            point: Point::new(150.0, 150.0),
            category: PoiCategory::Feedings,
            name: "new cafe".into(),
        })
        .unwrap();
        live.submit(Mutation::AddRoad {
            from: Point::new(100.0, 100.0),
            to: Point::new(300.0, 100.0),
            class: RoadClass::Street,
            bus_route: false,
            name: "new street".into(),
        })
        .unwrap();
        assert_eq!(live.pending(), 2);

        let out = live.publish();
        assert_eq!(out.generation, GenerationId(1));
        assert_eq!(out.applied, 2);
        assert_eq!(live.pending(), 0);
        let city1 = live.pin().snapshot().city().clone();
        assert_eq!(city1.pois.len(), before_pois + 1);

        // an empty publish re-freezes the same world under a new id
        let out = live.publish();
        assert_eq!(out.generation, GenerationId(2));
        assert_eq!(out.applied, 0);
        assert_eq!(live.pin().snapshot().city().pois.len(), before_pois + 1);
    }

    #[test]
    fn invalid_mutations_are_rejected_at_submit() {
        let live = LiveSeMiTri::new(small_city(), PipelineConfig::default, None);
        assert!(live
            .submit(Mutation::AddRoad {
                from: Point::new(10.0, 10.0),
                to: Point::new(10.0, 10.0),
                class: RoadClass::Street,
                bus_route: false,
                name: "degenerate".into(),
            })
            .is_err());
        assert!(live
            .submit(Mutation::AddPoi {
                point: Point::new(f64::NAN, 0.0),
                category: PoiCategory::Unknown,
                name: "nowhere".into(),
            })
            .is_err());
        assert_eq!(live.pending(), 0);
    }

    #[test]
    fn pinned_readers_keep_their_world_across_a_publish() {
        let live = LiveSeMiTri::new(small_city(), PipelineConfig::default, None);
        let pin0 = live.pin();
        let at = Point::new(50.0, 50.0);
        let before = pin0.snapshot().city().landuse.cell_at(at).category;
        let target = if before == LanduseCategory::Lake {
            LanduseCategory::Glacier
        } else {
            LanduseCategory::Lake
        };
        live.submit(Mutation::SetLanduse {
            at,
            category: target,
        })
        .unwrap();
        let out = live.publish();
        assert_eq!(out.generation, GenerationId(1));
        // old pin still reads generation 0's landuse; new pins see the edit
        assert_eq!(pin0.snapshot().city().landuse.cell_at(at).category, before);
        assert_eq!(pin0.id(), GenerationId(0));
        assert_eq!(
            live.pin().snapshot().city().landuse.cell_at(at).category,
            target
        );
    }
}
