//! Real-time (streaming) annotation.
//!
//! The paper's challenge list demands that "annotation data is even
//! required in real-time" (§1.2). The batch pipeline needs the whole
//! trajectory; this module annotates a live GPS feed incrementally:
//!
//! * an **online segmenter** maintains the current stop/move hypothesis
//!   with the velocity predicate and closes an episode as soon as the
//!   motion state flips durably;
//! * each closed **move** is map-matched and mode-annotated immediately
//!   (Algorithm 2 operates per move episode, so this is exact);
//! * each closed **stop** is annotated with the *filtering* distribution
//!   of the HMM — the forward-probability argmax given the stops seen so
//!   far. Unlike offline Viterbi, a streaming annotator cannot see future
//!   stops; the forward argmax is the optimal causal estimate, and
//!   [`StreamingAnnotator::finalize`] re-decodes the full day with
//!   Viterbi for the store (matching the batch pipeline's output quality).

use crate::line::matcher::GlobalMapMatcher;
use crate::line::mode::ModeInferencer;
use crate::line::{group_matches, RouteEntry};
use crate::pipeline::{CleanConfig, SeMiTri};
use crate::point::{PointAnnotator, StopAnnotation};
use crate::region::RegionAnnotator;
use semitri_data::{City, GpsRecord, PoiCategory, RoadNetwork};
use semitri_episodes::clean::COLOCATED_EPS_M;
use semitri_episodes::{Episode, EpisodeKind, VelocityPolicy};
use semitri_geo::{Point, Rect, TimeSpan};
use semitri_index::{Generation, GenerationHandle, GenerationId};
use semitri_obs::{CleaningReport, PipelineObserver, Stage};
use std::sync::Arc;
use std::time::Instant;

/// An annotated episode emitted by the streaming annotator.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A move episode closed: its matched route with modes.
    Move {
        /// The episode (indexes refer to the records fed so far).
        episode: Episode,
        /// Matched route entries (ranges relative to the episode slice).
        route: Vec<RouteEntry>,
    },
    /// A stop episode closed: its causal (forward-filtered) annotation.
    Stop {
        /// The episode.
        episode: Episode,
        /// Online activity estimate.
        annotation: StopAnnotation,
        /// Landuse / named region under the stop, when covered.
        region: Option<crate::model::PlaceRef>,
    },
}

/// Seconds of sustained movement needed to confirm a stop → move
/// transition (GPS wander inside a building shouldn't end the stop).
const MOVE_CONFIRM_SECS: f64 = 30.0;

/// The annotation machinery a streaming session runs on: either built
/// and owned by this annotator (the historical shape — every spatial
/// index constructed per instance), borrowed from a long-lived
/// [`SeMiTri`] pipeline so a server hosting thousands of sessions
/// builds the frozen indexes once and shares them by reference, or
/// pinned to a [`GenerationHandle`] so live updates swap in underneath
/// the session at episode boundaries.
// the size gap vs the pointer-sized Shared/Live variants is fine: an
// annotator holds exactly one Engine, and server sessions never use Owned
#[allow(clippy::large_enum_variant)]
enum Engine<'c> {
    /// Indexes owned by this annotator.
    Owned {
        region: RegionAnnotator,
        matcher: GlobalMapMatcher,
        point: Option<PointAnnotator>,
        mode: ModeInferencer,
    },
    /// Indexes borrowed from a shared pipeline (`SeMiTri` is
    /// `&`-shareable; the batch pool already relies on that).
    Shared(&'c SeMiTri),
    /// Indexes resolved through a generation handle. The session holds a
    /// pin on one generation; [`StreamingAnnotator::push`] re-pins at
    /// episode-open boundaries, so an in-flight episode always finishes
    /// on the generation it started on and the *next* episode picks up
    /// whatever a concurrent publish installed.
    Live {
        handle: Arc<GenerationHandle<SeMiTri>>,
        pinned: Arc<Generation<SeMiTri>>,
    },
}

impl<'c> Engine<'c> {
    fn region(&self) -> &RegionAnnotator {
        match self {
            Engine::Owned { region, .. } => region,
            Engine::Shared(s) => s.region_annotator(),
            Engine::Live { pinned, .. } => pinned.snapshot().region_annotator(),
        }
    }

    fn matcher(&self) -> &GlobalMapMatcher {
        match self {
            Engine::Owned { matcher, .. } => matcher,
            Engine::Shared(s) => s.matcher(),
            Engine::Live { pinned, .. } => pinned.snapshot().matcher(),
        }
    }

    fn point(&self) -> Option<&PointAnnotator> {
        match self {
            Engine::Owned { point, .. } => point.as_ref(),
            Engine::Shared(s) => s.point_annotator(),
            Engine::Live { pinned, .. } => pinned.snapshot().point_annotator(),
        }
    }

    fn mode(&self) -> ModeInferencer {
        match self {
            Engine::Owned { mode, .. } => *mode,
            Engine::Shared(s) => s.config().mode,
            Engine::Live { pinned, .. } => pinned.snapshot().config().mode,
        }
    }

    fn roads(&self) -> &RoadNetwork {
        match self {
            Engine::Owned { matcher, .. } => matcher.network(),
            Engine::Shared(s) => &s.city().roads,
            Engine::Live { pinned, .. } => &pinned.snapshot().city().roads,
        }
    }
}

/// Incremental stop/move/annotate engine over a live GPS feed.
pub struct StreamingAnnotator<'c> {
    engine: Engine<'c>,
    policy: VelocityPolicy,
    /// Online cleaning parameters (speed bound; smoothing is offline-only
    /// and ignored here — a causal annotator cannot smooth with future
    /// fixes).
    clean: CleanConfig,
    /// Cumulative account of what the online validation gate rejected.
    cleaning: CleaningReport,
    /// Snapshot of `cleaning` at the last flush, so each flush reports
    /// only its own delta through the observer.
    cleaning_reported: CleaningReport,

    /// All *accepted* records so far (episode indexes refer into this;
    /// rejected fixes never enter).
    records: Vec<GpsRecord>,
    /// Index where the currently-open episode starts.
    open_start: usize,
    /// Current motion hypothesis of the open episode.
    open_kind: Option<EpisodeKind>,
    /// Record index where a contrary-motion run began (hysteresis state).
    contrary_since: Option<usize>,
    /// Forward (filtering) log-probabilities over POI categories
    /// (`None` until the first stop closes).
    forward: Option<Vec<f64>>,
    /// Stops closed so far (centers), for the final Viterbi pass.
    stop_centers: Vec<Point>,
    /// Set by the first [`StreamingAnnotator::flush`]: the session has
    /// terminal semantics — further flushes are defined no-ops and
    /// further pushes are rejected (counted, never ingested).
    finished: bool,
    /// Fixes refused because they arrived after the terminal flush.
    rejected_after_finish: u64,
    /// Stage observer fired as episodes close (same schema as the batch
    /// pipeline's, so live and offline runs report identically).
    observer: Option<Arc<dyn PipelineObserver>>,
    /// Reusable matcher arena: a long-lived stream annotates every move
    /// episode without per-fix heap allocation.
    match_scratch: crate::line::matcher::MatchScratch,
}

impl<'c> StreamingAnnotator<'c> {
    /// Builds a streaming annotator over a city's sources.
    ///
    /// Every spatial index (landuse regions, road segments, POIs) is
    /// built once here and frozen into its flat read-optimized snapshot —
    /// the same backend the batch pipeline defaults to — so a long-lived
    /// stream pays the dynamic tree's pointer chasing zero times.
    pub fn new(
        city: &City,
        policy: VelocityPolicy,
        match_params: crate::line::matcher::MatchParams,
        mode: ModeInferencer,
        point_params: crate::point::PointParams,
    ) -> Self {
        let point = PointAnnotator::new(&city.pois, city.bounds(), point_params).ok();
        Self::with_engine(
            Engine::Owned {
                region: RegionAnnotator::from_landuse(&city.landuse),
                matcher: GlobalMapMatcher::new(&city.roads, match_params),
                point,
                mode,
            },
            policy,
            CleanConfig::default(),
        )
    }

    /// Builds a streaming annotator that *borrows* a shared [`SeMiTri`]
    /// pipeline's spatial indexes instead of constructing its own — the
    /// session shape for a long-running server, where per-user sessions
    /// must cost per-user state (records, episode cursors, one matcher
    /// scratch), not a rebuild of every frozen index. Cleaning and mode
    /// parameters come from the pipeline's configuration; the stage
    /// observer is *not* inherited (install one with
    /// [`StreamingAnnotator::with_observer`] if per-session spans are
    /// wanted — a server typically observes at the shared pipeline level).
    pub fn over(pipeline: &'c SeMiTri, policy: VelocityPolicy) -> Self {
        let clean = pipeline.config().clean;
        Self::with_engine(Engine::Shared(pipeline), policy, clean)
    }

    /// Builds a streaming annotator over a [`GenerationHandle`] — the
    /// session shape for a server that accepts live map updates. The
    /// current generation is pinned immediately; each episode-open
    /// boundary re-pins, so episodes in flight when a publish lands
    /// finish on the generation they started on while the next episode
    /// sees the new world. Cleaning and mode parameters follow the
    /// pinned pipeline's configuration (re-read at each re-pin).
    pub fn live(
        handle: Arc<GenerationHandle<SeMiTri>>,
        policy: VelocityPolicy,
    ) -> StreamingAnnotator<'static> {
        let pinned = handle.pin();
        let clean = pinned.snapshot().config().clean;
        StreamingAnnotator::with_engine(Engine::Live { handle, pinned }, policy, clean)
    }

    fn with_engine(engine: Engine<'c>, policy: VelocityPolicy, clean: CleanConfig) -> Self {
        Self {
            engine,
            policy,
            clean,
            cleaning: CleaningReport::default(),
            cleaning_reported: CleaningReport::default(),
            records: Vec::new(),
            open_start: 0,
            open_kind: None,
            contrary_since: None,
            forward: None,
            stop_centers: Vec::new(),
            finished: false,
            rejected_after_finish: 0,
            observer: None,
            match_scratch: crate::line::matcher::MatchScratch::new(),
        }
    }

    /// Installs a stage observer fired around the per-episode annotation
    /// work as episodes close.
    pub fn with_observer(mut self, observer: Arc<dyn PipelineObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Installs or removes the stage observer in place.
    pub fn set_observer(&mut self, observer: Option<Arc<dyn PipelineObserver>>) {
        self.observer = observer;
    }

    /// Sets the online cleaning parameters (the speed bound; the
    /// smoothing bandwidth is ignored — smoothing needs future fixes a
    /// causal annotator doesn't have).
    pub fn with_clean(mut self, clean: CleanConfig) -> Self {
        self.clean = clean;
        self
    }

    /// Number of records *accepted* (fed minus what the validation gate
    /// rejected; see [`StreamingAnnotator::cleaning_report`]). Episode
    /// indexes refer to this range.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Cumulative account of the fixes rejected or accepted since the
    /// annotator was built.
    pub fn cleaning_report(&self) -> &CleaningReport {
        &self.cleaning
    }

    /// Whether the terminal [`StreamingAnnotator::flush`] has run. A
    /// finished session accepts no further fixes and flushes to nothing.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Fixes refused because they were pushed after the terminal flush
    /// (these never enter the cleaning report: they were not cleaned,
    /// they were refused).
    pub fn rejected_after_finish(&self) -> u64 {
        self.rejected_after_finish
    }

    /// The generation this session is currently pinned to, when it runs
    /// over a [`GenerationHandle`] (`None` for owned or shared engines).
    pub fn generation_id(&self) -> Option<GenerationId> {
        match &self.engine {
            Engine::Live { pinned, .. } => Some(pinned.id()),
            _ => None,
        }
    }

    /// Re-pins a live engine to the handle's current generation (no-op
    /// for owned/shared engines). Called exactly at episode-open
    /// boundaries: an episode is annotated wholly on one generation, and
    /// cross-generation scratch reuse is already guarded by the matcher
    /// fingerprint in `MatchScratch`.
    fn repin(&mut self) {
        if let Engine::Live { handle, pinned } = &mut self.engine {
            let fresh = handle.pin();
            if fresh.id() != pinned.id() {
                self.clean = fresh.snapshot().config().clean;
                *pinned = fresh;
            }
        }
    }

    fn observe(&self, stage: Stage, records: usize, secs: f64) {
        if let Some(obs) = &self.observer {
            // the streaming annotator has no trajectory id until the feed
            // is bound to one; report the object-neutral id 0
            obs.on_stage_start(stage, 0);
            obs.on_stage_end(stage, 0, records, secs);
        }
    }

    /// Feeds one GPS record; returns the episodes that closed as a result
    /// (usually none, occasionally one).
    ///
    /// Degraded fixes are rejected at the door — the streaming
    /// counterpart of the batch `Preprocessor`, except a causal annotator
    /// cannot re-sort the past, so out-of-order fixes are *dropped*
    /// (counted as `reordered`) instead of repaired. Rejections never
    /// panic and never corrupt the open episode.
    pub fn push(&mut self, record: GpsRecord) -> Vec<StreamEvent> {
        if self.finished {
            // terminal semantics: a flushed session is closed, not
            // half-open — silently reopening it would emit episodes with
            // indexes overlapping the flushed ones
            self.rejected_after_finish += 1;
            return Vec::new();
        }
        self.cleaning.input += 1;
        if !record.is_finite() {
            self.cleaning.dropped_nonfinite += 1;
            return Vec::new();
        }
        if let Some(prev) = self.records.last() {
            let dt = record.t.since(prev.t);
            if dt < 0.0 {
                // time ran backwards: the emitted episodes are immutable,
                // so the late fix can only be discarded
                self.cleaning.reordered += 1;
                return Vec::new();
            }
            if dt == 0.0 {
                if prev.point.distance(record.point) < COLOCATED_EPS_M {
                    self.cleaning.deduped += 1;
                } else {
                    self.cleaning.dropped_conflicts += 1;
                }
                return Vec::new();
            }
            if prev.point.distance(record.point) / dt > self.clean.max_speed_mps {
                self.cleaning.dropped_outliers += 1;
                return Vec::new();
            }
        }
        self.cleaning.kept += 1;
        self.records.push(record);
        let n = self.records.len();
        if n < 2 {
            return Vec::new();
        }
        // instantaneous smoothed speed over the policy's window
        let k = self.policy.smoothing_half_width.max(1);
        let lo = n.saturating_sub(k + 1);
        let window = &self.records[lo..n];
        let dt = window[window.len() - 1].t.since(window[0].t);
        let dist: f64 = window
            .windows(2)
            .map(|w| w[0].point.distance(w[1].point))
            .sum();
        let speed = if dt > 0.0 { dist / dt } else { 0.0 };
        let kind = if speed < self.policy.speed_threshold_mps {
            EpisodeKind::Stop
        } else {
            EpisodeKind::Move
        };

        match self.open_kind {
            None => {
                // first episode opens: pin the generation it will run on
                self.repin();
                self.open_kind = Some(kind);
                Vec::new()
            }
            Some(open) if open == kind => {
                // contrary evidence evaporated: it was a dip/blip inside
                // the open episode, not a transition
                self.contrary_since = None;
                Vec::new()
            }
            Some(open) => {
                // hysteresis: an emitted episode cannot be retracted, so a
                // transition is only committed once the contrary motion
                // state has persisted — a stop must last min_stop_secs
                // (brief halts stay inside the move, like the batch
                // policy's demotion), a move needs a short confirmation
                let flip_start = *self.contrary_since.get_or_insert(n - 1);
                let contrary_secs = self.records[n - 1].t.since(self.records[flip_start].t);
                let confirm_after = match open {
                    EpisodeKind::Move => self.policy.min_stop_secs,
                    EpisodeKind::Stop => MOVE_CONFIRM_SECS,
                };
                if contrary_secs < confirm_after {
                    return Vec::new();
                }
                // a stop that never reached min_stop_secs is noise, not an
                // episode: merge its records into the move that now
                // continues (the online equivalent of the batch policy's
                // demotion) rather than emitting or dropping them
                if open == EpisodeKind::Stop {
                    let open_secs = self.records[flip_start - 1]
                        .t
                        .since(self.records[self.open_start].t);
                    if open_secs < self.policy.min_stop_secs {
                        self.open_kind = Some(kind);
                        self.contrary_since = None;
                        return Vec::new();
                    }
                }
                // the contrary run's first record belongs to the *new*
                // episode: close [open_start, flip_start) and reopen at
                // flip_start, so consecutive episodes share no record
                let closed = self.close_episode(open, self.open_start, flip_start);
                // the closing episode ran on the old pin; the episode
                // opening at flip_start runs on whatever is current now
                self.repin();
                self.open_start = flip_start;
                self.open_kind = Some(kind);
                self.contrary_since = None;
                closed.into_iter().collect()
            }
        }
    }

    /// Closes the currently open episode (end of feed) and returns any
    /// final event. Also reports the cleaning work done since the last
    /// flush through the observer's `on_preprocess` hook (trajectory id
    /// 0, like every streaming span).
    ///
    /// The first flush is **terminal**: it marks the session finished
    /// (see [`StreamingAnnotator::is_finished`]), after which further
    /// flushes are defined no-ops returning no events and reporting no
    /// duplicate cleaning delta, and further pushes are rejected. An
    /// empty session flushes to an empty-but-valid result: no events,
    /// a zeroed cleaning report, and a [`StreamingAnnotator::finalize`]
    /// that decodes zero stops.
    pub fn flush(&mut self) -> Vec<StreamEvent> {
        if self.finished {
            return Vec::new();
        }
        self.finished = true;
        if let Some(obs) = &self.observer {
            let delta = self.cleaning.delta_since(&self.cleaning_reported);
            if delta != CleaningReport::default() {
                obs.on_preprocess(0, &delta);
            }
        }
        self.cleaning_reported = self.cleaning;
        let n = self.records.len();
        // the open cursor advances to the end of the accepted records in
        // every exit path: no later call may see a stale episode start
        let start = self.open_start;
        self.open_start = n;
        let Some(kind) = self.open_kind.take() else {
            return Vec::new();
        };
        if start >= n {
            return Vec::new();
        }
        // a final stop shorter than the minimum is demoted to a move, as
        // the batch policy does; the trailing records are never dropped
        let kind = if kind == EpisodeKind::Stop
            && self.records[n - 1].t.since(self.records[start].t) < self.policy.min_stop_secs
        {
            EpisodeKind::Move
        } else {
            kind
        };
        self.close_episode(kind, start, n).into_iter().collect()
    }

    fn episode(&self, kind: EpisodeKind, start: usize, end: usize) -> Episode {
        let records = &self.records[start..end];
        let bbox = Rect::covering(records.iter().map(|r| r.point));
        let inv = 1.0 / records.len() as f64;
        let cx: f64 = records.iter().map(|r| r.point.x).sum::<f64>() * inv;
        let cy: f64 = records.iter().map(|r| r.point.y).sum::<f64>() * inv;
        Episode {
            kind,
            start,
            end,
            span: TimeSpan::new(records[0].t, records[records.len() - 1].t),
            bbox,
            center: Point::new(cx, cy),
        }
    }

    fn close_episode(
        &mut self,
        kind: EpisodeKind,
        start: usize,
        end: usize,
    ) -> Option<StreamEvent> {
        if end <= start {
            return None;
        }
        let n_records = end - start;
        let t0 = Instant::now();
        let episode = self.episode(kind, start, end);
        self.observe(Stage::Episode, n_records, t0.elapsed().as_secs_f64());
        match kind {
            EpisodeKind::Move => {
                let t0 = Instant::now();
                let slice = &self.records[start..end];
                let matches = self
                    .engine
                    .matcher()
                    .match_records_with(&mut self.match_scratch, slice);
                let mut route = group_matches(slice, &matches);
                self.engine
                    .mode()
                    .annotate(self.engine.roads(), slice, &mut route);
                self.observe(Stage::Line, n_records, t0.elapsed().as_secs_f64());
                Some(StreamEvent::Move { episode, route })
            }
            EpisodeKind::Stop => {
                let t0 = Instant::now();
                let region = self.engine.region().region_at(episode.center);
                self.observe(Stage::Region, n_records, t0.elapsed().as_secs_f64());
                let t0 = Instant::now();
                let annotation = match self.engine.point() {
                    Some(point) => {
                        let (ann, forward) =
                            point.annotate_stop_online(episode.center, self.forward.as_deref());
                        self.forward = Some(forward);
                        ann
                    }
                    None => StopAnnotation {
                        category: PoiCategory::Unknown,
                        poi: None,
                    },
                };
                self.observe(Stage::Point, 1, t0.elapsed().as_secs_f64());
                self.stop_centers.push(episode.center);
                Some(StreamEvent::Stop {
                    episode,
                    annotation,
                    region,
                })
            }
        }
    }

    /// End-of-day re-decode: runs offline Viterbi over every stop seen,
    /// returning the smoothed annotations (what the batch pipeline would
    /// have produced). The online estimates are causal; these are not.
    pub fn finalize(&self) -> Vec<StopAnnotation> {
        match self.engine.point() {
            Some(point) => point.annotate_stops(&self.stop_centers),
            None => Vec::new(),
        }
    }
}

/// Offline/online agreement measure used in tests and ablations: fraction
/// of stops where the causal estimate matches the Viterbi decode.
pub fn online_offline_agreement(online: &[StopAnnotation], offline: &[StopAnnotation]) -> f64 {
    if online.is_empty() || online.len() != offline.len() {
        return 0.0;
    }
    let same = online
        .iter()
        .zip(offline)
        .filter(|(a, b)| a.category == b.category)
        .count();
    same as f64 / online.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::matcher::MatchParams;
    use crate::point::PointParams;
    use semitri_data::sim::{SimConfig, TripSimulator};
    use semitri_data::{CityConfig, TransportMode};
    use semitri_geo::Timestamp;

    fn city() -> City {
        City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 5_000.0, 5_000.0),
            poi_count: 400,
            region_count: 4,
            seed: 77,
            ..CityConfig::default()
        })
    }

    fn annotator(city: &City) -> StreamingAnnotator<'_> {
        StreamingAnnotator::new(
            city,
            VelocityPolicy::default(),
            MatchParams::default(),
            ModeInferencer::default(),
            PointParams::default(),
        )
    }

    fn day_track(city: &City) -> semitri_data::sim::SimulatedTrack {
        let mut sim = TripSimulator::new(
            &city.roads,
            SimConfig {
                sampling_interval: 8.0,
                ..SimConfig::default()
            },
            5,
            Point::new(1_200.0, 1_400.0),
            Timestamp(8.0 * 3_600.0),
        );
        sim.dwell(900.0, true, Some((1, PoiCategory::Feedings)));
        sim.travel_to(Point::new(3_900.0, 3_700.0), TransportMode::Walk);
        sim.dwell(1_200.0, false, Some((2, PoiCategory::ItemSale)));
        sim.travel_to(Point::new(1_200.0, 1_400.0), TransportMode::Walk);
        sim.dwell(900.0, true, None);
        sim.finish(1, 1)
    }

    #[test]
    fn streaming_emits_alternating_episodes() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);
        let mut events = Vec::new();
        for &r in &track.records {
            events.extend(stream.push(r));
        }
        events.extend(stream.flush());

        let stops = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Stop { .. }))
            .count();
        let moves = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Move { .. }))
            .count();
        assert!(stops >= 2, "stops {stops}");
        assert!(moves >= 2, "moves {moves}");

        // episodes exactly partition the fed records: each one starts
        // where the previous ended, and the last ends at the feed's end
        let mut last_end = 0usize;
        for e in &events {
            let ep = match e {
                StreamEvent::Move { episode, .. } | StreamEvent::Stop { episode, .. } => episode,
            };
            assert_eq!(ep.start, last_end, "gap or overlap at {}", ep.start);
            assert!(ep.end > ep.start);
            last_end = ep.end;
        }
        assert_eq!(last_end, stream.record_count());
    }

    #[test]
    fn streaming_episodes_cover_every_record_exactly_once() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);
        let mut events = Vec::new();
        for &r in &track.records {
            events.extend(stream.push(r));
        }
        events.extend(stream.flush());

        let mut coverage = vec![0usize; stream.record_count()];
        for e in &events {
            let ep = match e {
                StreamEvent::Move { episode, .. } | StreamEvent::Stop { episode, .. } => episode,
            };
            for slot in &mut coverage[ep.start..ep.end] {
                *slot += 1;
            }
        }
        for (i, count) in coverage.iter().enumerate() {
            assert_eq!(*count, 1, "record {i} is in {count} episodes");
        }
    }

    #[test]
    fn short_initial_stop_merges_into_move_without_record_loss() {
        let city = city();
        // a dwell shorter than min_stop_secs, then a walk: the dwell must
        // be demoted into the move, not silently dropped
        let mut sim = TripSimulator::new(
            &city.roads,
            SimConfig {
                sampling_interval: 8.0,
                ..SimConfig::default()
            },
            5,
            Point::new(1_200.0, 1_400.0),
            Timestamp(8.0 * 3_600.0),
        );
        sim.dwell(60.0, true, None);
        sim.travel_to(Point::new(3_900.0, 3_700.0), TransportMode::Walk);
        let track = sim.finish(1, 1);

        let mut stream = annotator(&city);
        let mut events = Vec::new();
        for &r in &track.records {
            events.extend(stream.push(r));
        }
        events.extend(stream.flush());

        assert!(!events.is_empty());
        let mut last_end = 0usize;
        for e in &events {
            let ep = match e {
                StreamEvent::Move { episode, .. } | StreamEvent::Stop { episode, .. } => episode,
            };
            assert!(
                matches!(e, StreamEvent::Move { .. }),
                "sub-minimum dwell must not surface as a stop"
            );
            assert_eq!(ep.start, last_end);
            last_end = ep.end;
        }
        assert_eq!(last_end, stream.record_count());
    }

    #[test]
    fn streaming_moves_carry_modes_and_routes() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);
        let mut events = Vec::new();
        for &r in &track.records {
            events.extend(stream.push(r));
        }
        events.extend(stream.flush());
        let mut saw_route = false;
        for e in &events {
            if let StreamEvent::Move { route, .. } = e {
                if !route.is_empty() {
                    saw_route = true;
                    assert!(route.iter().all(|en| en.mode.is_some()));
                }
            }
        }
        assert!(saw_route);
    }

    #[test]
    fn streaming_stops_have_regions_and_categories() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);
        let mut events = Vec::new();
        for &r in &track.records {
            events.extend(stream.push(r));
        }
        events.extend(stream.flush());
        for e in &events {
            if let StreamEvent::Stop {
                annotation, region, ..
            } = e
            {
                assert!(PoiCategory::ALL.contains(&annotation.category));
                assert!(region.is_some(), "landuse covers the whole city");
            }
        }
    }

    #[test]
    fn online_estimates_mostly_agree_with_offline_viterbi() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);
        let mut online = Vec::new();
        for &r in &track.records {
            for e in stream.push(r) {
                if let StreamEvent::Stop { annotation, .. } = e {
                    online.push(annotation);
                }
            }
        }
        for e in stream.flush() {
            if let StreamEvent::Stop { annotation, .. } = e {
                online.push(annotation);
            }
        }
        let offline = stream.finalize();
        assert_eq!(online.len(), offline.len());
        let agreement = online_offline_agreement(&online, &offline);
        assert!(agreement >= 0.5, "agreement {agreement}");
    }

    #[test]
    fn degraded_fixes_are_rejected_at_the_door() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);

        let mut events = Vec::new();
        for (i, &r) in track.records.iter().enumerate() {
            events.extend(stream.push(r));
            match i % 40 {
                // co-located duplicate of the fix just accepted
                7 => drop(stream.push(r)),
                // conflicting fix at the same instant, 500 m away
                13 => drop(stream.push(GpsRecord::new(
                    Point::new(r.point.x + 500.0, r.point.y),
                    r.t,
                ))),
                // non-finite fix
                19 => drop(stream.push(GpsRecord::new(Point::new(f64::NAN, 0.0), r.t))),
                // stale out-of-order fix from the past
                23 => drop(stream.push(GpsRecord::new(r.point, Timestamp(r.t.0 - 3_600.0)))),
                // teleport (way past the speed bound)
                31 => drop(stream.push(GpsRecord::new(
                    Point::new(r.point.x + 90_000.0, r.point.y),
                    Timestamp(r.t.0 + 0.5),
                ))),
                _ => {}
            }
        }
        events.extend(stream.flush());

        let report = *stream.cleaning_report();
        assert!(report.deduped > 0);
        assert!(report.dropped_conflicts > 0);
        assert!(report.dropped_nonfinite > 0);
        assert!(report.reordered > 0);
        assert!(report.dropped_outliers > 0);
        assert_eq!(report.kept as usize, stream.record_count());
        assert_eq!(
            report.input,
            report.kept + report.dropped() + report.deduped + report.reordered
        );
        // only clean fixes entered: the record range is still exactly
        // partitioned by the emitted episodes
        let mut last_end = 0usize;
        for e in &events {
            let ep = match e {
                StreamEvent::Move { episode, .. } | StreamEvent::Stop { episode, .. } => episode,
            };
            assert_eq!(ep.start, last_end);
            last_end = ep.end;
        }
        assert_eq!(last_end, stream.record_count());
        // accepted records are strictly time-ordered despite the garbage
        assert!(stream.records.windows(2).all(|w| w[1].t.0 > w[0].t.0));
    }

    #[test]
    fn flush_reports_cleaning_delta_through_observer() {
        use semitri_obs::{MetricsObserver, MetricsRegistry};
        let city = city();
        let registry = Arc::new(MetricsRegistry::new());
        let mut stream =
            annotator(&city).with_observer(Arc::new(MetricsObserver::new(registry.clone())));
        stream.push(GpsRecord::new(Point::new(10.0, 10.0), Timestamp(0.0)));
        stream.push(GpsRecord::new(Point::new(f64::NAN, 10.0), Timestamp(1.0)));
        stream.push(GpsRecord::new(Point::new(11.0, 10.0), Timestamp(2.0)));
        stream.flush();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stage.preprocess.records"), 3);
        assert_eq!(snap.counter("stage.preprocess.kept"), 2);
        assert_eq!(snap.counter("stage.preprocess.dropped"), 1);
        assert_eq!(snap.counter("stage.preprocess.calls"), 1);
        // a second flush with no new fixes reports nothing further
        stream.flush();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stage.preprocess.records"), 3);
        assert_eq!(snap.counter("stage.preprocess.calls"), 1);
    }

    #[test]
    fn empty_and_single_record_feeds() {
        let city = city();
        let mut stream = annotator(&city);
        assert!(stream.flush().is_empty());
        let mut stream = annotator(&city);
        assert!(stream
            .push(GpsRecord::new(Point::new(1.0, 1.0), Timestamp(0.0)))
            .is_empty());
        // one record: no motion hypothesis ever forms (classification
        // needs two records), so flush has nothing to close
        let events = stream.flush();
        assert!(events.is_empty());
    }

    #[test]
    fn flush_is_terminal_second_flush_noop_and_push_rejected() {
        let city = city();
        let track = day_track(&city);
        let mut stream = annotator(&city);
        for &r in &track.records {
            stream.push(r);
        }
        assert!(!stream.is_finished());
        stream.flush();
        assert!(stream.is_finished());
        let records_at_flush = stream.record_count();
        let report_at_flush = *stream.cleaning_report();

        // a second flush is a defined no-op: no events, no state change
        assert!(stream.flush().is_empty());
        assert_eq!(*stream.cleaning_report(), report_at_flush);

        // pushes after the terminal flush are refused, not ingested: the
        // record range and the cleaning report stay exactly as flushed
        let last_t = track.records.last().unwrap().t.0;
        for i in 0..5 {
            let late = GpsRecord::new(
                Point::new(1_000.0 + i as f64, 1_000.0),
                Timestamp(last_t + 60.0 + i as f64),
            );
            assert!(stream.push(late).is_empty());
        }
        assert_eq!(stream.rejected_after_finish(), 5);
        assert_eq!(stream.record_count(), records_at_flush);
        assert_eq!(*stream.cleaning_report(), report_at_flush);
        assert!(stream.flush().is_empty());
    }

    #[test]
    fn empty_session_flush_is_valid_and_zeroed() {
        let city = city();
        let mut stream = annotator(&city);
        let events = stream.flush();
        assert!(events.is_empty());
        assert!(stream.is_finished());
        assert_eq!(*stream.cleaning_report(), CleaningReport::default());
        assert_eq!(stream.record_count(), 0);
        // finalize on an empty session is a valid empty decode
        assert!(stream.finalize().is_empty());
    }

    #[test]
    fn cleaning_delta_not_double_counted_across_flushes() {
        use semitri_obs::{MetricsObserver, MetricsRegistry};
        let city = city();
        let registry = Arc::new(MetricsRegistry::new());
        let mut stream =
            annotator(&city).with_observer(Arc::new(MetricsObserver::new(registry.clone())));
        stream.push(GpsRecord::new(Point::new(10.0, 10.0), Timestamp(0.0)));
        stream.push(GpsRecord::new(Point::new(f64::NAN, 10.0), Timestamp(1.0)));
        stream.flush();
        let first = registry.snapshot();
        assert_eq!(first.counter("stage.preprocess.records"), 2);
        assert_eq!(first.counter("stage.preprocess.dropped"), 1);
        // repeated flushes (and rejected late pushes) must not re-report
        // the same delta or invent a new one
        stream.push(GpsRecord::new(Point::new(11.0, 10.0), Timestamp(2.0)));
        stream.flush();
        stream.flush();
        let again = registry.snapshot();
        assert_eq!(again.counter("stage.preprocess.records"), 2);
        assert_eq!(again.counter("stage.preprocess.dropped"), 1);
        assert_eq!(again.counter("stage.preprocess.calls"), 1);
        assert_eq!(stream.rejected_after_finish(), 1);
    }

    #[test]
    fn shared_engine_session_matches_owned_engine_exactly() {
        use crate::pipeline::{PipelineConfig, SeMiTri};
        let city = city();
        let track = day_track(&city);

        let mut owned = annotator(&city);
        let mut owned_events = Vec::new();
        for &r in &track.records {
            owned_events.extend(owned.push(r));
        }
        owned_events.extend(owned.flush());

        // same city, same parameters, but every index borrowed from one
        // shared pipeline — the server's per-user session shape
        let pipeline = SeMiTri::new(&city, PipelineConfig::default());
        let mut shared = StreamingAnnotator::over(&pipeline, VelocityPolicy::default());
        let mut shared_events = Vec::new();
        for &r in &track.records {
            shared_events.extend(shared.push(r));
        }
        shared_events.extend(shared.flush());

        assert_eq!(owned_events.len(), shared_events.len());
        for (a, b) in owned_events.iter().zip(&shared_events) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert_eq!(owned.finalize(), shared.finalize());
        assert_eq!(owned.cleaning_report(), shared.cleaning_report());
    }
}
