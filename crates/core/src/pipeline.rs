//! The SeMiTri pipeline: Fig. 2 end to end.
//!
//! Wires the Trajectory Computation Layer (cleaning + stop/move
//! segmentation) to the three annotation layers and assembles the final
//! structured semantic trajectory, measuring per-layer latency as the
//! paper does in Fig. 17.

use crate::line::matcher::{GlobalMapMatcher, MatchParams, MatchScratch};
use crate::line::mode::ModeInferencer;
use crate::line::{group_matches, RouteEntry};
use crate::model::{Annotation, AnnotationValue, SemanticTuple, StructuredSemanticTrajectory};
use crate::point::{PointAnnotator, PointParams, StopAnnotation};
use crate::preprocess::Preprocessor;
use crate::region::{RegionAnnotator, RegionTuple};
use semitri_data::{City, FeedError, GpsFeed, GpsRecord, RawTrajectory};
use semitri_episodes::{Episode, EpisodeKind, SegmentationPolicy, VelocityPolicy};
use semitri_index::{IndexMode, OracleMode};
use semitri_obs::{CleaningReport, PipelineObserver, Stage, KERNEL_FALLBACK_METRIC};
use std::sync::Arc;
use std::time::Instant;

/// Cleaning parameters of the Trajectory Computation Layer.
#[derive(Debug, Clone, Copy)]
pub struct CleanConfig {
    /// Fixes implying a faster speed are dropped as outliers.
    pub max_speed_mps: f64,
    /// Optional Gaussian smoothing bandwidth (seconds).
    pub smooth_sigma_secs: Option<f64>,
}

impl Default for CleanConfig {
    fn default() -> Self {
        Self {
            max_speed_mps: 70.0,
            smooth_sigma_secs: None,
        }
    }
}

/// Pipeline configuration.
pub struct PipelineConfig {
    /// Cleaning parameters.
    pub clean: CleanConfig,
    /// Stop/move computing policy.
    pub policy: Box<dyn SegmentationPolicy + Send + Sync>,
    /// Global map-matching parameters.
    pub match_params: MatchParams,
    /// Transport-mode inference parameters.
    pub mode: ModeInferencer,
    /// Point-layer parameters.
    pub point_params: PointParams,
    /// Spatial-index backend for every annotation layer. The default
    /// ([`IndexMode::Frozen`]) builds each R\*-tree once and freezes it
    /// into the flat cache-packed snapshot; results are identical to the
    /// dynamic backend byte for byte (the integration suite asserts it).
    pub index_mode: IndexMode,
    /// Precomputed per-cell candidate oracle for the line and point
    /// layers. The default ([`OracleMode::Precomputed`]) materializes the
    /// per-grid-cell candidate slabs at build time, turning the per-fix
    /// candidate query into an O(1) slab lookup; results are identical to
    /// the tree path byte for byte (the integration suite asserts it).
    /// [`OracleMode::Disabled`] trades that throughput back for the arena
    /// memory.
    pub oracle_mode: OracleMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            clean: CleanConfig::default(),
            policy: Box::new(VelocityPolicy::default()),
            match_params: MatchParams::default(),
            mode: ModeInferencer::default(),
            point_params: PointParams::default(),
            index_mode: IndexMode::Frozen,
            oracle_mode: OracleMode::default(),
        }
    }
}

/// Wall-clock seconds spent in each stage for one trajectory (Fig. 17's
/// computation/annotation latencies; storage latency is measured by
/// `semitri-store`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyProfile {
    /// Cleaning + episode computation.
    pub compute_episode_secs: f64,
    /// Map matching + mode inference over the move episodes.
    pub map_match_secs: f64,
    /// Landuse / region spatial join.
    pub landuse_join_secs: f64,
    /// HMM stop annotation.
    pub point_secs: f64,
}

impl LatencyProfile {
    /// Seconds spent in `stage` (the [`Stage`]-keyed view of the fields).
    pub fn stage_secs(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Episode => self.compute_episode_secs,
            Stage::Region => self.landuse_join_secs,
            Stage::Line => self.map_match_secs,
            Stage::Point => self.point_secs,
        }
    }
}

/// Everything the pipeline produced for one trajectory.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The cleaned trajectory the episode indexes refer to.
    pub cleaned: RawTrajectory,
    /// Stop/move episodes over `cleaned`.
    pub episodes: Vec<Episode>,
    /// Algorithm 1 region tuples over `cleaned`.
    pub region_tuples: Vec<RegionTuple>,
    /// Per-move-episode matched routes: `(episode index, entries)`. Entry
    /// record ranges are relative to the episode's record slice.
    pub move_routes: Vec<(usize, Vec<RouteEntry>)>,
    /// Per-stop-episode annotations: `(episode index, annotation)`.
    pub stop_annotations: Vec<(usize, StopAnnotation)>,
    /// The assembled structured semantic trajectory.
    pub sst: StructuredSemanticTrajectory,
    /// Per-layer latencies.
    pub latency: LatencyProfile,
    /// What the preprocessing stage repaired or dropped on the way to
    /// `cleaned`.
    pub cleaning: CleaningReport,
}

impl PipelineOutput {
    /// Records processed by `stage` — exactly the counts the pipeline
    /// reports through [`PipelineObserver::on_stage_end`], recomputed from
    /// the output so batch aggregation and observers agree:
    /// episode/region count cleaned GPS records, line counts move-episode
    /// records, point counts annotated stops.
    pub fn stage_records(&self, stage: Stage) -> usize {
        match stage {
            Stage::Episode => self.cleaned.len(),
            Stage::Region => self.region_tuples.iter().map(|t| t.record_count()).sum(),
            Stage::Line => self
                .episodes
                .iter()
                .filter(|e| e.kind == EpisodeKind::Move)
                .map(|e| e.end - e.start)
                .sum(),
            Stage::Point => self.stop_annotations.len(),
        }
    }
}

/// The SeMiTri middleware bound to one city's geographic sources.
///
/// The pipeline owns its city snapshot behind an `Arc`: one `SeMiTri` is
/// one immutable annotation world, shareable across worker threads and
/// swappable as a whole by the generation layer (`LiveSeMiTri`).
pub struct SeMiTri {
    city: Arc<City>,
    region: RegionAnnotator,
    named: RegionAnnotator,
    matcher: GlobalMapMatcher,
    point: Option<PointAnnotator>,
    config: PipelineConfig,
    observer: Option<Arc<dyn PipelineObserver>>,
}

impl SeMiTri {
    /// Builds the middleware: indexes the landuse grid, the road network
    /// and the POIs of `city`. The point layer is skipped when the city
    /// has no POIs (the paper's sparse-Lausanne situation, §5.3).
    ///
    /// Accepts either an `Arc<City>` (shared, no copy — the generation
    /// layer's path) or `&City` (cloned into a fresh `Arc` for callers
    /// that keep ownership).
    pub fn new(city: impl Into<Arc<City>>, config: PipelineConfig) -> Self {
        let city = city.into();
        let mode = config.index_mode;
        let oracle_mode = config.oracle_mode;
        let region = RegionAnnotator::from_landuse_with(&city.landuse, mode);
        let named = RegionAnnotator::from_named_regions_with(&city.regions, mode);
        let matcher =
            GlobalMapMatcher::with_modes(&city.roads, config.match_params, mode, oracle_mode);
        let point = PointAnnotator::with_modes(
            &city.pois,
            city.bounds(),
            config.point_params,
            mode,
            oracle_mode,
        )
        .ok();
        Self {
            city,
            region,
            named,
            matcher,
            point,
            config,
            observer: None,
        }
    }

    /// Installs a stage observer; every subsequent [`SeMiTri::annotate`]
    /// call (including ones issued by the batch pool) fires its hooks
    /// around each annotation layer.
    pub fn with_observer(mut self, observer: Arc<dyn PipelineObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Installs or removes the stage observer in place.
    pub fn set_observer(&mut self, observer: Option<Arc<dyn PipelineObserver>>) {
        self.observer = observer;
    }

    /// The installed stage observer, if any.
    pub fn observer(&self) -> Option<&Arc<dyn PipelineObserver>> {
        self.observer.as_ref()
    }

    fn stage_start(&self, stage: Stage, trajectory_id: u64) {
        if let Some(obs) = &self.observer {
            obs.on_stage_start(stage, trajectory_id);
        }
    }

    fn stage_end(&self, stage: Stage, trajectory_id: u64, records: usize, secs: f64) {
        if let Some(obs) = &self.observer {
            obs.on_stage_end(stage, trajectory_id, records, secs);
        }
    }

    /// The city this pipeline annotates against.
    pub fn city(&self) -> &City {
        &self.city
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The landuse region annotator (exposed for analytics).
    pub fn region_annotator(&self) -> &RegionAnnotator {
        &self.region
    }

    /// The free-form named-region annotator (campus, recreation areas).
    pub fn named_region_annotator(&self) -> &RegionAnnotator {
        &self.named
    }

    /// The map matcher (exposed for benchmarks).
    pub fn matcher(&self) -> &GlobalMapMatcher {
        &self.matcher
    }

    /// The point annotator, when POI data is available.
    pub fn point_annotator(&self) -> Option<&PointAnnotator> {
        self.point.as_ref()
    }

    /// Runs the full pipeline on one raw trajectory.
    ///
    /// # Panics
    /// Panics when the feed is irrecoverable (every fix non-finite) —
    /// trusted, pre-validated inputs only. Untrusted feeds go through
    /// [`SeMiTri::try_annotate`] / [`SeMiTri::try_annotate_feed`], which
    /// surface [`FeedError`] instead.
    pub fn annotate(&self, traj: &RawTrajectory) -> PipelineOutput {
        match self.try_annotate(traj) {
            Ok(out) => out,
            Err(e) => panic!("trajectory {} is irrecoverable: {e}", traj.trajectory_id),
        }
    }

    /// Fallible [`SeMiTri::annotate`]: returns [`FeedError`] instead of
    /// panicking when the feed is irrecoverable.
    pub fn try_annotate(&self, traj: &RawTrajectory) -> Result<PipelineOutput, FeedError> {
        self.annotate_records(traj.object_id, traj.trajectory_id, traj.records())
    }

    /// Runs the full pipeline on an untrusted [`GpsFeed`] — records with
    /// no ordering or finiteness guarantees. The preprocessing stage
    /// repairs what it can (sort, dedupe, drop non-finite fixes and
    /// outliers) and reports the repairs in the output's
    /// [`PipelineOutput::cleaning`] report; only a feed with no valid
    /// fix at all errors.
    pub fn try_annotate_feed(&self, feed: &GpsFeed) -> Result<PipelineOutput, FeedError> {
        self.annotate_records(feed.object_id, feed.trajectory_id, &feed.records)
    }

    fn annotate_records(
        &self,
        object_id: u64,
        trajectory_id: u64,
        raw_records: &[GpsRecord],
    ) -> Result<PipelineOutput, FeedError> {
        let mut latency = LatencyProfile::default();
        let tid = trajectory_id;

        // --- Trajectory Computation Layer ---
        // preprocessing runs before the episode span opens, so an
        // irrecoverable feed leaves no dangling stage span behind
        let t0 = Instant::now();
        let (records, cleaning) = Preprocessor::new(self.config.clean).run(raw_records)?;
        let preprocess_secs = t0.elapsed().as_secs_f64();
        if let Some(obs) = &self.observer {
            obs.on_preprocess(tid, &cleaning);
        }

        self.stage_start(Stage::Episode, tid);
        let t0 = Instant::now();
        // the Preprocessor guarantees strictly increasing timestamps, so
        // this constructor's ordering assertion cannot fire
        let cleaned = RawTrajectory::new(object_id, trajectory_id, records);
        let episodes = self.config.policy.segment(&cleaned);
        // cleaning + segmentation are one layer in the paper's Fig. 17
        latency.compute_episode_secs = preprocess_secs + t0.elapsed().as_secs_f64();
        self.stage_end(
            Stage::Episode,
            tid,
            cleaned.len(),
            latency.compute_episode_secs,
        );

        // --- Semantic Region Annotation Layer (Algorithm 1) ---
        self.stage_start(Stage::Region, tid);
        let t0 = Instant::now();
        let region_tuples = self.region.annotate_trajectory(&cleaned);
        latency.landuse_join_secs = t0.elapsed().as_secs_f64();
        self.stage_end(
            Stage::Region,
            tid,
            region_tuples.iter().map(|t| t.record_count()).sum(),
            latency.landuse_join_secs,
        );

        // --- Semantic Line Annotation Layer (Algorithm 2) ---
        self.stage_start(Stage::Line, tid);
        let t0 = Instant::now();
        let mut move_routes = Vec::new();
        let mut move_records = 0usize;
        // one scratch arena per trajectory, threaded through every move
        // episode so the matching hot path performs no per-fix allocation
        let mut scratch = MatchScratch::new();
        for (idx, ep) in episodes.iter().enumerate() {
            if ep.kind != EpisodeKind::Move {
                continue;
            }
            let slice = &cleaned.records()[ep.start..ep.end];
            move_records += slice.len();
            let matches = self.matcher.match_records_with(&mut scratch, slice);
            let mut entries = group_matches(slice, &matches);
            self.config
                .mode
                .annotate(&self.city.roads, slice, &mut entries);
            move_routes.push((idx, entries));
        }
        latency.map_match_secs = t0.elapsed().as_secs_f64();
        self.stage_end(Stage::Line, tid, move_records, latency.map_match_secs);
        let fallbacks = scratch.take_kernel_fallbacks();
        if fallbacks > 0 {
            if let Some(obs) = &self.observer {
                obs.on_counter(KERNEL_FALLBACK_METRIC, fallbacks);
            }
        }

        // --- Semantic Point Annotation Layer (Algorithm 3) ---
        self.stage_start(Stage::Point, tid);
        let t0 = Instant::now();
        let mut stop_annotations = Vec::new();
        if let Some(point) = &self.point {
            let stop_indexes: Vec<usize> = episodes
                .iter()
                .enumerate()
                .filter(|(_, e)| e.kind == EpisodeKind::Stop)
                .map(|(i, _)| i)
                .collect();
            let centers: Vec<_> = stop_indexes.iter().map(|&i| episodes[i].center).collect();
            let anns = point.annotate_stops(&centers);
            stop_annotations = stop_indexes.into_iter().zip(anns).collect();
        }
        latency.point_secs = t0.elapsed().as_secs_f64();
        self.stage_end(
            Stage::Point,
            tid,
            stop_annotations.len(),
            latency.point_secs,
        );

        let sst = self.assemble_sst(&cleaned, &episodes, &move_routes, &stop_annotations);

        Ok(PipelineOutput {
            cleaned,
            episodes,
            region_tuples,
            move_routes,
            stop_annotations,
            sst,
            latency,
            cleaning,
        })
    }

    /// Assembles the structured semantic trajectory: stops become
    /// `(place, t_in, t_out, activity)` tuples; moves become one tuple per
    /// transport-mode leg, as in the paper's §1.1 example.
    fn assemble_sst(
        &self,
        cleaned: &RawTrajectory,
        episodes: &[Episode],
        move_routes: &[(usize, Vec<RouteEntry>)],
        stop_annotations: &[(usize, StopAnnotation)],
    ) -> StructuredSemanticTrajectory {
        let mut tuples = Vec::new();
        for (idx, ep) in episodes.iter().enumerate() {
            match ep.kind {
                EpisodeKind::Stop => {
                    let ann = stop_annotations
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .map(|(_, a)| a);
                    // place preference (most to least specific): the exact
                    // POI, a named free-form region (campus, recreation
                    // area — the paper's Fig. 3 examples), then the landuse
                    // cell under the stop center
                    let place = ann
                        .and_then(|a| a.poi.clone())
                        .or_else(|| self.named.region_at(ep.center))
                        .or_else(|| self.region.region_at(ep.center));
                    let mut annotations = Vec::new();
                    if let Some(a) = ann {
                        annotations.push(Annotation::activity(a.category));
                    }
                    tuples.push(SemanticTuple {
                        place,
                        span: ep.span,
                        annotations,
                    });
                }
                EpisodeKind::Move => {
                    let entries = move_routes
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .map(|(_, e)| e.as_slice())
                        .unwrap_or(&[]);
                    if entries.is_empty() {
                        // unmatched move: keep an unannotated tuple so the
                        // SST still covers the whole trajectory
                        tuples.push(SemanticTuple {
                            place: None,
                            span: ep.span,
                            annotations: vec![Annotation::new(
                                "avg_speed",
                                AnnotationValue::Number(mean_speed(cleaned, ep)),
                            )],
                        });
                        continue;
                    }
                    // group consecutive entries by mode into legs
                    struct Leg {
                        start: usize, // entry range within `entries`
                        end: usize,
                        span: semitri_geo::TimeSpan,
                        mode: Option<semitri_data::TransportMode>,
                    }
                    let mut legs: Vec<Leg> = Vec::new();
                    let mut leg_start = 0usize;
                    for i in 1..=entries.len() {
                        if i < entries.len() && entries[i].mode == entries[leg_start].mode {
                            continue;
                        }
                        legs.push(Leg {
                            start: leg_start,
                            end: i,
                            span: semitri_geo::TimeSpan::new(
                                entries[leg_start].span.start,
                                entries[i - 1].span.end,
                            ),
                            mode: entries[leg_start].mode,
                        });
                        leg_start = i;
                    }
                    // absorb flickers: a leg shorter than a minute between
                    // two legs is mode noise (mis-matched collinear
                    // segments); merge it into the longer neighbor
                    const MIN_LEG_SECS: f64 = 60.0;
                    let mut i = 0usize;
                    while legs.len() > 1 && i < legs.len() {
                        if legs[i].span.duration() >= MIN_LEG_SECS {
                            i += 1;
                            continue;
                        }
                        let into_prev = if i == 0 {
                            false
                        } else if i + 1 == legs.len() {
                            true
                        } else {
                            legs[i - 1].span.duration() >= legs[i + 1].span.duration()
                        };
                        if into_prev {
                            legs[i - 1].end = legs[i].end;
                            legs[i - 1].span = legs[i - 1].span.union(&legs[i].span);
                            legs.remove(i);
                        } else {
                            legs[i + 1].start = legs[i].start;
                            legs[i + 1].span = legs[i + 1].span.union(&legs[i].span);
                            legs.remove(i);
                        }
                    }
                    // re-merge adjacent legs that ended up with equal modes
                    let mut merged: Vec<Leg> = Vec::new();
                    for leg in legs {
                        match merged.last_mut() {
                            Some(last) if last.mode == leg.mode => {
                                last.end = leg.end;
                                last.span = last.span.union(&leg.span);
                            }
                            _ => merged.push(leg),
                        }
                    }

                    for leg in merged {
                        let longest = entries[leg.start..leg.end]
                            .iter()
                            .max_by_key(|e| e.end - e.start)
                            .expect("leg nonempty");
                        let place = Some(longest.place_ref(&self.city.roads));
                        let mut annotations = Vec::new();
                        if let Some(m) = leg.mode {
                            annotations.push(Annotation::mode(m));
                        }
                        tuples.push(SemanticTuple {
                            place,
                            span: leg.span,
                            annotations,
                        });
                    }
                }
            }
        }
        StructuredSemanticTrajectory {
            object_id: cleaned.object_id,
            trajectory_id: cleaned.trajectory_id,
            tuples,
        }
    }
}

fn mean_speed(traj: &RawTrajectory, ep: &Episode) -> f64 {
    let slice = &traj.records()[ep.start..ep.end];
    if slice.len() < 2 {
        return 0.0;
    }
    let speeds: Vec<f64> = slice.windows(2).map(|w| w[0].speed_to(&w[1])).collect();
    speeds.iter().sum::<f64>() / speeds.len() as f64
}

/// Ratio of semantic tuples to raw GPS records — the paper's storage
/// compression measure ("3M GPS records can be annotated with only 8,385
/// cells", 99.7%).
pub fn compression_ratio(raw_records: usize, semantic_tuples: usize) -> f64 {
    if raw_records == 0 {
        return 0.0;
    }
    1.0 - semantic_tuples as f64 / raw_records as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::sim::{SimConfig, TripSimulator};
    use semitri_data::{CityConfig, PoiCategory, TransportMode};
    use semitri_geo::{Point, Rect, Timestamp};

    fn small_city() -> City {
        City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 5_000.0, 5_000.0),
            poi_count: 400,
            region_count: 4,
            seed: 77,
            ..CityConfig::default()
        })
    }

    fn daily_trip(city: &City) -> semitri_data::sim::SimulatedTrack {
        let mut sim = TripSimulator::new(
            &city.roads,
            SimConfig {
                sampling_interval: 5.0,
                ..SimConfig::default()
            },
            9,
            Point::new(1_200.0, 1_500.0),
            Timestamp(8.0 * 3_600.0),
        );
        sim.dwell(900.0, true, None);
        sim.travel_to(Point::new(3_800.0, 3_600.0), TransportMode::Car);
        sim.dwell(1_800.0, false, Some((3, PoiCategory::ItemSale)));
        sim.travel_to(Point::new(1_200.0, 1_500.0), TransportMode::Car);
        sim.dwell(900.0, true, None);
        sim.finish(1, 1)
    }

    #[test]
    fn full_pipeline_produces_consistent_output() {
        let city = small_city();
        let semitri = SeMiTri::new(
            &city,
            PipelineConfig {
                mode: ModeInferencer {
                    allow_car: true,
                    ..ModeInferencer::default()
                },
                ..PipelineConfig::default()
            },
        );
        let track = daily_trip(&city);
        let out = semitri.annotate(&track.to_raw());

        // episodes partition the cleaned trajectory
        assert!(!out.episodes.is_empty());
        assert_eq!(out.episodes[0].start, 0);
        assert_eq!(out.episodes.last().unwrap().end, out.cleaned.len());
        for w in out.episodes.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }

        // region tuples cover the whole trajectory (landuse covers bounds)
        let covered: usize = out.region_tuples.iter().map(|t| t.record_count()).sum();
        assert_eq!(covered, out.cleaned.len());

        // there is at least one stop and one move
        let stops = out
            .episodes
            .iter()
            .filter(|e| e.kind == EpisodeKind::Stop)
            .count();
        let moves = out.episodes.len() - stops;
        assert!(stops >= 2, "stops {stops}");
        assert!(moves >= 1, "moves {moves}");

        // every move episode got a route
        assert_eq!(out.move_routes.len(), moves);
        for (_, entries) in &out.move_routes {
            assert!(!entries.is_empty());
            for e in entries {
                assert!(e.mode.is_some());
            }
        }

        // every stop got a point annotation
        assert_eq!(out.stop_annotations.len(), stops);

        // the SST has a tuple per stop plus >= 1 per move, time-ordered
        assert!(out.sst.len() >= out.episodes.len());
        for w in out.sst.tuples.windows(2) {
            assert!(w[0].span.start.0 <= w[1].span.start.0);
        }

        // latencies were measured
        assert!(out.latency.compute_episode_secs >= 0.0);
        assert!(out.latency.map_match_secs > 0.0);
    }

    #[test]
    fn car_modes_inferred_for_vehicle_config() {
        let city = small_city();
        let semitri = SeMiTri::new(
            &city,
            PipelineConfig {
                mode: ModeInferencer {
                    allow_car: true,
                    ..ModeInferencer::default()
                },
                ..PipelineConfig::default()
            },
        );
        let track = daily_trip(&city);
        let out = semitri.annotate(&track.to_raw());
        let modes: Vec<TransportMode> = out
            .move_routes
            .iter()
            .flat_map(|(_, es)| es.iter().filter_map(|e| e.mode))
            .collect();
        assert!(modes.contains(&TransportMode::Car), "modes {modes:?}");
    }

    #[test]
    fn sst_render_is_nonempty_and_sequential() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let track = daily_trip(&city);
        let out = semitri.annotate(&track.to_raw());
        let rendered = out.sst.render();
        assert!(rendered.contains("→"));
    }

    #[test]
    fn empty_trajectory_is_handled() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let out = semitri.annotate(&RawTrajectory::default());
        assert!(out.episodes.is_empty());
        assert!(out.sst.is_empty());
        assert!(out.region_tuples.is_empty());
    }

    #[test]
    fn degraded_feed_annotates_via_try_annotate_feed() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let track = daily_trip(&city);

        // scramble the track: reverse a chunk, inject NaN and a duplicate
        let mut records = track.records.clone();
        let n = records.len();
        records[n / 4..n / 2].reverse();
        records.push(GpsRecord::new(Point::new(f64::NAN, 0.0), Timestamp(0.0)));
        let dup = records[10];
        records.insert(11, dup);

        let feed = GpsFeed::new(1, 1, records);
        let out = semitri.try_annotate_feed(&feed).unwrap();
        assert!(out.cleaning.dropped_nonfinite >= 1);
        assert!(out.cleaning.reordered >= 1);
        assert!(out.cleaning.deduped >= 1);
        assert_eq!(out.cleaning.kept as usize, out.cleaned.len());
        // episodes still partition the cleaned range
        assert_eq!(out.episodes.first().unwrap().start, 0);
        assert_eq!(out.episodes.last().unwrap().end, out.cleaned.len());

        // the same trajectory through the trusted path reports a clean feed
        let trusted = semitri.try_annotate(&track.to_raw()).unwrap();
        assert_eq!(trusted.cleaning.dropped_nonfinite, 0);
        assert_eq!(trusted.cleaning.reordered, 0);
        assert_eq!(trusted.cleaning.input, track.records.len() as u64);
    }

    #[test]
    fn irrecoverable_feed_is_an_error_not_a_panic() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let feed = GpsFeed::new(
            1,
            9,
            vec![GpsRecord::new(Point::new(f64::NAN, 0.0), Timestamp(0.0))],
        );
        assert_eq!(
            semitri.try_annotate_feed(&feed).unwrap_err(),
            FeedError::NoValidRecords { total: 1 }
        );
        // empty feeds are not an error: they annotate to nothing
        let out = semitri.try_annotate_feed(&GpsFeed::default()).unwrap();
        assert!(out.sst.is_empty());
        assert_eq!(out.cleaning, CleaningReport::default());
    }

    #[test]
    fn compression_ratio_measure() {
        assert_eq!(compression_ratio(0, 0), 0.0);
        assert!((compression_ratio(1_000, 3) - 0.997).abs() < 1e-12);
        assert_eq!(compression_ratio(10, 10), 0.0);
    }

    #[test]
    fn stop_annotation_resolves_plausible_category() {
        // the dwell in daily_trip happens at an ItemSale POI of the city;
        // the HMM should pick a category with local support (the exact one
        // depends on the neighborhood mix)
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let track = daily_trip(&city);
        let out = semitri.annotate(&track.to_raw());
        assert!(!out.stop_annotations.is_empty());
        for (_, ann) in &out.stop_annotations {
            assert!(PoiCategory::ALL.contains(&ann.category));
        }
    }

    #[test]
    fn kernel_fallback_counter_reaches_the_metrics_registry() {
        use semitri_obs::{MetricsObserver, MetricsRegistry};
        let city = small_city();
        let registry = Arc::new(MetricsRegistry::new());
        let semitri = SeMiTri::new(&city, PipelineConfig::default())
            .with_observer(Arc::new(MetricsObserver::new(registry.clone())));
        // zigzag move: +50 m then -25 m per second. Every even fix's
        // forward expansion cuts at the 50 m hop (>= default radius 30),
        // yet the next fixes stay within radius of it backwards — forcing
        // forward-row cache misses that the Line stage must report
        let mut recs = Vec::new();
        let mut x = 100.0;
        for i in 0..60 {
            recs.push(GpsRecord::new(Point::new(x, 2_500.0), Timestamp(i as f64)));
            x += if i % 2 == 0 { 50.0 } else { -25.0 };
        }
        let _ = semitri.annotate(&RawTrajectory::new(1, 1, recs));
        let snap = registry.snapshot();
        assert!(
            snap.counter(KERNEL_FALLBACK_METRIC) > 0,
            "Line stage did not report kernel fallbacks"
        );
    }
}
