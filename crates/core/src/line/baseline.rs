//! Baseline map matchers for the ablation benchmarks.
//!
//! The paper contrasts its global algorithm with classical geometric
//! matching (point-to-curve with perpendicular distance, Bernstein &
//! Kornhauser) and with purely local nearest-segment assignment. Both are
//! implemented here over the same R\*-tree candidate selection so the
//! benchmarks isolate the scoring strategy, not the index.

use super::matcher::MatchedPoint;
use semitri_data::road::SegmentId;
use semitri_data::{GpsRecord, RoadNetwork};
use semitri_geo::Point;
use semitri_index::RStarTree;

/// Distance metric used by [`NearestSegmentMatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMetric {
    /// The paper's Eq. 1 point–segment distance (projection clamped to the
    /// segment, falling back to endpoint distance).
    PointSegment,
    /// Pure perpendicular point-to-line distance — the classical geometric
    /// metric the paper argues breaks on dense/parallel networks.
    Perpendicular,
}

/// Local (context-free) nearest-segment matcher: each point is matched to
/// its closest candidate under the chosen metric, independently.
pub struct NearestSegmentMatcher<'n> {
    net: &'n RoadNetwork,
    index: RStarTree<SegmentId>,
    metric: BaselineMetric,
    candidate_radius_m: f64,
}

impl<'n> NearestSegmentMatcher<'n> {
    /// Builds the baseline matcher.
    pub fn new(net: &'n RoadNetwork, metric: BaselineMetric, candidate_radius_m: f64) -> Self {
        assert!(
            candidate_radius_m > 0.0,
            "candidate radius must be positive"
        );
        let items = net
            .segments()
            .iter()
            .map(|s| (s.geometry.bbox(), s.id))
            .collect();
        Self {
            net,
            index: RStarTree::bulk_load(items),
            metric,
            candidate_radius_m,
        }
    }

    fn distance(&self, seg: SegmentId, p: Point) -> f64 {
        let g = &self.net.segment(seg).geometry;
        match self.metric {
            BaselineMetric::PointSegment => g.distance_to_point(p),
            BaselineMetric::Perpendicular => g.perpendicular_distance(p),
        }
    }

    /// Matches each record to its locally nearest segment.
    pub fn match_records(&self, records: &[GpsRecord]) -> Vec<Option<MatchedPoint>> {
        records
            .iter()
            .map(|r| {
                let mut best: Option<(SegmentId, f64)> = None;
                // streaming radius query (bbox-distance prefilter, a lower
                // bound on the Eq. 1 gate below — same surviving candidates)
                let radius = self.candidate_radius_m;
                self.index
                    .for_each_within_radius(r.point, radius, |_, &seg| {
                        // candidate gate always uses the Eq. 1 distance so both
                        // metrics see the same candidate set
                        let gate = self.net.segment(seg).geometry.distance_to_point(r.point);
                        if gate > radius {
                            return;
                        }
                        let d = self.distance(seg, r.point);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((seg, d));
                        }
                    });
                best.map(|(seg, d)| MatchedPoint {
                    segment: seg,
                    snapped: self.net.segment(seg).geometry.closest_point(r.point),
                    score: 1.0 / (1.0 + d),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::road::RoadClass;
    use semitri_geo::Timestamp;

    /// A T-junction: a long horizontal street and a vertical street ending
    /// on it. Points past the vertical street's end expose the
    /// perpendicular-distance failure mode.
    fn t_net() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(400.0, 0.0),
            Point::new(200.0, 0.0),
            Point::new(200.0, 300.0),
        ];
        let edges = vec![
            (0, 1, RoadClass::Street, false, "horizontal".to_string()),
            (2, 3, RoadClass::Street, false, "vertical".to_string()),
        ];
        RoadNetwork::new(nodes, edges)
    }

    #[test]
    fn point_segment_metric_handles_t_junction() {
        let net = t_net();
        let m = NearestSegmentMatcher::new(&net, BaselineMetric::PointSegment, 500.0);
        // a point on the horizontal street far from the vertical one, but
        // exactly on the vertical street's infinite extension
        let recs = vec![GpsRecord::new(Point::new(205.0, -90.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        assert_eq!(net.segment(mm.segment).name, "horizontal");
    }

    #[test]
    fn perpendicular_metric_fails_at_t_junction() {
        let net = t_net();
        let m = NearestSegmentMatcher::new(&net, BaselineMetric::Perpendicular, 500.0);
        // same point: its perpendicular distance to the *line* through the
        // vertical street is 5 m, beating the 90 m to the horizontal one
        let recs = vec![GpsRecord::new(Point::new(205.0, -90.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        assert_eq!(
            net.segment(mm.segment).name,
            "vertical",
            "the classical metric picks the wrong road — the documented failure"
        );
    }

    #[test]
    fn no_candidates_returns_none() {
        let net = t_net();
        let m = NearestSegmentMatcher::new(&net, BaselineMetric::PointSegment, 50.0);
        let recs = vec![GpsRecord::new(Point::new(5_000.0, 5_000.0), Timestamp(0.0))];
        assert_eq!(m.match_records(&recs), vec![None]);
    }

    #[test]
    fn snapped_point_lies_on_matched_segment() {
        let net = t_net();
        let m = NearestSegmentMatcher::new(&net, BaselineMetric::PointSegment, 500.0);
        let recs = vec![GpsRecord::new(Point::new(100.0, 20.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        let seg = &net.segment(mm.segment).geometry;
        assert!(seg.distance_to_point(mm.snapped) < 1e-9);
    }
}
