//! Transport-mode inference (paper §4.2, Algorithm 2 lines 20–23).
//!
//! After map matching, each run of records on a segment is annotated with
//! the transportation mode "determined by the characteristics of the move
//! episode and the matched road segments, including average velocity,
//! average acceleration, road type". The classifier below follows exactly
//! that recipe: hard road-type evidence first (rail ⇒ metro), then motion
//! statistics, then a median smoothing pass so brief speed dips (bus
//! stops, corners) don't fragment a leg into alternating modes.

use super::RouteEntry;
use semitri_data::road::RoadClass;
use semitri_data::{GpsRecord, RoadNetwork, TransportMode};

/// Motion features of one record run, exposed for tests and analytics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MotionFeatures {
    /// Mean speed in m/s.
    pub avg_speed: f64,
    /// Median speed in m/s (robust to noise spikes and transit halts).
    pub median_speed: f64,
    /// 95th-percentile speed in m/s.
    pub p95_speed: f64,
    /// Mean absolute acceleration in m/s².
    pub avg_abs_accel: f64,
}

/// Computes motion features over a record slice.
pub fn motion_features(records: &[GpsRecord]) -> MotionFeatures {
    if records.len() < 2 {
        return MotionFeatures::default();
    }
    let mut speeds: Vec<f64> = records.windows(2).map(|w| w[0].speed_to(&w[1])).collect();
    let avg_speed = speeds.iter().sum::<f64>() / speeds.len() as f64;
    let mut accels = Vec::with_capacity(speeds.len().saturating_sub(1));
    for i in 1..speeds.len() {
        // speeds[i-1] and speeds[i] are means over [i-1,i] and [i,i+1];
        // the speed change happens between the *midpoints* of those
        // windows, half the span records[i-1]..records[i+1] — not the
        // single interval records[i]..records[i+1], which inflates
        // acceleration whenever sampling is irregular
        let dt = (records[i + 1].t.since(records[i - 1].t) / 2.0).max(1e-6);
        accels.push(((speeds[i] - speeds[i - 1]) / dt).abs());
    }
    let avg_abs_accel = if accels.is_empty() {
        0.0
    } else {
        accels.iter().sum::<f64>() / accels.len() as f64
    };
    speeds.sort_by(|a, b| a.partial_cmp(b).expect("finite speeds"));
    let median = speeds[speeds.len() / 2];
    let p95 = speeds[((speeds.len() - 1) as f64 * 0.95) as usize];
    MotionFeatures {
        avg_speed,
        median_speed: median,
        p95_speed: p95,
        avg_abs_accel,
    }
}

/// The transport-mode classifier.
#[derive(Debug, Clone, Copy)]
pub struct ModeInferencer {
    /// When `true`, fast street movement is classified as [`TransportMode::Car`]
    /// (vehicle datasets); when `false`, the people palette of the paper is
    /// used (walk / bicycle / bus / metro).
    pub allow_car: bool,
    /// Half-width of the median smoothing window over consecutive entries.
    pub smoothing_half_width: usize,
}

impl Default for ModeInferencer {
    fn default() -> Self {
        Self {
            allow_car: false,
            smoothing_half_width: 2,
        }
    }
}

impl ModeInferencer {
    /// Classifies one run from its features and matched road segment.
    pub fn classify(
        &self,
        features: MotionFeatures,
        class: RoadClass,
        bus_route: bool,
    ) -> TransportMode {
        // hard road-type evidence dominates — but only for the people
        // palette AND at rail-plausible speed; vehicles can't ride rails,
        // and a slow "rail" match is a map-matching artifact of collinear
        // street/rail geometry, so both fall through to motion statistics
        if class == RoadClass::Rail && !self.allow_car && features.p95_speed >= 8.0 {
            return TransportMode::Metro;
        }
        // speed bands sit between the mode cruise speeds (walk 1.4, bike
        // 4.2, bus 7, metro 16 m/s), noise-inflated: the *median* speed is
        // robust to GPS spikes and transit halts for the slow bands, and
        // the 95th percentile separates motorized movement (a bus between
        // halts runs at bus speed even when halts drag the mean down)
        if features.median_speed < 2.6 && features.p95_speed < 6.5 {
            return TransportMode::Walk;
        }
        if features.p95_speed < 6.5 {
            return TransportMode::Bicycle;
        }
        // motorized
        if self.allow_car {
            return TransportMode::Car;
        }
        // metro lines often run along/under streets, so a street match
        // with sustained rail-grade speed is still a metro ride (buses
        // don't sustain > ~10 m/s in traffic)
        if features.avg_speed >= 10.0 {
            return TransportMode::Metro;
        }
        let _ = bus_route;
        TransportMode::Bus
    }

    /// Infers and writes the mode of every [`RouteEntry`] in place
    /// (Algorithm 2: `⟨segment, mode⟩` pairs), then median-smooths modes
    /// across consecutive entries.
    ///
    /// `records` must be the slice the entries' index ranges refer to.
    pub fn annotate(&self, net: &RoadNetwork, records: &[GpsRecord], entries: &mut [RouteEntry]) {
        // raw classification per entry
        let raw: Vec<TransportMode> = entries
            .iter()
            .map(|e| {
                // widen very short runs so speeds are estimable
                let lo = e.start.saturating_sub(2);
                let hi = (e.end + 2).min(records.len());
                let f = motion_features(&records[lo..hi]);
                let seg = net.segment(e.segment);
                self.classify(f, seg.class, seg.bus_route)
            })
            .collect();

        // median (majority) smoothing over a window, but never overriding
        // hard rail evidence
        let k = self.smoothing_half_width;
        for (i, e) in entries.iter_mut().enumerate() {
            // rail matches that classified as metro stay metro (smoothing
            // must not let surface modes bleed onto the rail ride)
            if raw[i] == TransportMode::Metro
                && net.segment(e.segment).class == RoadClass::Rail
                && !self.allow_car
            {
                e.mode = Some(TransportMode::Metro);
                continue;
            }
            let lo = i.saturating_sub(k);
            let hi = (i + k + 1).min(raw.len());
            let window = &raw[lo..hi];
            let mut best = raw[i];
            let mut best_count = 0;
            for &cand in window {
                if cand == TransportMode::Metro {
                    continue; // rail evidence doesn't spread onto streets
                }
                let c = window.iter().filter(|&&m| m == cand).count();
                if c > best_count {
                    best_count = c;
                    best = cand;
                }
            }
            e.mode = Some(best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::{Point, TimeSpan, Timestamp};

    fn records_at_speed(v: f64, n: usize) -> Vec<GpsRecord> {
        (0..n)
            .map(|i| GpsRecord::new(Point::new(i as f64 * v, 0.0), Timestamp(i as f64)))
            .collect()
    }

    #[test]
    fn features_constant_speed() {
        let f = motion_features(&records_at_speed(5.0, 20));
        assert!((f.avg_speed - 5.0).abs() < 1e-9);
        assert!((f.p95_speed - 5.0).abs() < 1e-9);
        assert!(f.avg_abs_accel < 1e-9);
    }

    #[test]
    fn features_acceleration_uses_midpoint_gap_on_uneven_sampling() {
        // 10 m/s for 1 s, then a 10 s gap at 12 m/s: the speed change
        // straddles window midpoints 0.5 s and 6.0 s apart ⇒ dt = 5.5 s
        let records = vec![
            GpsRecord::new(Point::new(0.0, 0.0), Timestamp(0.0)),
            GpsRecord::new(Point::new(10.0, 0.0), Timestamp(1.0)),
            GpsRecord::new(Point::new(130.0, 0.0), Timestamp(11.0)),
        ];
        let f = motion_features(&records);
        let expected = (12.0 - 10.0) / ((11.0 - 0.0) / 2.0);
        assert!(
            (f.avg_abs_accel - expected).abs() < 1e-9,
            "avg_abs_accel = {}, expected {expected}",
            f.avg_abs_accel
        );
        // regular 1 Hz sampling is unchanged: midpoint gap == sample gap
        let regular = vec![
            GpsRecord::new(Point::new(0.0, 0.0), Timestamp(0.0)),
            GpsRecord::new(Point::new(10.0, 0.0), Timestamp(1.0)),
            GpsRecord::new(Point::new(22.0, 0.0), Timestamp(2.0)),
        ];
        let f = motion_features(&regular);
        assert!((f.avg_abs_accel - 2.0).abs() < 1e-9);
    }

    #[test]
    fn features_degenerate_inputs() {
        assert_eq!(motion_features(&[]), MotionFeatures::default());
        assert_eq!(
            motion_features(&records_at_speed(3.0, 1)),
            MotionFeatures::default()
        );
    }

    #[test]
    fn classify_by_speed_bands() {
        let inf = ModeInferencer::default();
        let f = |v: f64| MotionFeatures {
            avg_speed: v,
            median_speed: v,
            p95_speed: v,
            avg_abs_accel: 0.1,
        };
        assert_eq!(
            inf.classify(f(1.2), RoadClass::Street, false),
            TransportMode::Walk
        );
        assert_eq!(
            inf.classify(f(4.0), RoadClass::Path, false),
            TransportMode::Bicycle
        );
        assert_eq!(
            inf.classify(f(8.0), RoadClass::Street, true),
            TransportMode::Bus
        );
        assert_eq!(
            inf.classify(f(8.0), RoadClass::Rail, false),
            TransportMode::Metro
        );
    }

    #[test]
    fn rail_requires_plausible_speed() {
        let inf = ModeInferencer::default();
        // fast movement on rail is a metro ride
        let fast = MotionFeatures {
            avg_speed: 14.0,
            median_speed: 14.0,
            p95_speed: 16.0,
            ..MotionFeatures::default()
        };
        assert_eq!(
            inf.classify(fast, RoadClass::Rail, false),
            TransportMode::Metro
        );
        // a slow "rail" match is a collinear-geometry artifact: falls back
        // to the motion statistics
        let slow = MotionFeatures {
            avg_speed: 0.5,
            ..MotionFeatures::default()
        };
        assert_eq!(
            inf.classify(slow, RoadClass::Rail, false),
            TransportMode::Walk
        );
    }

    #[test]
    fn car_palette_for_vehicles() {
        let inf = ModeInferencer {
            allow_car: true,
            ..ModeInferencer::default()
        };
        let fast = MotionFeatures {
            avg_speed: 14.0,
            median_speed: 14.0,
            p95_speed: 20.0,
            avg_abs_accel: 0.5,
        };
        assert_eq!(
            inf.classify(fast, RoadClass::Street, false),
            TransportMode::Car
        );
        assert_eq!(
            inf.classify(fast, RoadClass::Highway, false),
            TransportMode::Car
        );
    }

    #[test]
    fn annotate_smooths_brief_dips() {
        use semitri_data::road::RoadClass;
        // network: 5 consecutive street segments
        let nodes: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let edges = (0..5)
            .map(|i| {
                (
                    i as u32,
                    i as u32 + 1,
                    RoadClass::Street,
                    true,
                    format!("s{i}"),
                )
            })
            .collect();
        let net = RoadNetwork::new(nodes, edges);

        // records: bus-speed movement with a dip in the middle
        let mut records = Vec::new();
        let mut x = 0.0;
        for i in 0..50 {
            let v = if (20..24).contains(&i) { 0.5 } else { 7.0 };
            x += v;
            records.push(GpsRecord::new(Point::new(x, 0.0), Timestamp(i as f64)));
        }
        // entries: one per 10 records on segments 0..5
        let mut entries: Vec<RouteEntry> = (0..5)
            .map(|k| RouteEntry {
                segment: k as u32,
                span: TimeSpan::new(Timestamp(k as f64 * 10.0), Timestamp(k as f64 * 10.0 + 9.0)),
                start: k * 10,
                end: (k + 1) * 10,
                mode: None,
            })
            .collect();
        ModeInferencer::default().annotate(&net, &records, &mut entries);
        // the dip entry is outvoted by its bus neighbors
        assert!(
            entries.iter().all(|e| e.mode == Some(TransportMode::Bus)),
            "modes: {:?}",
            entries.iter().map(|e| e.mode).collect::<Vec<_>>()
        );
    }
}
