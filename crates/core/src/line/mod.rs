//! Semantic Line Annotation Layer (paper §4.2, Algorithm 2).
//!
//! Two stages: (1) global map matching mapping the move episodes of a
//! trajectory onto road segments using the point–segment distance
//! (Eq. 1), local scores (Eq. 2) and kernel-smoothed global scores
//! (Eqs. 3–4); (2) transport-mode inference over the matched segment
//! sequence.
//!
//! [`baseline`] hosts the geometric matchers the ablation benchmarks
//! compare against.

pub mod baseline;
pub mod incremental;
pub mod matcher;
pub mod mode;

use crate::model::{Annotation, PlaceKind, PlaceRef};
use semitri_data::road::SegmentId;
use semitri_data::{GpsRecord, RoadNetwork, TransportMode};
use semitri_geo::TimeSpan;

/// One entry of the matched route: a maximal run of records mapped to the
/// same road segment, with its inferred transportation mode — the paper's
/// `⟨r_i, mode_i⟩` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteEntry {
    /// The matched road segment.
    pub segment: SegmentId,
    /// Entering/leaving times on the segment.
    pub span: TimeSpan,
    /// First matched record index (inclusive, within the matched slice).
    pub start: usize,
    /// Last matched record index (exclusive).
    pub end: usize,
    /// Inferred transport mode for this run.
    pub mode: Option<TransportMode>,
}

impl RouteEntry {
    /// Converts to a line place reference against `net`.
    pub fn place_ref(&self, net: &RoadNetwork) -> PlaceRef {
        let seg = net.segment(self.segment);
        PlaceRef::new(PlaceKind::Line, seg.id as u64, seg.name.clone())
    }

    /// Mode annotation, when a mode was inferred.
    pub fn mode_annotation(&self) -> Option<Annotation> {
        self.mode.map(Annotation::mode)
    }
}

/// Groups per-record matches into maximal same-segment [`RouteEntry`] runs
/// (Algorithm 2 lines 19–24: a new trajectory tuple whenever the matched
/// segment changes). Unmatched records break runs.
pub fn group_matches(
    records: &[GpsRecord],
    matches: &[Option<matcher::MatchedPoint>],
) -> Vec<RouteEntry> {
    assert_eq!(
        records.len(),
        matches.len(),
        "records/matches length mismatch"
    );
    let mut out: Vec<RouteEntry> = Vec::new();
    for (i, m) in matches.iter().enumerate() {
        let Some(m) = m else { continue };
        if let Some(last) = out.last_mut() {
            if last.segment == m.segment && last.end == i {
                last.end = i + 1;
                last.span = TimeSpan::new(last.span.start, records[i].t);
                continue;
            }
        }
        out.push(RouteEntry {
            segment: m.segment,
            span: TimeSpan::new(records[i].t, records[i].t),
            start: i,
            end: i + 1,
            mode: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::matcher::MatchedPoint;
    use super::*;
    use semitri_geo::{Point, Timestamp};

    fn rec(t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(t, 0.0), Timestamp(t))
    }

    fn mp(seg: SegmentId) -> Option<MatchedPoint> {
        Some(MatchedPoint {
            segment: seg,
            snapped: Point::new(0.0, 0.0),
            score: 1.0,
        })
    }

    #[test]
    fn grouping_merges_runs_and_breaks_on_gaps() {
        let records: Vec<GpsRecord> = (0..6).map(|i| rec(i as f64)).collect();
        let matches = vec![mp(1), mp(1), None, mp(1), mp(2), mp(2)];
        let entries = group_matches(&records, &matches);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].segment, 1);
        assert_eq!((entries[0].start, entries[0].end), (0, 2));
        assert_eq!(entries[1].segment, 1); // gap broke the run
        assert_eq!((entries[1].start, entries[1].end), (3, 4));
        assert_eq!(entries[2].segment, 2);
        assert_eq!(entries[2].span.duration(), 1.0);
    }

    #[test]
    fn grouping_empty() {
        assert!(group_matches(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn grouping_checks_lengths() {
        group_matches(&[rec(0.0)], &[]);
    }
}
