//! Global map matching (paper §4.2, Equations 1–4, Algorithm 2).
//!
//! For every GPS point `Q_i` of a move episode:
//!
//! 1. select candidate road segments within a radius of `Q_i` via the
//!    R\*-tree (Algorithm 2 line 5);
//! 2. compute the point–segment distance of Eq. 1 to each candidate and
//!    normalize it into `localScore(Q_i, r) = d_min(Q_i) / d(Q_i, r)`
//!    (Eq. 2) — the nearest candidate scores 1, farther ones less;
//! 3. compute `globalScore(Q_i, r)` as the kernel-weighted mean of the
//!    local scores of the neighboring points `Q_{-N1} … Q_{+N2}` inside
//!    the global-view radius `R`, with Gaussian kernel weights
//!    `w_k = exp(-d(Q_0,Q_k)² / 2σ²)` (Eqs. 3–4);
//! 4. match `Q_i` to the candidate with the highest global score and snap
//!    its position onto the segment (Algorithm 2 lines 15–17).
//!
//! The neighbor context makes the matching robust on parallel roads and
//! noisy fixes, while the R\*-tree candidate selection keeps the whole
//! pass `O(n)` in the number of GPS points.

use semitri_data::road::SegmentId;
use semitri_data::{GpsRecord, RoadNetwork};
use semitri_geo::{exp_fast, KernelMode, Point, Rect, SegmentLanes, LANES};
use semitri_index::{
    CellOracle, FrozenRStarTree, FrozenRangeScratch, IndexMode, OracleMode, RStarTree, SnapshotSet,
};
use std::sync::Arc;

/// Parameters of the global map-matching algorithm.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Global-view radius `R` in meters: neighbors within this distance of
    /// the current point contribute to its global score. The paper sweeps
    /// the dimensionless `R ∈ 1..5`; multiply by the mean point spacing to
    /// convert (see `experiments fig10`).
    pub radius_m: f64,
    /// Kernel bandwidth `σ` as a fraction of `R` (the paper sweeps
    /// σ ∈ {0.5R, 1R, 1.5R, 2R}).
    pub sigma_factor: f64,
    /// Candidate-selection radius in meters: segments farther than this
    /// from a point (Eq. 1 distance) are not considered. Plays the role of
    /// the paper's "neighboring segments" cutoff.
    pub candidate_radius_m: f64,
    /// Hard cap on neighbors considered on each side of the current point
    /// (guards against degenerate dense clusters).
    pub max_neighbors: usize,
    /// How the Eq. 4 kernel weights are evaluated.
    /// [`KernelMode::Exact`] (default) is bit-identical to
    /// [`GlobalMapMatcher::match_records_naive`]; [`KernelMode::Fast`]
    /// swaps the libm `exp` for the vectorizable polynomial
    /// [`semitri_geo::exp_fast`], bounding the per-weight (and therefore
    /// per-score) deviation by [`semitri_geo::EXP_FAST_REL_TOL`] —
    /// candidate identity and the radius cut stay exact either way.
    pub kernel_mode: KernelMode,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            radius_m: 30.0,
            sigma_factor: 0.5,
            candidate_radius_m: 60.0,
            max_neighbors: 32,
            kernel_mode: KernelMode::Exact,
        }
    }
}

/// The match produced for one GPS record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPoint {
    /// Matched road segment.
    pub segment: SegmentId,
    /// Position corrected onto the segment (Algorithm 2 line 17).
    pub snapped: Point,
    /// Winning global score.
    pub score: f64,
}

/// Reusable scratch memory for [`GlobalMapMatcher::match_records_with`].
///
/// Holds the flattened per-episode candidate arena, the epoch-stamped dense
/// segment→slot map used to merge local scores in `O(W · C)`, the symmetric
/// forward kernel-weight cache that computes each neighbor-pair weight once
/// instead of twice, and the last-cell candidate cache that lets
/// consecutive fixes in the same grid cell skip the R\*-tree query
/// entirely. Create one per worker (or per
/// trajectory) and thread it through every episode: after the first few
/// calls the buffers reach steady-state capacity and matching performs no
/// per-fix heap allocation.
///
/// A scratch may be freely reused across matchers and networks — every
/// cached structure is either revalidated or rebuilt before it is read.
/// The cell cache persists across `match_records_with` calls (a long-lived
/// streaming session keeps paying for it otherwise) but is keyed on the
/// owning matcher's unique fingerprint: handing the scratch to a matcher
/// with a different configuration, index backend or network invalidates
/// the cache instead of replaying a stale candidate list whose radius or
/// segment set no longer applies.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Flattened candidate segment ids for every record of the episode.
    cand_segs: Vec<SegmentId>,
    /// Eq. 2 local scores, parallel to `cand_segs` (filled with raw Eq. 1
    /// distances first, normalized in place).
    cand_scores: Vec<f64>,
    /// `offsets[i]..offsets[i + 1]` bounds record `i`'s candidate slice.
    offsets: Vec<usize>,
    /// Kernel weight of each neighbor `Q_k` for the current point `Q_0`,
    /// written once during window expansion and read by the merge loop
    /// (the naive path computes every neighbor distance twice and every
    /// kernel weight from scratch).
    w_buf: Vec<f64>,
    /// Forward kernel-weight rows: `fwd_w[(k % stride) * stride + j]` holds
    /// the weight of the pair `(Q_k, Q_{k+1+j})`, written while processing
    /// fix `k`. The pair distance is bitwise symmetric, so a later fix's
    /// *backward* expansion reuses the row instead of recomputing
    /// distance + `exp` — halving the transcendental work without changing
    /// a single result bit.
    fwd_w: Vec<f64>,
    /// Which fix owns each forward row (`usize::MAX` = none); revalidated
    /// every call so rows never leak across episodes.
    fwd_owner: Vec<usize>,
    /// Number of weights stored in each forward row.
    fwd_len: Vec<u32>,
    /// Global-score accumulators for the current record's candidates.
    acc: Vec<f64>,
    /// Dense map: segment id → candidate slot of the current record.
    slot: Vec<u32>,
    /// Epoch stamp validating `slot` entries, so the map never needs a
    /// per-record clear.
    stamp: Vec<u32>,
    epoch: u32,
    /// Fingerprint of the matcher whose cell cache is loaded (`0` = none:
    /// matcher fingerprints start at 1).
    cell_owner: u64,
    /// Grid cell (side = candidate radius) of the most recent fix.
    cell: Option<(i64, i64)>,
    /// Superset of segments within candidate reach of any point in `cell`,
    /// with their bounding boxes so a per-fix pass can pre-filter with the
    /// same cheap `bbox ∩ window` test the R\*-tree query would apply.
    cell_segs: Vec<(Rect, SegmentId)>,
    /// Memo of the last oracle lookup: the nominal rectangle of the served
    /// cell plus its CSR slab range in the owning matcher's oracle arena.
    /// A fix inside the rectangle reuses the range without re-locating.
    /// The range indexes a *specific* arena, so this is covered by the
    /// same `cell_owner` fingerprint guard as the cell cache: any other
    /// matcher's hint — a different arena, or one whose oracle was rebuilt
    /// (a rebuild always mints a new matcher, hence a new fingerprint) —
    /// is discarded, never replayed.
    oracle_hint: Option<(Rect, u32, u32)>,
    /// Traversal stack for the frozen segment index (index-based, so the
    /// scratch stays lifetime-free and embeddable in long-lived state).
    tree_stack: FrozenRangeScratch,
    /// SoA gather of one fix's window-passing candidate geometries, the
    /// input slab of the batched Eq. 1 lane kernel.
    seg_lanes: SegmentLanes,
    /// Candidate segment ids parallel to `seg_lanes`.
    pending: Vec<SegmentId>,
    /// Lane-kernel Eq. 1 distances parallel to `pending`.
    dist_buf: Vec<f64>,
    /// Number of backward-expansion kernel weights recomputed because the
    /// symmetric forward-row cache missed (row evicted from the ring or
    /// the pair beyond the row stride). Every recompute produces the exact
    /// bits the cached row held — the regression tests assert it — so this
    /// counts wasted transcendental work, not drift.
    kernel_fallback: u64,
}

impl MatchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward-row cache-miss recomputations since the last
    /// [`MatchScratch::take_kernel_fallbacks`] (observability: surfaced as
    /// the `stage.line.kernel_fallback` counter by the pipeline).
    pub fn kernel_fallbacks(&self) -> u64 {
        self.kernel_fallback
    }

    /// Returns the fallback count and resets it, so per-trajectory
    /// reporting doesn't double-count a reused scratch.
    pub fn take_kernel_fallbacks(&mut self) -> u64 {
        std::mem::take(&mut self.kernel_fallback)
    }
}

/// The global map matcher of the Semantic Line Annotation Layer.
///
/// ```
/// use semitri_core::{GlobalMapMatcher, MatchParams};
/// use semitri_data::{City, CityConfig, GpsRecord};
/// use semitri_geo::Timestamp;
///
/// let city = City::generate(CityConfig::default());
/// let matcher = GlobalMapMatcher::new(&city.roads, MatchParams::default());
/// // points along a street match to road segments with snapped positions
/// let seg = &city.roads.segments()[0];
/// let records: Vec<GpsRecord> = (0..5)
///     .map(|i| GpsRecord::new(seg.geometry.point_at(i as f64 / 5.0), Timestamp(i as f64)))
///     .collect();
/// let matches = matcher.match_records(&records);
/// assert!(matches.iter().all(|m| m.is_some()));
/// ```
pub struct GlobalMapMatcher {
    net: Arc<RoadNetwork>,
    index: SegmentIndex,
    /// Precomputed per-cell candidate slabs (the default). `None` when
    /// [`OracleMode::Disabled`]: every cell-cache refill walks the tree.
    oracle: Option<CellOracle<SegmentId>>,
    params: MatchParams,
    /// Process-unique id keying scratch caches to this matcher instance
    /// (configuration + network + index backend + oracle arena), never 0.
    fingerprint: u64,
}

/// Source of matcher fingerprints. Starts at 1 so the `MatchScratch`
/// default of 0 can never collide with a real matcher.
static NEXT_FINGERPRINT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The candidate-selection backend: built once per road network and read
/// once per cell-cache refill, so the frozen snapshot is the default; the
/// dynamic tree stays selectable as the identity oracle.
#[derive(Debug, Clone)]
enum SegmentIndex {
    Dynamic(RStarTree<SegmentId>),
    Frozen(Box<FrozenRStarTree<SegmentId>>),
}

impl SegmentIndex {
    /// Visits every segment bbox intersecting `query` — identical results
    /// in identical order on both backends. The stack is only touched by
    /// the frozen side (the dynamic tree recurses on the program stack).
    fn for_each_in_with_stack(
        &self,
        stack: &mut FrozenRangeScratch,
        query: &Rect,
        f: impl FnMut(&Rect, &SegmentId),
    ) {
        match self {
            SegmentIndex::Dynamic(t) => t.for_each_in(query, f),
            SegmentIndex::Frozen(t) => t.for_each_in_with(stack, query, f),
        }
    }
}

impl GlobalMapMatcher {
    /// Builds the matcher over a road network (bulk-loads an R\*-tree over
    /// the segment bounding boxes and freezes it into the flat snapshot).
    ///
    /// Accepts either an `Arc<RoadNetwork>` (shared with a snapshot
    /// generation, no copy) or `&RoadNetwork` (cloned into a fresh `Arc`
    /// for callers that keep ownership).
    pub fn new(net: impl Into<Arc<RoadNetwork>>, params: MatchParams) -> Self {
        Self::with_index_mode(net, params, IndexMode::Frozen)
    }

    /// [`GlobalMapMatcher::new`] with an explicit index backend (keeps the
    /// default precomputed oracle).
    pub fn with_index_mode(
        net: impl Into<Arc<RoadNetwork>>,
        params: MatchParams,
        mode: IndexMode,
    ) -> Self {
        Self::with_modes(net, params, mode, OracleMode::default())
    }

    /// [`GlobalMapMatcher::new`] with explicit index and oracle backends.
    ///
    /// With [`OracleMode::Precomputed`] the per-cell candidate slabs are
    /// materialized once here (grid pitch = query radius = the candidate
    /// radius); under [`IndexMode::Dynamic`] the oracle is built from a
    /// frozen snapshot of the same tree, whose visit order is bit-identical
    /// to the dynamic tree's, so the arena is byte-identical across
    /// backends and the identity contract holds for both.
    pub fn with_modes(
        net: impl Into<Arc<RoadNetwork>>,
        params: MatchParams,
        mode: IndexMode,
        oracle_mode: OracleMode,
    ) -> Self {
        let net = net.into();
        assert!(params.radius_m > 0.0, "radius must be positive");
        assert!(params.sigma_factor > 0.0, "sigma factor must be positive");
        assert!(
            params.candidate_radius_m > 0.0,
            "candidate radius must be positive"
        );
        // An underflowing σ² turns the kernel exponent into `-0·∞ = NaN`,
        // which `max_by` would silently treat as Equal; reject it up front.
        let sigma = params.sigma_factor * params.radius_m;
        assert!(
            (1.0 / (2.0 * sigma * sigma)).is_finite(),
            "sigma = {sigma} underflows the Gaussian kernel; \
             increase radius_m or sigma_factor"
        );
        let items = net
            .segments()
            .iter()
            .map(|s| (s.geometry.bbox(), s.id))
            .collect();
        let tree = RStarTree::bulk_load(items);
        let r = params.candidate_radius_m;
        // Cells a third of the candidate radius: the per-cell catchment —
        // and with it the slab every fix filters — shrinks from (3r)² to
        // (r/3 + 2r)² of bounding boxes, roughly halving the per-fix scan.
        // The lazy cell cache could never afford cells this small (each
        // cell change walked the tree); precomputed slabs make the refill
        // free, trading arena memory for it. Candidate identity is
        // independent of the cell size — the per-fix window/distance
        // filter does the selecting; cells only bound the superset.
        let (index, oracle) = match mode {
            IndexMode::Frozen => {
                // one generation of the segment read path = one SnapshotSet:
                // the frozen tree and its oracle arena are built together so
                // they always describe the same world
                let (frozen, oracle) =
                    SnapshotSet::build(&tree, r / 3.0, r, oracle_mode).into_parts();
                (SegmentIndex::Frozen(frozen), oracle)
            }
            IndexMode::Dynamic => {
                let oracle = match oracle_mode {
                    OracleMode::Disabled => None,
                    _ => {
                        SnapshotSet::build(&tree, r / 3.0, r, oracle_mode)
                            .into_parts()
                            .1
                    }
                };
                (SegmentIndex::Dynamic(tree), oracle)
            }
        };
        Self {
            net,
            index,
            oracle,
            params,
            fingerprint: NEXT_FINGERPRINT.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The precomputed oracle, when enabled (for memory reporting).
    pub fn oracle(&self) -> Option<&CellOracle<SegmentId>> {
        self.oracle.as_ref()
    }

    /// The parameters in effect.
    pub fn params(&self) -> MatchParams {
        self.params
    }

    /// The road network this matcher matches against (the snapshot the
    /// matcher was built from — under generation swaps this can lag the
    /// live world until the next publish).
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// Appends the candidates of one fix (with raw Eq. 1 distances, before
    /// the Eq. 2 normalization) to the scratch arena.
    ///
    /// With the precomputed oracle (the default), the candidate superset is
    /// an O(1) CSR slab lookup: the fix's grid cell indexes a list gathered
    /// at build time by one frozen range query over the cell's catchment
    /// window, preserved in tree visit order. The per-fix pass applies the
    /// same `bbox ∩ window(p)` prefilter and exact `d ≤ r` test a direct
    /// tree query would, on a superset list in the same traversal order —
    /// so the selected candidates and their order are bitwise identical to
    /// the tree path's. Fixes beyond the oracle's precompute margin (and
    /// non-finite fixes) fall back to the tree path below.
    ///
    /// Without the oracle, candidates come from the cell cache: the scratch
    /// remembers the grid cell (side = candidate radius) of the previous
    /// fix together with the superset of segments whose bounding boxes fall
    /// within candidate reach of *any* point of that cell. Consecutive
    /// fixes in the same cell — the overwhelmingly common case on a GPS
    /// track — skip the R\*-tree entirely; the same prefilter argument
    /// makes the results identical.
    fn push_candidates(&self, scratch: &mut MatchScratch, p: Point) {
        let r = self.params.candidate_radius_m;
        if let Some(oracle) = &self.oracle {
            // hint memo: a fix inside the last served cell's nominal
            // rectangle is provably covered by that cell's catchment
            // window (catchment ⊇ rect + query-radius pad), so the stored
            // slab range applies without re-locating
            let range = match scratch.oracle_hint {
                Some((rect, s, e))
                    if p.x >= rect.min_x
                        && p.x < rect.max_x
                        && p.y >= rect.min_y
                        && p.y < rect.max_y =>
                {
                    Some((s, e))
                }
                _ => oracle.locate(p).map(|cell| {
                    let (s, e) = oracle.range(cell);
                    scratch.oracle_hint = Some((oracle.cell_rect(cell), s, e));
                    (s, e)
                }),
            };
            if let Some((s, e)) = range {
                let (rects, items) = oracle.slab(s, e);
                let window = Rect::from_point(p).inflate(r);
                // two passes: gather the window-passing candidates into the
                // SoA slab in tree order, batch-evaluate Eq. 1 with the
                // lane kernel (bit-identical per element to
                // `distance_to_point`), then apply the exact `d <= r` cut
                // in the same order the scalar loop would
                scratch.pending.clear();
                scratch.seg_lanes.clear();
                for (rect, &seg_id) in rects.iter().zip(items) {
                    if !rect.intersects(&window) {
                        continue;
                    }
                    scratch.pending.push(seg_id);
                    scratch.seg_lanes.push(self.net.segment(seg_id).geometry);
                }
                scratch
                    .seg_lanes
                    .distances_to_point(p, &mut scratch.dist_buf);
                for (&seg_id, &d) in scratch.pending.iter().zip(&scratch.dist_buf) {
                    if d <= r {
                        scratch.cand_segs.push(seg_id);
                        scratch.cand_scores.push(d);
                    }
                }
                return;
            }
            // beyond the precompute margin: the tree path is the oracle's
            // own fallback contract
        }
        let key = ((p.x / r).floor() as i64, (p.y / r).floor() as i64);
        if scratch.cell != Some(key) {
            scratch.cell_segs.clear();
            // tiny extra inflation absorbs the rounding of `p/r` at cell
            // boundaries, keeping the superset property exact
            let pad = r * (1.0 + 1e-9);
            let cell_window = Rect::new(
                key.0 as f64 * r,
                key.1 as f64 * r,
                (key.0 + 1) as f64 * r,
                (key.1 + 1) as f64 * r,
            )
            .inflate(pad);
            let segs = &mut scratch.cell_segs;
            self.index.for_each_in_with_stack(
                &mut scratch.tree_stack,
                &cell_window,
                |rect, &seg_id| segs.push((*rect, seg_id)),
            );
            scratch.cell = Some(key);
        }
        let window = Rect::from_point(p).inflate(r);
        // same gather → lane kernel → ordered cut as the oracle path
        scratch.pending.clear();
        scratch.seg_lanes.clear();
        for &(rect, seg_id) in &scratch.cell_segs {
            if !rect.intersects(&window) {
                continue;
            }
            scratch.pending.push(seg_id);
            scratch.seg_lanes.push(self.net.segment(seg_id).geometry);
        }
        scratch
            .seg_lanes
            .distances_to_point(p, &mut scratch.dist_buf);
        for (&seg_id, &d) in scratch.pending.iter().zip(&scratch.dist_buf) {
            if d <= r {
                scratch.cand_segs.push(seg_id);
                scratch.cand_scores.push(d);
            }
        }
    }

    /// Matches a sequence of records (one move episode) to road segments,
    /// threading caller-owned scratch memory so the hot path performs no
    /// per-fix heap allocation. Returns one entry per record; `None` where
    /// no candidate segment was within reach.
    ///
    /// Produces results identical to [`Self::match_records_naive`] (the
    /// property suite asserts exact agreement); only the cost model
    /// changes: the Eqs. 3–4 merge runs in `O(W · C)` per fix via an
    /// epoch-stamped dense slot map instead of the `O(W · C²)` nested scan,
    /// kernel weights are computed once per *pair* (the symmetric
    /// forward-row cache) instead of twice per fix, and candidate selection
    /// reuses the per-cell cache in `scratch`.
    pub fn match_records_with(
        &self,
        scratch: &mut MatchScratch,
        records: &[GpsRecord],
    ) -> Vec<Option<MatchedPoint>> {
        let n = records.len();

        // Algorithm 2 lines 5–9: per-point candidates + local scores,
        // flattened into the scratch arena. The cell cache persists across
        // calls while this matcher owns it (back-to-back episodes of a
        // streaming session usually resume in the same cell); any other
        // matcher's cache — a different radius, network or index backend —
        // is discarded, not replayed.
        if scratch.cell_owner != self.fingerprint {
            scratch.cell = None;
            scratch.cell_segs.clear();
            // the oracle hint indexes the owner's arena — a foreign hint's
            // slab range would be meaningless (or out of bounds) here
            scratch.oracle_hint = None;
            scratch.cell_owner = self.fingerprint;
        }
        scratch.cand_segs.clear();
        scratch.cand_scores.clear();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        for rec in records {
            let start = scratch.cand_segs.len();
            self.push_candidates(scratch, rec.point);
            let ds = &mut scratch.cand_scores[start..];
            if !ds.is_empty() {
                // Eq. 2 in place: d → d_min / d, with the exact-hit floor
                let d_min = ds.iter().copied().fold(f64::INFINITY, f64::min).max(1e-6);
                for d in ds {
                    *d = d_min / (*d).max(1e-6);
                }
            }
            scratch.offsets.push(scratch.cand_segs.len());
        }

        let radius = self.params.radius_m;
        let sigma = self.params.sigma_factor * radius;
        let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
        let kernel_mode = self.params.kernel_mode;
        // one expression for every Eq. 4 weight in this call — forward
        // rows, backward fallback recomputes and lane chunks all evaluate
        // the identical chain, so a cache hit and its recompute are
        // bit-equal in either mode
        let kernel_w = |d: f64| match kernel_mode {
            KernelMode::Exact => (-d * d * inv_two_sigma_sq).exp(),
            KernelMode::Fast => exp_fast(-d * d * inv_two_sigma_sq),
        };

        scratch.slot.resize(self.net.segments().len(), 0);
        scratch.stamp.resize(self.net.segments().len(), 0);
        scratch.w_buf.clear();
        scratch.w_buf.resize(n, 0.0);
        // Forward-row cache geometry: a backward neighbor is at most
        // `max_neighbors` fixes behind, so a ring of that many rows suffices
        // (capped so a huge cap cannot balloon the scratch — misses beyond
        // the ring just recompute).
        let stride = self.params.max_neighbors.clamp(1, 64);
        scratch.fwd_w.resize(stride * stride, 0.0);
        scratch.fwd_owner.clear();
        scratch.fwd_owner.resize(stride, usize::MAX);
        scratch.fwd_len.resize(stride, 0);

        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (ci0, ci1) = (scratch.offsets[i], scratch.offsets[i + 1]);
            if ci0 == ci1 {
                out.push(None);
                continue;
            }
            let p0 = records[i].point;

            // neighbor window (Algorithm 2 line 11): expand both ways while
            // within the global-view radius R, caching each neighbor's
            // kernel weight for the merge loop below. `d(Q_0, Q_0)` is an
            // exact 0, so Q_0's own weight is exactly `exp(-0) = 1`.
            scratch.w_buf[i] = 1.0;
            let mut lo = i;
            while lo > 0 && i - lo < self.params.max_neighbors {
                let k = lo - 1;
                let row = k % stride;
                let off = i - k - 1;
                if scratch.fwd_owner[row] == k && off < scratch.fwd_len[row] as usize {
                    // the pair distance is bitwise symmetric, so fix k's
                    // forward pass already produced this exact weight — and
                    // its presence in the row proves d(Q_k, Q_0) < R
                    scratch.w_buf[k] = scratch.fwd_w[row * stride + off];
                } else {
                    let d = records[k].point.distance(p0);
                    if d >= radius {
                        break;
                    }
                    // cache miss (row evicted or pair beyond the stride):
                    // recompute the weight — same expression, same bits as
                    // the row would have held — and count the wasted exp
                    scratch.kernel_fallback += 1;
                    scratch.w_buf[k] = kernel_w(d);
                }
                lo = k;
            }
            // forward expansion in 8-wide chunks: a block of neighbor
            // distances is computed as one lane pass (the same
            // `records[k].point.distance(p0)` chain per element), the
            // radius cut is resolved after the block in ascending order —
            // so the accepted prefix, every distance and every weight stay
            // bit-identical to the one-at-a-time loop, which computed `d`
            // then broke at the first `d >= radius` exactly like the cut
            // below. Distances past the cut are speculative and discarded.
            let row = i % stride;
            scratch.fwd_owner[row] = i;
            let limit = (n - 1 - i).min(self.params.max_neighbors);
            let mut taken = 0usize;
            while taken < limit {
                let block = (limit - taken).min(LANES);
                let mut dbuf = [0.0f64; LANES];
                for t in 0..block {
                    let q = records[i + 1 + taken + t].point;
                    let dx = q.x - p0.x;
                    let dy = q.y - p0.y;
                    dbuf[t] = (dx * dx + dy * dy).sqrt();
                }
                let cut = dbuf[..block]
                    .iter()
                    .position(|&d| d >= radius)
                    .unwrap_or(block);
                // Eq. 4 weight row for the accepted prefix, as chunked
                // `(-d²·inv2σ²).exp()` lanes
                for (t, &d) in dbuf.iter().enumerate().take(cut) {
                    let w = kernel_w(d);
                    scratch.w_buf[i + 1 + taken + t] = w;
                    let off = taken + t;
                    if off < stride {
                        scratch.fwd_w[row * stride + off] = w;
                    }
                }
                taken += cut;
                if cut < block {
                    break;
                }
            }
            let hi = i + taken;
            scratch.fwd_len[row] = taken.min(stride) as u32;

            // map Q_i's candidate segments to dense accumulator slots; the
            // epoch stamp invalidates the previous record's entries without
            // touching the whole table
            scratch.epoch = match scratch.epoch.checked_add(1) {
                Some(e) => e,
                None => {
                    scratch.stamp.fill(0);
                    1
                }
            };
            scratch.acc.clear();
            scratch.acc.resize(ci1 - ci0, 0.0);
            for (j, &seg) in scratch.cand_segs[ci0..ci1].iter().enumerate() {
                scratch.slot[seg as usize] = j as u32;
                scratch.stamp[seg as usize] = scratch.epoch;
            }

            // Eqs. 3–4: kernel-weighted merge of neighbor local scores.
            // Accumulation visits neighbors in ascending k for every slot,
            // matching the naive path's float-addition order exactly.
            // Zipped slices keep the inner loop free of bounds checks.
            let epoch = scratch.epoch;
            let (stamp, slot, acc) = (&scratch.stamp, &scratch.slot, &mut scratch.acc);
            let mut weight_sum = 0.0;
            for k in lo..=hi {
                let w = scratch.w_buf[k];
                weight_sum += w;
                let (k0, k1) = (scratch.offsets[k], scratch.offsets[k + 1]);
                for (&seg, &ls) in scratch.cand_segs[k0..k1]
                    .iter()
                    .zip(&scratch.cand_scores[k0..k1])
                {
                    let seg = seg as usize;
                    if stamp[seg] == epoch {
                        acc[slot[seg] as usize] += w * ls;
                    }
                }
            }
            assert!(
                weight_sum > 0.0,
                "kernel weight sum must be positive (sigma = {sigma}), \
                 got {weight_sum} at record {i}"
            );

            let (best_seg, best_score) = scratch.cand_segs[ci0..ci1]
                .iter()
                .zip(&scratch.acc)
                .map(|(&s, &acc)| (s, acc / weight_sum))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("candidates nonempty");

            let snapped = self.net.segment(best_seg).geometry.closest_point(p0);
            out.push(Some(MatchedPoint {
                segment: best_seg,
                snapped,
                score: best_score,
            }));
        }
        out
    }

    /// Candidate segments of one point with their raw Eq. 1 distances, as
    /// selected by the production hot path (oracle slab when enabled and
    /// in reach, cell cache otherwise). Exposed so tests can assert the
    /// candidate *set and order* — not just the final matches — against
    /// [`Self::candidates_at_via_tree`]. Allocates; not for the hot path.
    pub fn candidates_at(&self, p: Point) -> Vec<(SegmentId, f64)> {
        let mut scratch = MatchScratch::new();
        scratch.cell_owner = self.fingerprint;
        self.push_candidates(&mut scratch, p);
        scratch
            .cand_segs
            .iter()
            .copied()
            .zip(scratch.cand_scores.iter().copied())
            .collect()
    }

    /// Candidate segments of one point via a direct per-fix tree query —
    /// the reference [`Self::candidates_at`] must reproduce bitwise, in
    /// the same order.
    pub fn candidates_at_via_tree(&self, p: Point) -> Vec<(SegmentId, f64)> {
        self.candidates(p)
    }

    /// Candidate segments of one point with their Eq. 1 distances (used by
    /// the naive reference path).
    fn candidates(&self, p: Point) -> Vec<(SegmentId, f64)> {
        let window = Rect::from_point(p).inflate(self.params.candidate_radius_m);
        let mut out = Vec::new();
        self.index
            .for_each_in_with_stack(&mut FrozenRangeScratch::new(), &window, |_, &seg_id| {
                let d = self.net.segment(seg_id).geometry.distance_to_point(p);
                if d <= self.params.candidate_radius_m {
                    out.push((seg_id, d));
                }
            });
        out
    }

    /// Local scores (Eq. 2) for one point: `d_min / d` per candidate, with
    /// an exact-hit floor so zero distances score 1 without dividing by 0.
    fn local_scores(&self, p: Point) -> Vec<(SegmentId, f64)> {
        let mut cands = self.candidates(p);
        if cands.is_empty() {
            return cands;
        }
        let d_min = cands
            .iter()
            .map(|&(_, d)| d)
            .fold(f64::INFINITY, f64::min)
            .max(1e-6);
        for (_, d) in &mut cands {
            *d = d_min / (*d).max(1e-6);
        }
        cands
    }

    /// Matches a sequence of records (one move episode) to road segments.
    /// Returns one entry per record; `None` where no candidate segment was
    /// within reach.
    ///
    /// Convenience wrapper allocating a fresh [`MatchScratch`] per call;
    /// batch callers should hold a scratch and use
    /// [`Self::match_records_with`] instead.
    pub fn match_records(&self, records: &[GpsRecord]) -> Vec<Option<MatchedPoint>> {
        let mut scratch = MatchScratch::new();
        self.match_records_with(&mut scratch, records)
    }

    /// The direct, paper-literal formulation of Algorithm 2: per-fix
    /// R\*-tree queries, per-fix `Vec`s and an `O(W · C²)` nested scan for
    /// the Eqs. 3–4 merge.
    ///
    /// Retained as the correctness oracle for the optimized kernel (the
    /// property suite asserts [`Self::match_records_with`] agrees exactly)
    /// and as the baseline the `hotpath` benchmark measures speedups
    /// against. Not for production use.
    pub fn match_records_naive(&self, records: &[GpsRecord]) -> Vec<Option<MatchedPoint>> {
        let n = records.len();
        // per-point candidate local scores (Algorithm 2 lines 5–9)
        let local: Vec<Vec<(SegmentId, f64)>> =
            records.iter().map(|r| self.local_scores(r.point)).collect();

        let radius = self.params.radius_m;
        let sigma = self.params.sigma_factor * radius;
        let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);

        let mut out = Vec::with_capacity(n);
        let mut scores: Vec<(SegmentId, f64)> = Vec::new();
        for i in 0..n {
            if local[i].is_empty() {
                out.push(None);
                continue;
            }
            let p0 = records[i].point;

            // neighbor window (Algorithm 2 line 11): expand both ways while
            // within the global-view radius R
            let mut lo = i;
            while lo > 0
                && i - lo < self.params.max_neighbors
                && records[lo - 1].point.distance(p0) < radius
            {
                lo -= 1;
            }
            let mut hi = i;
            while hi + 1 < n
                && hi - i < self.params.max_neighbors
                && records[hi + 1].point.distance(p0) < radius
            {
                hi += 1;
            }

            // global score per candidate of Q_i (Eqs. 3–4)
            scores.clear();
            scores.extend(local[i].iter().map(|&(s, _)| (s, 0.0)));
            let mut weight_sum = 0.0;
            for k in lo..=hi {
                let d = records[k].point.distance(p0);
                if d >= radius && k != i {
                    continue;
                }
                let w = (-d * d * inv_two_sigma_sq).exp();
                weight_sum += w;
                for (seg, acc) in scores.iter_mut() {
                    // localScore(Q_k, seg) is 0 when seg is not among Q_k's
                    // candidates (Eq. 2 second branch)
                    if let Some(&(_, ls)) = local[k].iter().find(|&&(s, _)| s == *seg) {
                        *acc += w * ls;
                    }
                }
            }
            assert!(
                weight_sum > 0.0,
                "kernel weight sum must be positive (sigma = {sigma}), \
                 got {weight_sum} at record {i}"
            );
            let (best_seg, best_score) = scores
                .iter()
                .map(|&(s, acc)| (s, acc / weight_sum))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("candidates nonempty");

            let snapped = self
                .net
                .segment(best_seg)
                .geometry
                .closest_point(records[i].point);
            out.push(Some(MatchedPoint {
                segment: best_seg,
                snapped,
                score: best_score,
            }));
        }
        out
    }

    /// Matching accuracy against ground truth: the fraction of records with
    /// a true segment whose match equals the truth. Records without truth
    /// or without a match are excluded from the denominator only when the
    /// truth itself is absent — a missed match on a true segment counts as
    /// an error (the paper's accuracy definition on the Seattle benchmark).
    pub fn accuracy(matches: &[Option<MatchedPoint>], truth: &[Option<SegmentId>]) -> f64 {
        assert_eq!(matches.len(), truth.len(), "matches/truth length mismatch");
        let mut correct = 0usize;
        let mut total = 0usize;
        for (m, t) in matches.iter().zip(truth) {
            let Some(t) = t else { continue };
            total += 1;
            if let Some(m) = m {
                if m.segment == *t {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::road::RoadClass;
    use semitri_geo::Timestamp;

    /// Two parallel horizontal streets 40 m apart plus a crossing street.
    fn parallel_net() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(0.0, 40.0),
            Point::new(500.0, 40.0),
            Point::new(250.0, -200.0),
            Point::new(250.0, 240.0),
        ];
        let edges = vec![
            (0, 1, RoadClass::Street, false, "south".to_string()),
            (2, 3, RoadClass::Street, false, "north".to_string()),
            (4, 5, RoadClass::Street, false, "cross".to_string()),
        ];
        RoadNetwork::new(nodes, edges)
    }

    fn track_along(y: f64, noise: &[f64]) -> Vec<GpsRecord> {
        noise
            .iter()
            .enumerate()
            .map(|(i, &dy)| {
                GpsRecord::new(
                    Point::new(20.0 + i as f64 * 20.0, y + dy),
                    Timestamp(i as f64),
                )
            })
            .collect()
    }

    #[test]
    fn clean_track_matches_nearest_street() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs = track_along(2.0, &[0.0; 20]);
        let matches = m.match_records(&recs);
        for mm in &matches {
            let mm = mm.expect("matched");
            assert_eq!(net.segment(mm.segment).name, "south");
            // snapped onto the street line y = 0
            assert!(mm.snapped.y.abs() < 1e-9);
        }
    }

    #[test]
    fn global_context_fixes_noisy_outlier() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(
            &net,
            MatchParams {
                radius_m: 60.0, // wide enough to reach the outlier's neighbors
                ..MatchParams::default()
            },
        );
        // track runs on "south" (y≈5) but one fix jumps toward "north"
        let mut noise = [0.0f64; 20];
        noise[10] = 25.0; // fix at y=30, nearer to north (40) than south (0)? no: 30 vs 10 — nearer north
        let recs = track_along(5.0, &noise);
        // sanity: the outlier alone is closer to the north street
        let p_outlier = recs[10].point;
        assert!(
            net.segment(1).geometry.distance_to_point(p_outlier)
                < net.segment(0).geometry.distance_to_point(p_outlier)
        );
        let matches = m.match_records(&recs);
        let outlier_match = matches[10].expect("matched");
        assert_eq!(
            net.segment(outlier_match.segment).name,
            "south",
            "global score must override the locally-nearest parallel road"
        );
    }

    #[test]
    fn local_only_would_flip_the_outlier() {
        // ablation cross-check: with a tiny global radius the matcher
        // degenerates to local nearest and mis-matches the outlier
        let net = parallel_net();
        let m = GlobalMapMatcher::new(
            &net,
            MatchParams {
                radius_m: 1e-3,
                ..MatchParams::default()
            },
        );
        let mut noise = [0.0f64; 20];
        noise[10] = 25.0;
        let recs = track_along(5.0, &noise);
        let matches = m.match_records(&recs);
        assert_eq!(net.segment(matches[10].unwrap().segment).name, "north");
    }

    #[test]
    fn unreachable_points_yield_none() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs = vec![GpsRecord::new(Point::new(0.0, 5_000.0), Timestamp(0.0))];
        assert_eq!(m.match_records(&recs), vec![None]);
    }

    #[test]
    fn empty_input() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        assert!(m.match_records(&[]).is_empty());
    }

    #[test]
    fn accuracy_computation() {
        let mk = |seg| {
            Some(MatchedPoint {
                segment: seg,
                snapped: Point::ORIGIN,
                score: 1.0,
            })
        };
        let matches = vec![mk(1), mk(2), None, mk(3)];
        let truth = vec![Some(1), Some(1), Some(2), None];
        // 3 truth points, 1 correct, the None-match on truth counts wrong
        let acc = GlobalMapMatcher::accuracy(&matches, &truth);
        assert!((acc - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(GlobalMapMatcher::accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn single_fix_episode_scores_one_with_unit_weight() {
        // one fix: the neighbor window is {Q_0} with kernel weight
        // exp(0) = 1, so weight_sum is exactly 1 and no NaN can reach the
        // argmax (regression guard for the silent NaN-as-Equal ordering)
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs = vec![GpsRecord::new(Point::new(100.0, 3.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        assert_eq!(net.segment(mm.segment).name, "south");
        assert!((mm.score - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflows the Gaussian kernel")]
    fn degenerate_sigma_is_rejected_up_front() {
        let net = parallel_net();
        let _ = GlobalMapMatcher::new(
            &net,
            MatchParams {
                radius_m: 1e-200,
                sigma_factor: 1e-200,
                ..MatchParams::default()
            },
        );
    }

    #[test]
    fn optimized_agrees_with_naive_on_dense_same_cell_track() {
        // 1 m spacing keeps long runs of fixes inside one candidate-radius
        // cell, exercising the cache-hit path; the wobble crosses between
        // the parallel streets so candidate sets vary per fix
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs: Vec<GpsRecord> = (0..200)
            .map(|i| {
                let wobble = ((i * 7) % 23) as f64 - 11.0;
                GpsRecord::new(
                    Point::new(10.0 + i as f64, 3.0 + wobble),
                    Timestamp(i as f64),
                )
            })
            .collect();
        assert_eq!(m.match_records(&recs), m.match_records_naive(&recs));
    }

    #[test]
    fn frozen_and_dynamic_backends_produce_identical_matches() {
        let net = parallel_net();
        let frozen = GlobalMapMatcher::new(&net, MatchParams::default());
        let dynamic =
            GlobalMapMatcher::with_index_mode(&net, MatchParams::default(), IndexMode::Dynamic);
        let recs: Vec<GpsRecord> = (0..150)
            .map(|i| {
                let wobble = ((i * 11) % 29) as f64 - 14.0;
                GpsRecord::new(
                    Point::new(5.0 + i as f64 * 3.0, 3.0 + wobble),
                    Timestamp(i as f64),
                )
            })
            .collect();
        assert_eq!(frozen.match_records(&recs), dynamic.match_records(&recs));
        assert_eq!(
            frozen.match_records_naive(&recs),
            dynamic.match_records_naive(&recs)
        );
    }

    #[test]
    fn scratch_reuse_across_episodes_matches_fresh_scratch() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let mut scratch = MatchScratch::new();
        let a = track_along(2.0, &[0.0; 30]);
        let b = track_along(38.0, &[1.0; 30]);
        let ra = m.match_records_with(&mut scratch, &a);
        let rb = m.match_records_with(&mut scratch, &b);
        assert_eq!(ra, m.match_records_naive(&a));
        assert_eq!(rb, m.match_records_naive(&b));
        // the cell cache now persists across calls: replaying episode `a`
        // with the (possibly warm) cache must still be exact
        assert_eq!(m.match_records_with(&mut scratch, &a), ra);
    }

    #[test]
    fn one_scratch_alternating_two_matcher_configs_stays_exact() {
        // Regression: the cell cache is keyed on the owning matcher. A
        // server reuses scratches across sessions whose matchers differ in
        // candidate radius / sigma / index backend; replaying matcher A's
        // cached candidate list under matcher B's radius would silently
        // drop (or invent) candidates. Alternate two configs — same cells,
        // different radii and backends — through ONE scratch and demand
        // exact agreement with each matcher's naive oracle every time.
        let net = parallel_net();
        let wide = GlobalMapMatcher::new(&net, MatchParams::default());
        let narrow = GlobalMapMatcher::with_index_mode(
            &net,
            MatchParams {
                radius_m: 12.0,
                sigma_factor: 0.4,
                candidate_radius_m: 25.0,
                max_neighbors: 16,
                kernel_mode: KernelMode::Exact,
            },
            IndexMode::Dynamic,
        );
        let mut scratch = MatchScratch::new();
        let tracks = [
            track_along(2.0, &[0.0; 25]),
            track_along(38.0, &[1.5; 25]),
            track_along(5.0, &[-2.0; 25]),
        ];
        for round in 0..3 {
            for (ti, t) in tracks.iter().enumerate() {
                let got_wide = wide.match_records_with(&mut scratch, t);
                assert_eq!(
                    got_wide,
                    wide.match_records_naive(t),
                    "wide config poisoned by narrow cache (round {round}, track {ti})"
                );
                let got_narrow = narrow.match_records_with(&mut scratch, t);
                assert_eq!(
                    got_narrow,
                    narrow.match_records_naive(t),
                    "narrow config poisoned by wide cache (round {round}, track {ti})"
                );
            }
        }
    }

    #[test]
    fn oracle_matches_tree_at_and_beyond_the_bounds() {
        // Regression (grid border clamping): fixes exactly on
        // `bounds.max_x/max_y` floor into grid index nx/ny and rely on the
        // clamp into the border cell; fixes beyond the bounds clamp too
        // and must still see every candidate the tree sees, because the
        // border catchments were inflated by the margin. Sweep probes on,
        // inside and beyond every border and demand candidate-list
        // identity (set AND order) plus full-match agreement with naive.
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let b = {
            let mut b = Rect::EMPTY;
            for s in net.segments() {
                b = b.union(&s.geometry.bbox());
            }
            b
        };
        let margin = semitri_index::DEFAULT_ORACLE_MARGIN_M;
        let mut probes = vec![
            Point::new(b.max_x, b.max_y),
            Point::new(b.max_x, b.min_y),
            Point::new(b.min_x, b.max_y),
            Point::new(b.min_x, b.min_y),
            Point::new(b.max_x + 50.0, 3.0),
            Point::new(b.min_x - 50.0, 3.0),
            Point::new(250.0, b.max_y + 50.0),
            Point::new(250.0, b.min_y - 50.0),
            Point::new(b.max_x + margin, b.max_y + margin),
            // beyond the margin: served by the tree fallback
            Point::new(b.max_x + margin + 10.0, 3.0),
            Point::new(0.0, 5_000.0),
        ];
        for i in 0..40 {
            probes.push(Point::new(
                -60.0 + i as f64 * 16.0,
                -210.0 + i as f64 * 12.0,
            ));
        }
        for p in &probes {
            assert_eq!(
                m.candidates_at(*p),
                m.candidates_at_via_tree(*p),
                "candidate identity at {p:?}"
            );
        }
        let recs: Vec<GpsRecord> = probes
            .iter()
            .enumerate()
            .map(|(i, &p)| GpsRecord::new(p, Timestamp(i as f64)))
            .collect();
        assert_eq!(m.match_records(&recs), m.match_records_naive(&recs));
    }

    #[test]
    fn one_scratch_alternating_oracle_arenas_stays_exact() {
        // Regression (scratch/oracle epoch aliasing): the oracle hint in
        // the scratch stores a slab range into one matcher's arena.
        // Replaying it under a matcher with a different arena — different
        // radius, disabled oracle, dynamic backend — would read the wrong
        // (or no) slab. The fingerprint guard must invalidate it; demand
        // exact agreement with each matcher's naive oracle every round.
        let net = parallel_net();
        let oracle_wide = GlobalMapMatcher::new(&net, MatchParams::default());
        let oracle_narrow = GlobalMapMatcher::with_modes(
            &net,
            MatchParams {
                radius_m: 12.0,
                sigma_factor: 0.4,
                candidate_radius_m: 25.0,
                max_neighbors: 16,
                kernel_mode: KernelMode::Exact,
            },
            IndexMode::Frozen,
            OracleMode::Precomputed { margin_m: 40.0 },
        );
        let no_oracle = GlobalMapMatcher::with_modes(
            &net,
            MatchParams::default(),
            IndexMode::Frozen,
            OracleMode::Disabled,
        );
        let dynamic_oracle = GlobalMapMatcher::with_modes(
            &net,
            MatchParams::default(),
            IndexMode::Dynamic,
            OracleMode::default(),
        );
        let matchers = [&oracle_wide, &oracle_narrow, &no_oracle, &dynamic_oracle];
        let mut scratch = MatchScratch::new();
        let tracks = [
            track_along(2.0, &[0.0; 25]),
            track_along(38.0, &[1.5; 25]),
            // wanders past the margin of the narrow oracle
            track_along(5.0, &[-300.0; 25]),
        ];
        for round in 0..3 {
            for (ti, t) in tracks.iter().enumerate() {
                for (mi, m) in matchers.iter().enumerate() {
                    assert_eq!(
                        m.match_records_with(&mut scratch, t),
                        m.match_records_naive(t),
                        "matcher {mi} poisoned by a foreign oracle hint \
                         (round {round}, track {ti})"
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_oracle_and_default_produce_identical_matches() {
        let net = parallel_net();
        let with = GlobalMapMatcher::new(&net, MatchParams::default());
        let without = GlobalMapMatcher::with_modes(
            &net,
            MatchParams::default(),
            IndexMode::Frozen,
            OracleMode::Disabled,
        );
        assert!(with.oracle().is_some());
        assert!(without.oracle().is_none());
        let recs: Vec<GpsRecord> = (0..150)
            .map(|i| {
                let wobble = ((i * 11) % 29) as f64 - 14.0;
                GpsRecord::new(
                    Point::new(5.0 + i as f64 * 3.0, 3.0 + wobble),
                    Timestamp(i as f64),
                )
            })
            .collect();
        assert_eq!(with.match_records(&recs), without.match_records(&recs));
        for p in recs.iter().map(|r| r.point) {
            assert_eq!(with.candidates_at(p), without.candidates_at(p));
        }
    }

    #[test]
    fn snapping_projects_onto_segment_extent() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        // point beyond the segment end projects to the endpoint
        let recs = vec![GpsRecord::new(Point::new(540.0, 3.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        assert!(mm.snapped.x <= 500.0 + 1e-9);
    }

    #[test]
    fn forward_row_cache_miss_recomputes_bit_identical_weight() {
        // zigzag along "south": P1 is outside radius of P0, so P0's forward
        // expansion cuts immediately (fwd_len = 0), but P2 sits within
        // radius of both — P2's backward expansion reaches P0 and must take
        // the recompute fallback instead of reading a cached row
        let net = parallel_net();
        let params = MatchParams {
            radius_m: 60.0,
            ..MatchParams::default()
        };
        let m = GlobalMapMatcher::new(&net, params);
        let recs = vec![
            GpsRecord::new(Point::new(0.0, 2.0), Timestamp(0.0)),
            GpsRecord::new(Point::new(100.0, 2.0), Timestamp(1.0)),
            GpsRecord::new(Point::new(50.0, 2.0), Timestamp(2.0)),
        ];
        let mut scratch = MatchScratch::new();
        let got = m.match_records_with(&mut scratch, &recs);
        assert!(
            scratch.kernel_fallbacks() > 0,
            "the (P2, P0) pair must miss the forward-row cache"
        );
        // the fallback recompute is bit-identical to the oracle, which
        // derives every weight from the forward orientation
        assert_eq!(got, m.match_records_naive(&recs));
        // draining the counter resets it
        assert!(scratch.take_kernel_fallbacks() > 0);
        assert_eq!(scratch.kernel_fallbacks(), 0);

        // the identity the fallback relies on, checked bitwise: the pair
        // distance (and therefore the kernel weight) is symmetric because
        // (-dx)·(-dx) rounds exactly like dx·dx
        let (a, b) = (recs[0].point, recs[2].point);
        let k = {
            let sigma = params.radius_m * params.sigma_factor;
            1.0 / (2.0 * sigma * sigma)
        };
        let w_fwd = {
            let (dx, dy) = (b.x - a.x, b.y - a.y);
            let d = (dx * dx + dy * dy).sqrt();
            (-d * d * k).exp()
        };
        let w_bwd = {
            let (dx, dy) = (a.x - b.x, a.y - b.y);
            let d = (dx * dx + dy * dy).sqrt();
            (-d * d * k).exp()
        };
        assert_eq!(w_fwd.to_bits(), w_bwd.to_bits());
    }

    #[test]
    fn smooth_track_never_misses_the_forward_row_cache() {
        // monotone dense track: every backward pair was already visited by
        // the owner's forward expansion, so the fallback never fires
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs = track_along(2.0, &[0.0; 40]);
        let mut scratch = MatchScratch::new();
        let _ = m.match_records_with(&mut scratch, &recs);
        assert_eq!(scratch.kernel_fallbacks(), 0);
    }

    #[test]
    fn fast_kernel_mode_stays_within_documented_tolerance() {
        let net = parallel_net();
        let exact = GlobalMapMatcher::new(&net, MatchParams::default());
        let fast = GlobalMapMatcher::new(
            &net,
            MatchParams {
                kernel_mode: KernelMode::Fast,
                ..MatchParams::default()
            },
        );
        let recs: Vec<GpsRecord> = (0..200)
            .map(|i| {
                let wobble = ((i * 7) % 23) as f64 - 11.0;
                GpsRecord::new(
                    Point::new(10.0 + i as f64, 3.0 + wobble),
                    Timestamp(i as f64),
                )
            })
            .collect();
        let me = exact.match_records(&recs);
        let mf = fast.match_records(&recs);
        assert_eq!(me.len(), mf.len());
        for (e, f) in me.iter().zip(&mf) {
            let (e, f) = (e.expect("matched"), f.expect("matched"));
            // candidate selection and the radius cut are mode-independent;
            // only the Eq. 4 weights (hence scores) may drift, and scores
            // are weighted means of values in [0, 1], so a relative weight
            // error of EXP_FAST_REL_TOL perturbs a score by O(tol)
            assert_eq!(e.segment, f.segment);
            assert_eq!(e.snapped, f.snapped);
            assert!(
                (e.score - f.score).abs() <= 16.0 * semitri_geo::EXP_FAST_REL_TOL,
                "score drift {} vs {}",
                e.score,
                f.score
            );
        }
    }
}
