//! Global map matching (paper §4.2, Equations 1–4, Algorithm 2).
//!
//! For every GPS point `Q_i` of a move episode:
//!
//! 1. select candidate road segments within a radius of `Q_i` via the
//!    R\*-tree (Algorithm 2 line 5);
//! 2. compute the point–segment distance of Eq. 1 to each candidate and
//!    normalize it into `localScore(Q_i, r) = d_min(Q_i) / d(Q_i, r)`
//!    (Eq. 2) — the nearest candidate scores 1, farther ones less;
//! 3. compute `globalScore(Q_i, r)` as the kernel-weighted mean of the
//!    local scores of the neighboring points `Q_{-N1} … Q_{+N2}` inside
//!    the global-view radius `R`, with Gaussian kernel weights
//!    `w_k = exp(-d(Q_0,Q_k)² / 2σ²)` (Eqs. 3–4);
//! 4. match `Q_i` to the candidate with the highest global score and snap
//!    its position onto the segment (Algorithm 2 lines 15–17).
//!
//! The neighbor context makes the matching robust on parallel roads and
//! noisy fixes, while the R\*-tree candidate selection keeps the whole
//! pass `O(n)` in the number of GPS points.

use semitri_data::road::SegmentId;
use semitri_data::{GpsRecord, RoadNetwork};
use semitri_geo::{Point, Rect};
use semitri_index::RStarTree;

/// Parameters of the global map-matching algorithm.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Global-view radius `R` in meters: neighbors within this distance of
    /// the current point contribute to its global score. The paper sweeps
    /// the dimensionless `R ∈ 1..5`; multiply by the mean point spacing to
    /// convert (see `experiments fig10`).
    pub radius_m: f64,
    /// Kernel bandwidth `σ` as a fraction of `R` (the paper sweeps
    /// σ ∈ {0.5R, 1R, 1.5R, 2R}).
    pub sigma_factor: f64,
    /// Candidate-selection radius in meters: segments farther than this
    /// from a point (Eq. 1 distance) are not considered. Plays the role of
    /// the paper's "neighboring segments" cutoff.
    pub candidate_radius_m: f64,
    /// Hard cap on neighbors considered on each side of the current point
    /// (guards against degenerate dense clusters).
    pub max_neighbors: usize,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            radius_m: 30.0,
            sigma_factor: 0.5,
            candidate_radius_m: 60.0,
            max_neighbors: 32,
        }
    }
}

/// The match produced for one GPS record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPoint {
    /// Matched road segment.
    pub segment: SegmentId,
    /// Position corrected onto the segment (Algorithm 2 line 17).
    pub snapped: Point,
    /// Winning global score.
    pub score: f64,
}

/// The global map matcher of the Semantic Line Annotation Layer.
///
/// ```
/// use semitri_core::{GlobalMapMatcher, MatchParams};
/// use semitri_data::{City, CityConfig, GpsRecord};
/// use semitri_geo::Timestamp;
///
/// let city = City::generate(CityConfig::default());
/// let matcher = GlobalMapMatcher::new(&city.roads, MatchParams::default());
/// // points along a street match to road segments with snapped positions
/// let seg = &city.roads.segments()[0];
/// let records: Vec<GpsRecord> = (0..5)
///     .map(|i| GpsRecord::new(seg.geometry.point_at(i as f64 / 5.0), Timestamp(i as f64)))
///     .collect();
/// let matches = matcher.match_records(&records);
/// assert!(matches.iter().all(|m| m.is_some()));
/// ```
pub struct GlobalMapMatcher<'n> {
    net: &'n RoadNetwork,
    index: RStarTree<SegmentId>,
    params: MatchParams,
}

impl<'n> GlobalMapMatcher<'n> {
    /// Builds the matcher over a road network (bulk-loads an R\*-tree over
    /// the segment bounding boxes).
    pub fn new(net: &'n RoadNetwork, params: MatchParams) -> Self {
        assert!(params.radius_m > 0.0, "radius must be positive");
        assert!(params.sigma_factor > 0.0, "sigma factor must be positive");
        assert!(
            params.candidate_radius_m > 0.0,
            "candidate radius must be positive"
        );
        let items = net
            .segments()
            .iter()
            .map(|s| (s.geometry.bbox(), s.id))
            .collect();
        Self {
            net,
            index: RStarTree::bulk_load(items),
            params,
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> MatchParams {
        self.params
    }

    /// Candidate segments of one point with their Eq. 1 distances.
    fn candidates(&self, p: Point) -> Vec<(SegmentId, f64)> {
        let window = Rect::from_point(p).inflate(self.params.candidate_radius_m);
        let mut out = Vec::new();
        self.index.for_each_in(&window, |_, &seg_id| {
            let d = self.net.segment(seg_id).geometry.distance_to_point(p);
            if d <= self.params.candidate_radius_m {
                out.push((seg_id, d));
            }
        });
        out
    }

    /// Local scores (Eq. 2) for one point: `d_min / d` per candidate, with
    /// an exact-hit floor so zero distances score 1 without dividing by 0.
    fn local_scores(&self, p: Point) -> Vec<(SegmentId, f64)> {
        let mut cands = self.candidates(p);
        if cands.is_empty() {
            return cands;
        }
        let d_min = cands
            .iter()
            .map(|&(_, d)| d)
            .fold(f64::INFINITY, f64::min)
            .max(1e-6);
        for (_, d) in &mut cands {
            *d = d_min / (*d).max(1e-6);
        }
        cands
    }

    /// Matches a sequence of records (one move episode) to road segments.
    /// Returns one entry per record; `None` where no candidate segment was
    /// within reach.
    pub fn match_records(&self, records: &[GpsRecord]) -> Vec<Option<MatchedPoint>> {
        let n = records.len();
        // per-point candidate local scores (Algorithm 2 lines 5–9)
        let local: Vec<Vec<(SegmentId, f64)>> =
            records.iter().map(|r| self.local_scores(r.point)).collect();

        let radius = self.params.radius_m;
        let sigma = self.params.sigma_factor * radius;
        let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);

        let mut out = Vec::with_capacity(n);
        let mut scores: Vec<(SegmentId, f64)> = Vec::new();
        for i in 0..n {
            if local[i].is_empty() {
                out.push(None);
                continue;
            }
            let p0 = records[i].point;

            // neighbor window (Algorithm 2 line 11): expand both ways while
            // within the global-view radius R
            let mut lo = i;
            while lo > 0
                && i - lo < self.params.max_neighbors
                && records[lo - 1].point.distance(p0) < radius
            {
                lo -= 1;
            }
            let mut hi = i;
            while hi + 1 < n
                && hi - i < self.params.max_neighbors
                && records[hi + 1].point.distance(p0) < radius
            {
                hi += 1;
            }

            // global score per candidate of Q_i (Eqs. 3–4)
            scores.clear();
            scores.extend(local[i].iter().map(|&(s, _)| (s, 0.0)));
            let mut weight_sum = 0.0;
            for k in lo..=hi {
                let d = records[k].point.distance(p0);
                if d >= radius && k != i {
                    continue;
                }
                let w = (-d * d * inv_two_sigma_sq).exp();
                weight_sum += w;
                for (seg, acc) in scores.iter_mut() {
                    // localScore(Q_k, seg) is 0 when seg is not among Q_k's
                    // candidates (Eq. 2 second branch)
                    if let Some(&(_, ls)) = local[k].iter().find(|&&(s, _)| s == *seg) {
                        *acc += w * ls;
                    }
                }
            }
            let (best_seg, best_score) = scores
                .iter()
                .map(|&(s, acc)| (s, acc / weight_sum))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("candidates nonempty");

            let snapped = self
                .net
                .segment(best_seg)
                .geometry
                .closest_point(records[i].point);
            out.push(Some(MatchedPoint {
                segment: best_seg,
                snapped,
                score: best_score,
            }));
        }
        out
    }

    /// Matching accuracy against ground truth: the fraction of records with
    /// a true segment whose match equals the truth. Records without truth
    /// or without a match are excluded from the denominator only when the
    /// truth itself is absent — a missed match on a true segment counts as
    /// an error (the paper's accuracy definition on the Seattle benchmark).
    pub fn accuracy(matches: &[Option<MatchedPoint>], truth: &[Option<SegmentId>]) -> f64 {
        assert_eq!(matches.len(), truth.len(), "matches/truth length mismatch");
        let mut correct = 0usize;
        let mut total = 0usize;
        for (m, t) in matches.iter().zip(truth) {
            let Some(t) = t else { continue };
            total += 1;
            if let Some(m) = m {
                if m.segment == *t {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::road::RoadClass;
    use semitri_geo::Timestamp;

    /// Two parallel horizontal streets 40 m apart plus a crossing street.
    fn parallel_net() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(0.0, 40.0),
            Point::new(500.0, 40.0),
            Point::new(250.0, -200.0),
            Point::new(250.0, 240.0),
        ];
        let edges = vec![
            (0, 1, RoadClass::Street, false, "south".to_string()),
            (2, 3, RoadClass::Street, false, "north".to_string()),
            (4, 5, RoadClass::Street, false, "cross".to_string()),
        ];
        RoadNetwork::new(nodes, edges)
    }

    fn track_along(y: f64, noise: &[f64]) -> Vec<GpsRecord> {
        noise
            .iter()
            .enumerate()
            .map(|(i, &dy)| {
                GpsRecord::new(
                    Point::new(20.0 + i as f64 * 20.0, y + dy),
                    Timestamp(i as f64),
                )
            })
            .collect()
    }

    #[test]
    fn clean_track_matches_nearest_street() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs = track_along(2.0, &[0.0; 20]);
        let matches = m.match_records(&recs);
        for mm in &matches {
            let mm = mm.expect("matched");
            assert_eq!(net.segment(mm.segment).name, "south");
            // snapped onto the street line y = 0
            assert!(mm.snapped.y.abs() < 1e-9);
        }
    }

    #[test]
    fn global_context_fixes_noisy_outlier() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(
            &net,
            MatchParams {
                radius_m: 60.0, // wide enough to reach the outlier's neighbors
                ..MatchParams::default()
            },
        );
        // track runs on "south" (y≈5) but one fix jumps toward "north"
        let mut noise = [0.0f64; 20];
        noise[10] = 25.0; // fix at y=30, nearer to north (40) than south (0)? no: 30 vs 10 — nearer north
        let recs = track_along(5.0, &noise);
        // sanity: the outlier alone is closer to the north street
        let p_outlier = recs[10].point;
        assert!(
            net.segment(1).geometry.distance_to_point(p_outlier)
                < net.segment(0).geometry.distance_to_point(p_outlier)
        );
        let matches = m.match_records(&recs);
        let outlier_match = matches[10].expect("matched");
        assert_eq!(
            net.segment(outlier_match.segment).name,
            "south",
            "global score must override the locally-nearest parallel road"
        );
    }

    #[test]
    fn local_only_would_flip_the_outlier() {
        // ablation cross-check: with a tiny global radius the matcher
        // degenerates to local nearest and mis-matches the outlier
        let net = parallel_net();
        let m = GlobalMapMatcher::new(
            &net,
            MatchParams {
                radius_m: 1e-3,
                ..MatchParams::default()
            },
        );
        let mut noise = [0.0f64; 20];
        noise[10] = 25.0;
        let recs = track_along(5.0, &noise);
        let matches = m.match_records(&recs);
        assert_eq!(net.segment(matches[10].unwrap().segment).name, "north");
    }

    #[test]
    fn unreachable_points_yield_none() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        let recs = vec![GpsRecord::new(Point::new(0.0, 5_000.0), Timestamp(0.0))];
        assert_eq!(m.match_records(&recs), vec![None]);
    }

    #[test]
    fn empty_input() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        assert!(m.match_records(&[]).is_empty());
    }

    #[test]
    fn accuracy_computation() {
        let mk = |seg| {
            Some(MatchedPoint {
                segment: seg,
                snapped: Point::ORIGIN,
                score: 1.0,
            })
        };
        let matches = vec![mk(1), mk(2), None, mk(3)];
        let truth = vec![Some(1), Some(1), Some(2), None];
        // 3 truth points, 1 correct, the None-match on truth counts wrong
        let acc = GlobalMapMatcher::accuracy(&matches, &truth);
        assert!((acc - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(GlobalMapMatcher::accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn snapping_projects_onto_segment_extent() {
        let net = parallel_net();
        let m = GlobalMapMatcher::new(&net, MatchParams::default());
        // point beyond the segment end projects to the endpoint
        let recs = vec![GpsRecord::new(Point::new(540.0, 3.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        assert!(mm.snapped.x <= 500.0 + 1e-9);
    }
}
