//! Incremental topological map matcher (White, Bernstein & Kornhauser —
//! the paper's "topological methods" category, §2).
//!
//! Matches points one by one, preferring candidates *topologically
//! connected* to the previous match (the same segment or one sharing a
//! node with it). Cheaper than the global algorithm and stronger than
//! pure geometry, but greedy: one wrong turn can lock it onto the wrong
//! street until the candidate set forces a reset. Included as the second
//! ablation baseline.

use super::matcher::MatchedPoint;
use semitri_data::road::SegmentId;
use semitri_data::{GpsRecord, RoadNetwork};
use semitri_index::RStarTree;

/// Parameters of the incremental matcher.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalParams {
    /// Candidate-selection radius in meters.
    pub candidate_radius_m: f64,
    /// Multiplicative bonus applied to the score of candidates connected
    /// to the previous match (> 1).
    pub connectivity_bonus: f64,
}

impl Default for IncrementalParams {
    fn default() -> Self {
        Self {
            candidate_radius_m: 60.0,
            connectivity_bonus: 2.0,
        }
    }
}

/// The incremental topological matcher.
pub struct IncrementalMatcher<'n> {
    net: &'n RoadNetwork,
    index: RStarTree<SegmentId>,
    params: IncrementalParams,
}

impl<'n> IncrementalMatcher<'n> {
    /// Builds the matcher over a road network.
    pub fn new(net: &'n RoadNetwork, params: IncrementalParams) -> Self {
        assert!(params.candidate_radius_m > 0.0, "radius must be positive");
        assert!(params.connectivity_bonus >= 1.0, "bonus must be >= 1");
        let items = net
            .segments()
            .iter()
            .map(|s| (s.geometry.bbox(), s.id))
            .collect();
        Self {
            net,
            index: RStarTree::bulk_load(items),
            params,
        }
    }

    fn connected(&self, a: SegmentId, b: SegmentId) -> bool {
        if a == b {
            return true;
        }
        let sa = self.net.segment(a);
        let sb = self.net.segment(b);
        sa.from == sb.from || sa.from == sb.to || sa.to == sb.from || sa.to == sb.to
    }

    /// Matches each record, carrying topological context forward.
    pub fn match_records(&self, records: &[GpsRecord]) -> Vec<Option<MatchedPoint>> {
        let mut out: Vec<Option<MatchedPoint>> = Vec::with_capacity(records.len());
        let mut prev: Option<SegmentId> = None;
        for r in records {
            let mut best: Option<(SegmentId, f64)> = None;
            // streaming radius query: the bbox-distance prefilter is a lower
            // bound on the exact Eq. 1 distance, so the gate below sees a
            // (possibly smaller) superset of the surviving candidates and
            // the result is unchanged
            let radius = self.params.candidate_radius_m;
            self.index
                .for_each_within_radius(r.point, radius, |_, &seg| {
                    let d = self.net.segment(seg).geometry.distance_to_point(r.point);
                    if d > radius {
                        return;
                    }
                    // proximity score with a topological bonus
                    let mut score = 1.0 / (1.0 + d);
                    if let Some(p) = prev {
                        if self.connected(p, seg) {
                            score *= self.params.connectivity_bonus;
                        }
                    }
                    if best.is_none_or(|(_, bs)| score > bs) {
                        best = Some((seg, score));
                    }
                });
            match best {
                Some((seg, score)) => {
                    prev = Some(seg);
                    out.push(Some(MatchedPoint {
                        segment: seg,
                        snapped: self.net.segment(seg).geometry.closest_point(r.point),
                        score,
                    }));
                }
                None => {
                    prev = None; // lost the thread: reset the context
                    out.push(None);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::road::RoadClass;
    use semitri_geo::{Point, Timestamp};

    /// Two parallel streets 40 m apart, connected by a crossing at x=0.
    fn net() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(0.0, 40.0),
            Point::new(500.0, 40.0),
        ];
        let edges = vec![
            (0, 1, RoadClass::Street, false, "south".to_string()),
            (2, 3, RoadClass::Street, false, "north".to_string()),
            (0, 2, RoadClass::Street, false, "link".to_string()),
        ];
        RoadNetwork::new(nodes, edges)
    }

    #[test]
    fn connectivity_keeps_track_through_ambiguity() {
        let net = net();
        let m = IncrementalMatcher::new(&net, IncrementalParams::default());
        // track along "south", drifting to y=18 midway (closer to middle
        // than the start but still nearer south... make it ambiguous: 22
        // is nearer north (18 away) than south (22 away))
        let recs: Vec<GpsRecord> = (0..20)
            .map(|i| {
                let y = if (8..12).contains(&i) { 22.0 } else { 2.0 };
                GpsRecord::new(Point::new(30.0 + i as f64 * 20.0, y), Timestamp(i as f64))
            })
            .collect();
        let matches = m.match_records(&recs);
        // with the 2x connectivity bonus, the drifting fixes stay on south
        for (i, mm) in matches.iter().enumerate() {
            let mm = mm.expect("matched");
            assert_eq!(net.segment(mm.segment).name, "south", "point {i}");
        }
    }

    #[test]
    fn without_context_first_point_is_nearest() {
        let net = net();
        let m = IncrementalMatcher::new(&net, IncrementalParams::default());
        let recs = vec![GpsRecord::new(Point::new(250.0, 35.0), Timestamp(0.0))];
        let mm = m.match_records(&recs)[0].expect("matched");
        assert_eq!(net.segment(mm.segment).name, "north");
    }

    #[test]
    fn reset_after_gap_out_of_coverage() {
        let net = net();
        let m = IncrementalMatcher::new(&net, IncrementalParams::default());
        let recs = vec![
            GpsRecord::new(Point::new(100.0, 2.0), Timestamp(0.0)),
            GpsRecord::new(Point::new(5_000.0, 5_000.0), Timestamp(1.0)), // off-map
            GpsRecord::new(Point::new(100.0, 38.0), Timestamp(2.0)),
        ];
        let matches = m.match_records(&recs);
        assert!(matches[0].is_some());
        assert!(matches[1].is_none());
        // context was reset: third point matches nearest (north), not the
        // previously-connected south
        assert_eq!(net.segment(matches[2].unwrap().segment).name, "north");
    }

    #[test]
    fn empty_input() {
        let net = net();
        let m = IncrementalMatcher::new(&net, IncrementalParams::default());
        assert!(m.match_records(&[]).is_empty());
    }
}
