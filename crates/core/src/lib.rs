//! # semitri-core — the SeMiTri semantic annotation framework
//!
//! Implementation of the paper's primary contribution: the three semantic
//! annotation layers that progressively turn raw trajectories into
//! *structured semantic trajectories* (Definition 4), plus the pipeline
//! orchestrating them (Fig. 2):
//!
//! * [`model`] — semantic places, annotations, semantic episodes and the
//!   structured semantic trajectory (Definitions 2–4);
//! * [`region`] — Semantic Region Annotation Layer: R\*-tree spatial join
//!   of trajectories against ROIs (Algorithm 1);
//! * [`mod@line`] — Semantic Line Annotation Layer: global map matching with
//!   the point–segment distance (Eq. 1), local/global scores (Eqs. 2–4)
//!   and transport-mode inference (Algorithm 2), with geometric baselines
//!   for the ablation benchmarks;
//! * [`point`] — Semantic Point Annotation Layer: HMM over POI categories
//!   with the Gaussian/discretized observation model of §4.3 and log-space
//!   Viterbi decoding (Algorithm 3), plus a nearest-POI baseline;
//! * [`preprocess`] — the fallible preprocessing stage repairing degraded
//!   feeds (finiteness, ordering, duplicates, speed bound) ahead of
//!   segmentation, reporting a `CleaningReport` per trajectory;
//! * [`pipeline`] — the `SeMiTri` orchestrator wiring cleaning, episode
//!   computation and the three layers together, with per-layer latency
//!   instrumentation (Fig. 17);
//! * [`streaming`] — the real-time annotator (§1.2: "annotation data is
//!   even required in real-time"): incremental stop/move detection with
//!   immediate per-episode annotation and causal forward-filtered stop
//!   activities;
//! * [`batch`] — the multi-threaded batch engine: a worker pool fanning a
//!   fleet of trajectories over one shared `SeMiTri`, with order-
//!   preserving, panic-isolated results and pool-wide latency summaries.
//!
//! Every annotation path (sequential, streaming, batch) reports per-layer
//! spans through the `semitri-obs` [`PipelineObserver`] hooks under one
//! metric schema (`stage.<layer>.{secs,records,calls}`), mirroring the
//! paper's per-layer evaluation (Fig. 17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod line;
pub mod live;
pub mod model;
pub mod pipeline;
pub mod point;
pub mod preprocess;
pub mod region;
pub mod streaming;

pub use batch::{
    BatchAnnotator, BatchOutput, BatchSummary, PipelineError, PipelineErrorKind, StageSummary,
};
pub use error::SemitriError;
pub use line::matcher::{GlobalMapMatcher, MatchParams, MatchScratch, MatchedPoint};
pub use line::mode::ModeInferencer;
pub use live::{LiveSeMiTri, Mutation, PublishOutcome};
pub use model::{
    Annotation, AnnotationValue, PlaceKind, PlaceRef, SemanticTuple, StructuredSemanticTrajectory,
};
pub use pipeline::{LatencyProfile, PipelineConfig, PipelineOutput, SeMiTri};
pub use point::PointAnnotator;
pub use preprocess::Preprocessor;
pub use region::{RegionAnnotator, RegionTuple};
pub use semitri_geo::{KernelMode, EXP_FAST_REL_TOL};
pub use semitri_index::{
    Generation, GenerationHandle, GenerationId, IndexMode, OracleMode, SnapshotSet,
};
pub use semitri_obs::{
    CleaningReport, Counter, Gauge, Histogram, HistogramSnapshot, MetricsObserver, MetricsRegistry,
    MetricsSnapshot, NullObserver, PipelineObserver, Stage, KERNEL_FALLBACK_METRIC,
};
pub use streaming::{StreamEvent, StreamingAnnotator};
