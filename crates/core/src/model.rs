//! The semantic trajectory model (paper Definitions 2–4).
//!
//! A *semantic place* is a meaningful geographic object of one of three
//! spatial kinds — region, line or point (Definition 2). A *structured
//! semantic trajectory* is a sequence of episode tuples
//! `(place, time_in, time_out, annotations)` (Definition 4). Annotations
//! split into *geographic reference* annotations (links to places) and
//! *additional value* annotations (transport mode, activity, …).

use semitri_data::{PoiCategory, TransportMode};
use semitri_geo::TimeSpan;
use std::fmt;

/// The spatial kind of a semantic place (Definition 2 partitions `P` into
/// `P_region ∪ P_line ∪ P_point`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceKind {
    /// A region of interest (landuse cell, campus, park).
    Region,
    /// A line of interest (road segment, metro line).
    Line,
    /// A point of interest (shop, restaurant).
    Point,
}

impl PlaceKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PlaceKind::Region => "region",
            PlaceKind::Line => "line",
            PlaceKind::Point => "point",
        }
    }
}

/// A geographic-reference annotation: a link to a semantic place in some
/// third-party source.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceRef {
    /// Spatial kind of the referenced place.
    pub kind: PlaceKind,
    /// Identifier within its source (cell id, segment id, POI id).
    pub id: u64,
    /// Human-readable label ("building areas", "Rue R4", "feedings #12").
    pub label: String,
}

impl PlaceRef {
    /// Creates a reference.
    pub fn new(kind: PlaceKind, id: u64, label: impl Into<String>) -> Self {
        Self {
            kind,
            id,
            label: label.into(),
        }
    }
}

impl fmt::Display for PlaceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}({})", self.kind.label(), self.id, self.label)
    }
}

/// An additional-value annotation attached to an episode.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotationValue {
    /// Inferred transportation mode (line layer).
    Mode(TransportMode),
    /// Inferred stop activity category (point layer).
    Activity(PoiCategory),
    /// Free-text value.
    Text(String),
    /// Numeric value (average speed, confidence, …).
    Number(f64),
}

/// A keyed annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Annotation attribute name ("mode", "activity", "avg_speed", …).
    pub key: String,
    /// The value.
    pub value: AnnotationValue,
}

impl Annotation {
    /// Creates an annotation.
    pub fn new(key: impl Into<String>, value: AnnotationValue) -> Self {
        Self {
            key: key.into(),
            value,
        }
    }

    /// Convenience constructor for a transport-mode annotation.
    pub fn mode(mode: TransportMode) -> Self {
        Self::new("mode", AnnotationValue::Mode(mode))
    }

    /// Convenience constructor for an activity annotation.
    pub fn activity(cat: PoiCategory) -> Self {
        Self::new("activity", AnnotationValue::Activity(cat))
    }

    /// The transport mode, if this is a mode annotation.
    pub fn as_mode(&self) -> Option<TransportMode> {
        match self.value {
            AnnotationValue::Mode(m) => Some(m),
            _ => None,
        }
    }

    /// The activity category, if this is an activity annotation.
    pub fn as_activity(&self) -> Option<PoiCategory> {
        match self.value {
            AnnotationValue::Activity(c) => Some(c),
            _ => None,
        }
    }
}

/// One episode tuple of a structured semantic trajectory:
/// `ep = (sp, time_in, time_out, A)` (Definition 4).
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticTuple {
    /// The linked semantic place; `None` when no source covered the episode
    /// (the paper's partial annotations, §5.1).
    pub place: Option<PlaceRef>,
    /// Entering/leaving times.
    pub span: TimeSpan,
    /// Additional value annotations.
    pub annotations: Vec<Annotation>,
}

impl SemanticTuple {
    /// First annotation with the given key.
    pub fn annotation(&self, key: &str) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.key == key)
    }
}

/// A structured semantic trajectory (Definition 4): the final output of
/// the annotation pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StructuredSemanticTrajectory {
    /// Moving-object id.
    pub object_id: u64,
    /// Trajectory id.
    pub trajectory_id: u64,
    /// The episode tuples, time-ordered.
    pub tuples: Vec<SemanticTuple>,
}

impl StructuredSemanticTrajectory {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// An *interpretation* of the trajectory by one annotation attribute
    /// (§3.1: "each annotation attribute may define its list of episodes
    /// e.g. by cutting the trajectory each time the value of the
    /// annotation attribute changes"). Consecutive tuples with the same
    /// value of `key` merge into one `(value, span)` episode; tuples
    /// without the attribute carry `None`.
    pub fn interpretation(&self, key: &str) -> Vec<(Option<AnnotationValue>, TimeSpan)> {
        let mut out: Vec<(Option<AnnotationValue>, TimeSpan)> = Vec::new();
        for t in &self.tuples {
            let value = t.annotation(key).map(|a| a.value.clone());
            match out.last_mut() {
                Some((last, span)) if *last == value => {
                    *span = span.union(&t.span);
                }
                _ => out.push((value, t.span)),
            }
        }
        out
    }

    /// Renders the trajectory as the paper's triple notation, e.g.
    /// `(home, d0 08:00:00-d0 09:00:00, -) → (road, …, on-bus) → …`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                out.push_str(" → ");
            }
            let place = t
                .place
                .as_ref()
                .map(|p| p.label.clone())
                .unwrap_or_else(|| "?".to_string());
            let extra = t
                .annotations
                .iter()
                .filter_map(|a| match &a.value {
                    AnnotationValue::Mode(m) => Some(format!("on-{}", m.label())),
                    AnnotationValue::Activity(c) => Some(c.label().to_string()),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .join(",");
            let extra = if extra.is_empty() {
                "-".to_string()
            } else {
                extra
            };
            out.push_str(&format!(
                "({place}, {}-{}, {extra})",
                t.span.start, t.span.end
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::Timestamp;

    fn span(a: f64, b: f64) -> TimeSpan {
        TimeSpan::new(Timestamp(a), Timestamp(b))
    }

    #[test]
    fn place_ref_display() {
        let p = PlaceRef::new(PlaceKind::Region, 42, "building areas");
        assert_eq!(p.to_string(), "region:42(building areas)");
    }

    #[test]
    fn annotation_accessors() {
        let m = Annotation::mode(TransportMode::Metro);
        assert_eq!(m.as_mode(), Some(TransportMode::Metro));
        assert_eq!(m.as_activity(), None);
        let a = Annotation::activity(PoiCategory::Feedings);
        assert_eq!(a.as_activity(), Some(PoiCategory::Feedings));
        assert_eq!(a.as_mode(), None);
        assert_eq!(a.key, "activity");
    }

    #[test]
    fn tuple_annotation_lookup() {
        let t = SemanticTuple {
            place: None,
            span: span(0.0, 10.0),
            annotations: vec![
                Annotation::new("avg_speed", AnnotationValue::Number(3.2)),
                Annotation::mode(TransportMode::Walk),
            ],
        };
        assert!(t.annotation("mode").is_some());
        assert!(t.annotation("nope").is_none());
    }

    #[test]
    fn render_matches_paper_notation() {
        let sst = StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: 1,
            tuples: vec![
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Region, 1, "home")),
                    span: span(0.0, 3_600.0),
                    annotations: vec![],
                },
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Line, 9, "road")),
                    span: span(3_600.0, 5_400.0),
                    annotations: vec![Annotation::mode(TransportMode::Bus)],
                },
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Point, 3, "market")),
                    span: span(5_400.0, 7_200.0),
                    annotations: vec![Annotation::activity(PoiCategory::ItemSale)],
                },
            ],
        };
        let s = sst.render();
        assert!(s.contains("(home, d0 00:00:00-d0 01:00:00, -)"));
        assert!(s.contains("→ (road,"));
        assert!(s.contains("on-bus"));
        assert!(s.contains("item sale"));
    }

    #[test]
    fn interpretation_cuts_on_value_change() {
        let sst = StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: 1,
            tuples: vec![
                SemanticTuple {
                    place: None,
                    span: span(0.0, 10.0),
                    annotations: vec![Annotation::mode(TransportMode::Walk)],
                },
                SemanticTuple {
                    place: None,
                    span: span(10.0, 20.0),
                    annotations: vec![Annotation::mode(TransportMode::Walk)],
                },
                SemanticTuple {
                    place: None,
                    span: span(20.0, 30.0),
                    annotations: vec![Annotation::mode(TransportMode::Metro)],
                },
                SemanticTuple {
                    place: None,
                    span: span(30.0, 40.0),
                    annotations: vec![],
                },
            ],
        };
        let interp = sst.interpretation("mode");
        assert_eq!(interp.len(), 3);
        assert_eq!(
            interp[0],
            (
                Some(AnnotationValue::Mode(TransportMode::Walk)),
                span(0.0, 20.0)
            )
        );
        assert_eq!(
            interp[1].0,
            Some(AnnotationValue::Mode(TransportMode::Metro))
        );
        assert_eq!(interp[2], (None, span(30.0, 40.0)));
        // a different attribute yields a different interpretation
        let by_activity = sst.interpretation("activity");
        assert_eq!(by_activity.len(), 1);
        assert_eq!(by_activity[0].0, None);
    }

    #[test]
    fn empty_sst() {
        let sst = StructuredSemanticTrajectory::default();
        assert!(sst.is_empty());
        assert_eq!(sst.render(), "");
    }
}
