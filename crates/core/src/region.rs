//! Semantic Region Annotation Layer (paper §4.1, Algorithm 1).
//!
//! Annotates trajectories with regions of interest via a spatial join
//! between the GPS records (or episode extents) and an R\*-tree over the
//! region source. Continuous runs of records falling in the same region
//! are grouped into tuples `(region, t_in, t_out, regtype)` and consecutive
//! same-type tuples are merged — exactly Algorithm 1.

use crate::model::{PlaceKind, PlaceRef};
use semitri_data::{LanduseCategory, LanduseGrid, NamedRegion, RawTrajectory};
use semitri_episodes::Episode;
use semitri_geo::{Point, Polygon, Rect, TimeSpan};
use semitri_index::{FrozenRStarTree, FrozenRangeScratch, IndexMode, RStarTree, RangeScratch};
use std::sync::Arc;

/// A region entry in the annotator's source: rectangular (landuse cells)
/// or polygonal (free-form OSM-style regions).
///
/// The label is interned (`Arc<str>`): all landuse cells of one category
/// share a single allocation instead of one `format!` string per cell.
#[derive(Debug, Clone)]
struct RegionEntry {
    id: u64,
    label: Arc<str>,
    category: Option<LanduseCategory>,
    polygon: Option<Polygon>,
    rect: Rect,
}

impl RegionEntry {
    fn contains(&self, p: Point) -> bool {
        match &self.polygon {
            Some(poly) => poly.contains_point(p),
            None => self.rect.contains_point(p),
        }
    }

    fn intersects(&self, r: &Rect) -> bool {
        match &self.polygon {
            Some(poly) => poly.intersects_rect(r),
            None => self.rect.intersects(r),
        }
    }

    fn area(&self) -> f64 {
        match &self.polygon {
            Some(poly) => poly.area(),
            None => self.rect.area(),
        }
    }
}

/// One output tuple of Algorithm 1: a maximal run of records inside the
/// same region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionTuple {
    /// The region as a place reference.
    pub place: PlaceRef,
    /// Landuse category when the region is a landuse cell.
    pub category: Option<LanduseCategory>,
    /// Approximated entering/leaving times.
    pub span: TimeSpan,
    /// First covered record index (inclusive).
    pub start: usize,
    /// Last covered record index (exclusive).
    pub end: usize,
}

impl RegionTuple {
    /// Number of GPS records aggregated into this tuple.
    pub fn record_count(&self) -> usize {
        self.end - self.start
    }
}

/// The Semantic Region Annotation Layer.
///
/// Build it from one or more sources, then annotate raw trajectories
/// (Algorithm 1) or individual episodes (stop-center / move-bbox joins).
///
/// ```
/// use semitri_core::RegionAnnotator;
/// use semitri_data::{GpsRecord, LanduseGrid, RawTrajectory};
/// use semitri_geo::{Point, Rect, Timestamp};
///
/// let grid = LanduseGrid::generate(Rect::new(0.0, 0.0, 2_000.0, 2_000.0), 100.0, 1);
/// let annotator = RegionAnnotator::from_landuse(&grid);
/// let records = (0..50)
///     .map(|i| GpsRecord::new(Point::new(100.0 + i as f64 * 30.0, 1_000.0), Timestamp(i as f64)))
///     .collect();
/// let tuples = annotator.annotate_trajectory(&RawTrajectory::new(1, 1, records));
/// assert!(!tuples.is_empty());
/// // Algorithm 1 merges consecutive same-category cells into tuples
/// assert!(tuples.len() < 50);
/// ```
#[derive(Debug, Clone)]
pub struct RegionAnnotator {
    tree: RegionIndex,
}

/// The region tree backend: the layer is built once per city and queried
/// per record, so the cache-packed frozen snapshot is the default; the
/// dynamic tree is kept selectable as the identity oracle.
#[derive(Debug, Clone)]
enum RegionIndex {
    Dynamic(RStarTree<RegionEntry>),
    Frozen(Box<FrozenRStarTree<RegionEntry>>),
}

impl RegionIndex {
    fn len(&self) -> usize {
        match self {
            RegionIndex::Dynamic(t) => t.len(),
            RegionIndex::Frozen(t) => t.len(),
        }
    }

    /// Visits every entry intersecting `query` — identical results in
    /// identical order on both backends.
    fn for_each_in_with<'t>(
        &'t self,
        scratch: &mut RegionScratch<'t>,
        query: &Rect,
        mut f: impl FnMut(&'t RegionEntry),
    ) {
        match self {
            RegionIndex::Dynamic(t) => t.for_each_in_with(&mut scratch.dynamic, query, |_, e| f(e)),
            RegionIndex::Frozen(t) => t.for_each_in_with(&mut scratch.frozen, query, |_, e| f(e)),
        }
    }
}

/// Reusable traversal state for either backend (only the active side's
/// buffer ever warms up).
struct RegionScratch<'t> {
    dynamic: RangeScratch<'t, RegionEntry>,
    frozen: FrozenRangeScratch,
}

impl RegionScratch<'_> {
    fn new() -> Self {
        Self {
            dynamic: RangeScratch::new(),
            frozen: FrozenRangeScratch::new(),
        }
    }
}

impl RegionAnnotator {
    fn from_entries(entries: Vec<RegionEntry>, mode: IndexMode) -> Self {
        let items = entries.into_iter().map(|e| (e.rect, e)).collect();
        let tree = RStarTree::bulk_load(items);
        Self {
            tree: match mode {
                IndexMode::Frozen => RegionIndex::Frozen(Box::new(tree.freeze())),
                IndexMode::Dynamic => RegionIndex::Dynamic(tree),
            },
        }
    }

    /// Builds the layer over a landuse grid (bulk-loaded R\*-tree over all
    /// cells, as in the paper's Swisstopo experiments), frozen into the
    /// flat snapshot.
    pub fn from_landuse(grid: &LanduseGrid) -> Self {
        Self::from_landuse_with(grid, IndexMode::Frozen)
    }

    /// [`RegionAnnotator::from_landuse`] with an explicit index backend.
    pub fn from_landuse_with(grid: &LanduseGrid, mode: IndexMode) -> Self {
        // one interned label per category (17 allocations total) instead of
        // one `format!` call per cell (hundreds of thousands on city grids)
        let labels: Vec<Arc<str>> = LanduseCategory::ALL
            .iter()
            .map(|c| Arc::from(format!("{} [{}]", c.label(), c.code())))
            .collect();
        let entries = grid
            .cells()
            .map(|c| RegionEntry {
                id: c.id,
                label: Arc::clone(&labels[c.category.ordinal()]),
                category: Some(c.category),
                polygon: None,
                rect: c.rect,
            })
            .collect();
        Self::from_entries(entries, mode)
    }

    /// Builds the layer over free-form named regions (campus, recreation
    /// areas — the paper's OpenStreetMap examples), frozen into the flat
    /// snapshot.
    pub fn from_named_regions(regions: &[NamedRegion]) -> Self {
        Self::from_named_regions_with(regions, IndexMode::Frozen)
    }

    /// [`RegionAnnotator::from_named_regions`] with an explicit index
    /// backend.
    pub fn from_named_regions_with(regions: &[NamedRegion], mode: IndexMode) -> Self {
        let entries = regions
            .iter()
            .map(|r| RegionEntry {
                id: r.id,
                label: Arc::from(r.name.as_str()),
                category: None,
                polygon: Some(r.polygon.clone()),
                rect: r.bbox(),
            })
            .collect();
        Self::from_entries(entries, mode)
    }

    /// Number of indexed regions.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when no regions are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.len() == 0
    }

    /// The most specific (smallest-area) region containing `p`.
    pub fn region_at(&self, p: Point) -> Option<PlaceRef> {
        self.entry_at(p)
            .map(|e| PlaceRef::new(PlaceKind::Region, e.id, &*e.label))
    }

    fn entry_at(&self, p: Point) -> Option<&RegionEntry> {
        self.entry_at_with(&mut RegionScratch::new(), p)
    }

    /// Point-in-region lookup threading a reusable traversal stack, so a
    /// whole-trajectory join performs no per-record allocation.
    fn entry_at_with<'t>(
        &'t self,
        scratch: &mut RegionScratch<'t>,
        p: Point,
    ) -> Option<&'t RegionEntry> {
        let probe = Rect::from_point(p);
        let mut best: Option<&RegionEntry> = None;
        self.tree.for_each_in_with(scratch, &probe, |e| {
            if e.contains(p) && best.is_none_or(|b| e.area() < b.area()) {
                best = Some(e);
            }
        });
        best
    }

    /// Algorithm 1: spatial join of the raw trajectory against the region
    /// source, grouping continuous records per region and merging
    /// consecutive tuples of the same region type.
    ///
    /// Records covered by no region produce gaps (no tuple), matching the
    /// paper's partial annotations.
    pub fn annotate_trajectory(&self, traj: &RawTrajectory) -> Vec<RegionTuple> {
        let records = traj.records();
        let mut out: Vec<RegionTuple> = Vec::new();
        let mut scratch = RegionScratch::new();
        for (i, r) in records.iter().enumerate() {
            let Some(entry) = self.entry_at_with(&mut scratch, r.point) else {
                continue;
            };
            // merge into the previous tuple when it references the same
            // region and is contiguous (Algorithm 1 lines 10–11: same
            // regtype ⇒ single tuple)
            if let Some(last) = out.last_mut() {
                let same_region = last.place.id == entry.id;
                let same_type = match (last.category, entry.category) {
                    (Some(a), Some(b)) => a == b,
                    _ => same_region,
                };
                if last.end == i && same_type {
                    // extend; when crossing into a sibling cell of the same
                    // category keep the first region's identity
                    last.end = i + 1;
                    last.span = TimeSpan::new(last.span.start, r.t);
                    continue;
                }
            }
            out.push(RegionTuple {
                place: PlaceRef::new(PlaceKind::Region, entry.id, &*entry.label),
                category: entry.category,
                span: TimeSpan::new(r.t, r.t),
                start: i,
                end: i + 1,
            });
        }
        out
    }

    /// Episode-scoped join (§4.1): a *stop* is joined by its center point
    /// (spatial subsumption), a *move* by its bounding rectangle
    /// (intersection). Returns the matching regions for the episode.
    pub fn annotate_episode(&self, traj: &RawTrajectory, episode: &Episode) -> Vec<PlaceRef> {
        match episode.kind {
            semitri_episodes::EpisodeKind::Stop => {
                self.region_at(episode.center).into_iter().collect()
            }
            semitri_episodes::EpisodeKind::Move => {
                let _ = traj;
                let mut out = Vec::new();
                self.tree
                    .for_each_in_with(&mut RegionScratch::new(), &episode.bbox, |e| {
                        if e.intersects(&episode.bbox) {
                            out.push(PlaceRef::new(PlaceKind::Region, e.id, &*e.label));
                        }
                    });
                out.sort_by_key(|p| p.id);
                out
            }
        }
    }

    /// Per-record landuse categories (used by the analytics layer for the
    /// Fig. 9 / Fig. 14 distributions). `None` for uncovered records.
    pub fn categories_for(&self, traj: &RawTrajectory) -> Vec<Option<LanduseCategory>> {
        let mut scratch = RegionScratch::new();
        traj.records()
            .iter()
            .map(|r| {
                self.entry_at_with(&mut scratch, r.point)
                    .and_then(|e| e.category)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::GpsRecord;
    use semitri_episodes::{SegmentationPolicy, VelocityPolicy};
    use semitri_geo::Timestamp;

    fn grid() -> LanduseGrid {
        LanduseGrid::generate(Rect::new(0.0, 0.0, 3_000.0, 3_000.0), 100.0, 5)
    }

    fn walk_traj() -> RawTrajectory {
        // straight east-west walk across the middle of the grid
        let recs: Vec<GpsRecord> = (0..200)
            .map(|i| {
                GpsRecord::new(
                    Point::new(100.0 + i as f64 * 14.0, 1_550.0),
                    Timestamp(i as f64 * 10.0),
                )
            })
            .collect();
        RawTrajectory::new(1, 1, recs)
    }

    #[test]
    fn landuse_annotator_covers_everything() {
        let ann = RegionAnnotator::from_landuse(&grid());
        assert_eq!(ann.len(), 900);
        // every in-bounds point resolves to its containing cell
        let p = Point::new(1_234.0, 987.0);
        let r = ann.region_at(p).expect("covered");
        assert_eq!(r.kind, PlaceKind::Region);
        let g = grid();
        assert_eq!(r.id, g.cell_at(p).id);
    }

    #[test]
    fn alg1_produces_contiguous_merged_tuples() {
        let ann = RegionAnnotator::from_landuse(&grid());
        let traj = walk_traj();
        let tuples = ann.annotate_trajectory(&traj);
        assert!(!tuples.is_empty());
        // tuples are ordered, non-overlapping, and cover every record
        // (landuse covers the full bounds)
        let covered: usize = tuples.iter().map(|t| t.record_count()).sum();
        assert_eq!(covered, traj.len());
        for w in tuples.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            // adjacent tuples differ in category (else they'd be merged)
            assert_ne!(w[0].category, w[1].category);
        }
        // compression: far fewer tuples than records
        assert!(tuples.len() * 3 < traj.len());
    }

    #[test]
    fn alg1_spans_are_monotone() {
        let ann = RegionAnnotator::from_landuse(&grid());
        let tuples = ann.annotate_trajectory(&walk_traj());
        for w in tuples.windows(2) {
            assert!(w[0].span.end.0 <= w[1].span.start.0);
        }
    }

    #[test]
    fn named_region_annotation() {
        let regions = vec![NamedRegion {
            id: 7,
            name: "campus".to_string(),
            kind: semitri_data::region::RegionKind::Campus,
            polygon: Polygon::from_rect(&Rect::new(500.0, 500.0, 900.0, 900.0)),
        }];
        let ann = RegionAnnotator::from_named_regions(&regions);
        assert_eq!(ann.len(), 1);
        let inside = ann.region_at(Point::new(700.0, 700.0)).expect("inside");
        assert_eq!(inside.label, "campus");
        assert!(ann.region_at(Point::new(100.0, 100.0)).is_none());
    }

    #[test]
    fn smallest_region_wins_on_overlap() {
        let regions = vec![
            NamedRegion {
                id: 1,
                name: "big".to_string(),
                kind: semitri_data::region::RegionKind::Residential,
                polygon: Polygon::from_rect(&Rect::new(0.0, 0.0, 1_000.0, 1_000.0)),
            },
            NamedRegion {
                id: 2,
                name: "small".to_string(),
                kind: semitri_data::region::RegionKind::Market,
                polygon: Polygon::from_rect(&Rect::new(400.0, 400.0, 600.0, 600.0)),
            },
        ];
        let ann = RegionAnnotator::from_named_regions(&regions);
        assert_eq!(
            ann.region_at(Point::new(500.0, 500.0)).unwrap().label,
            "small"
        );
        assert_eq!(
            ann.region_at(Point::new(100.0, 100.0)).unwrap().label,
            "big"
        );
    }

    #[test]
    fn episode_join_stop_center_and_move_bbox() {
        let ann = RegionAnnotator::from_landuse(&grid());
        let traj = walk_traj();
        let eps = VelocityPolicy::default().segment(&traj);
        assert!(!eps.is_empty());
        for e in &eps {
            let places = ann.annotate_episode(&traj, e);
            match e.kind {
                semitri_episodes::EpisodeKind::Stop => assert!(places.len() <= 1),
                semitri_episodes::EpisodeKind::Move => {
                    // a long move crosses many cells
                    assert!(places.len() > 1);
                }
            }
        }
    }

    #[test]
    fn categories_for_full_coverage() {
        let ann = RegionAnnotator::from_landuse(&grid());
        let traj = walk_traj();
        let cats = ann.categories_for(&traj);
        assert_eq!(cats.len(), traj.len());
        assert!(cats.iter().all(|c| c.is_some()));
    }

    #[test]
    fn uncovered_records_produce_gaps() {
        let regions = vec![NamedRegion {
            id: 1,
            name: "island".to_string(),
            kind: semitri_data::region::RegionKind::Recreation,
            polygon: Polygon::from_rect(&Rect::new(1_000.0, 1_500.0, 1_300.0, 1_700.0)),
        }];
        let ann = RegionAnnotator::from_named_regions(&regions);
        let traj = walk_traj();
        let tuples = ann.annotate_trajectory(&traj);
        assert_eq!(tuples.len(), 1);
        let covered: usize = tuples.iter().map(|t| t.record_count()).sum();
        assert!(covered < traj.len());
        assert_eq!(tuples[0].place.label, "island");
    }
}
