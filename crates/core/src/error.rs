//! Error type of the annotation framework.

use std::fmt;

/// Errors surfaced by the SeMiTri annotation layers.
///
/// The layers are tolerant by design — unmatched points and unannotated
/// episodes are represented as `None`/empty results, not errors — so this
/// enum only covers genuine misuse or missing substrate data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemitriError {
    /// An operation that needs at least one GPS record got an empty
    /// trajectory.
    EmptyTrajectory,
    /// The line annotation layer was invoked without any road data.
    NoRoadData,
    /// The point annotation layer was invoked without any POI data.
    NoPoiData,
    /// HMM dimensions are inconsistent (π, A, B sizes disagree).
    HmmDimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
}

impl fmt::Display for SemitriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemitriError::EmptyTrajectory => write!(f, "trajectory has no GPS records"),
            SemitriError::NoRoadData => write!(f, "no road network data available"),
            SemitriError::NoPoiData => write!(f, "no POI data available"),
            SemitriError::HmmDimensionMismatch { expected, got } => {
                write!(f, "HMM dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SemitriError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SemitriError::EmptyTrajectory.to_string(),
            "trajectory has no GPS records"
        );
        let e = SemitriError::HmmDimensionMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains("expected 5"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(SemitriError::NoRoadData);
    }
}
