//! Parallel batch annotation.
//!
//! The paper's evaluation annotates whole fleets (§5: "3M GPS records" of
//! Milan trajectories); annotating them one-by-one on a single core
//! leaves the machine idle. [`BatchAnnotator`] fans a batch of raw
//! trajectories across a pool of worker threads that *share* one
//! read-only [`SeMiTri`] — the R\*-tree, road and POI indexes are built
//! once and borrowed by every worker, never cloned.
//!
//! Guarantees:
//!
//! * **Order preservation** — `results[i]` always corresponds to
//!   `trajectories[i]`, regardless of which worker annotated it or when
//!   it finished.
//! * **Determinism** — annotation is a pure function of the input, so the
//!   outputs are identical for every pool size (only the
//!   [`LatencyProfile`]s differ).
//! * **Panic isolation** — a panic while annotating one trajectory is
//!   caught and surfaced as that slot's [`PipelineError`]; the worker and
//!   the rest of the batch continue unaffected.
//! * **Failure isolation for degraded feeds** — [`BatchAnnotator::annotate_feeds`]
//!   accepts untrusted [`GpsFeed`]s; a feed the preprocessing stage cannot
//!   repair fails its slot with [`PipelineErrorKind::MalformedFeed`]
//!   instead of panicking anywhere.

use crate::pipeline::{PipelineOutput, SeMiTri};
use semitri_data::{FeedError, GpsFeed, RawTrajectory};
use semitri_obs::{
    HistogramSnapshot, MetricsObserver, MetricsRegistry, MetricsSnapshot, PipelineObserver, Stage,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// How one trajectory of a batch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineErrorKind {
    /// The annotation panicked (a bug, an unexpected input); the panic
    /// was caught and isolated to this slot.
    Panicked,
    /// The feed was rejected by the preprocessing stage as irrecoverable
    /// (see [`FeedError`]) — expected operational noise, not a bug.
    MalformedFeed,
}

/// Failure of one trajectory inside a batch.
///
/// Carries enough identity to requeue or report the trajectory without
/// holding onto the input batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// Position of the failed trajectory in the input batch.
    pub index: usize,
    /// Moving-object identifier of the failed trajectory.
    pub object_id: u64,
    /// Trajectory identifier of the failed trajectory.
    pub trajectory_id: u64,
    /// Whether the slot panicked or its feed was rejected.
    pub kind: PipelineErrorKind,
    /// The panic payload or feed rejection, rendered as text.
    pub message: String,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.kind {
            PipelineErrorKind::Panicked => "panicked",
            PipelineErrorKind::MalformedFeed => "rejected",
        };
        write!(
            f,
            "annotation of trajectory {} (object {}, batch index {}) {verb}: {}",
            self.trajectory_id, self.object_id, self.index, self.message
        )
    }
}

impl std::error::Error for PipelineError {}

/// Distribution of one pipeline stage's per-trajectory latency (seconds)
/// across a batch, backed by the `semitri-obs` log-bucketed histograms —
/// sequential, streaming and batched runs all report this same schema.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSummary {
    /// Trajectories that went through the stage.
    pub count: u64,
    /// GPS records (or stops, for the point stage) the stage processed.
    pub records: u64,
    /// Fastest trajectory (exact).
    pub min: f64,
    /// Arithmetic mean (exact).
    pub mean: f64,
    /// Median (bucket-resolved).
    pub p50: f64,
    /// 95th percentile (bucket-resolved).
    pub p95: f64,
    /// 99th percentile (bucket-resolved).
    pub p99: f64,
    /// Slowest trajectory (exact).
    pub max: f64,
}

impl StageSummary {
    /// Builds a summary from a histogram snapshot plus the stage's
    /// processed-record counter.
    pub fn from_histogram(h: &HistogramSnapshot, records: u64) -> Self {
        Self {
            count: h.count,
            records,
            min: h.min,
            mean: h.mean(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            max: h.max,
        }
    }

    /// Reads one stage's summary out of a metrics snapshot using the
    /// canonical `stage.<id>.{secs,records}` schema.
    pub fn from_metrics(snapshot: &MetricsSnapshot, stage: Stage) -> Self {
        let records = snapshot.counter(stage.records_metric());
        match snapshot.histogram(stage.secs_metric()) {
            Some(h) => Self::from_histogram(h, records),
            None => Self {
                records,
                ..Self::default()
            },
        }
    }
}

/// Pool-wide aggregation of a batch run: throughput, per-stage latency
/// distributions (the batch analogue of Fig. 17) and worker utilization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchSummary {
    /// Worker threads the pool actually ran.
    pub threads: usize,
    /// Trajectories in the batch.
    pub trajectories: usize,
    /// Trajectories that failed (annotation panicked or the feed was
    /// rejected as malformed).
    pub failures: usize,
    /// GPS records annotated (cleaned records of successful outputs).
    pub records: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// `records / wall_secs`.
    pub records_per_sec: f64,
    /// Cleaning + episode computation latency distribution.
    pub compute_episode: StageSummary,
    /// Map matching + mode inference latency distribution.
    pub map_match: StageSummary,
    /// Landuse spatial-join latency distribution.
    pub landuse_join: StageSummary,
    /// HMM stop-annotation latency distribution.
    pub point: StageSummary,
    /// Seconds each worker spent annotating (index = worker).
    pub worker_busy_secs: Vec<f64>,
    /// Trajectories each worker processed (index = worker).
    pub worker_trajectories: Vec<usize>,
    /// Full metrics snapshot of the run (per-stage histograms, record
    /// counters, pool gauges) in the canonical `semitri-obs` schema.
    pub metrics: MetricsSnapshot,
}

impl BatchSummary {
    /// Fraction of the batch's wall-clock each worker spent annotating.
    pub fn worker_utilization(&self) -> Vec<f64> {
        if self.wall_secs <= 0.0 {
            return vec![0.0; self.worker_busy_secs.len()];
        }
        self.worker_busy_secs
            .iter()
            .map(|b| b / self.wall_secs)
            .collect()
    }

    /// The per-layer breakdown in pipeline order — the batch analogue of
    /// the paper's Fig. 17 rows.
    pub fn stages(&self) -> [(Stage, &StageSummary); 4] {
        [
            (Stage::Episode, &self.compute_episode),
            (Stage::Region, &self.landuse_join),
            (Stage::Line, &self.map_match),
            (Stage::Point, &self.point),
        ]
    }

    /// Looks up one stage's summary.
    pub fn stage(&self, stage: Stage) -> &StageSummary {
        match stage {
            Stage::Episode => &self.compute_episode,
            Stage::Region => &self.landuse_join,
            Stage::Line => &self.map_match,
            Stage::Point => &self.point,
        }
    }
}

/// Results of a batch run: one slot per input trajectory, in input order,
/// plus the pool-wide [`BatchSummary`].
#[derive(Debug)]
pub struct BatchOutput {
    /// `results[i]` is trajectory `i`'s output, or the panic that stopped
    /// it.
    pub results: Vec<Result<PipelineOutput, PipelineError>>,
    /// Aggregated throughput / latency / utilization statistics.
    pub summary: BatchSummary,
}

impl BatchOutput {
    /// The successful outputs, in input order.
    pub fn outputs(&self) -> impl Iterator<Item = &PipelineOutput> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// The failed slots, in input order.
    pub fn errors(&self) -> impl Iterator<Item = &PipelineError> {
        self.results.iter().filter_map(|r| r.as_ref().err())
    }
}

/// A worker pool annotating batches of trajectories over one shared
/// [`SeMiTri`].
///
/// The shared pipeline's spatial indexes are frozen flat snapshots by
/// default ([`crate::IndexMode::Frozen`]): built once before the pool
/// starts, then read concurrently by every worker through `&self` queries
/// with no locks and no per-worker copies.
///
/// ```no_run
/// # use semitri_core::{BatchAnnotator, SeMiTri, PipelineConfig};
/// # use semitri_data::{City, CityConfig, RawTrajectory};
/// # let city = City::generate(CityConfig::default());
/// # let batch: Vec<RawTrajectory> = Vec::new();
/// let semitri = SeMiTri::new(&city, PipelineConfig::default());
/// let out = BatchAnnotator::new(&semitri).with_threads(4).annotate_all(&batch);
/// println!("{:.0} records/s", out.summary.records_per_sec);
/// ```
pub struct BatchAnnotator<'s> {
    semitri: &'s SeMiTri,
    threads: usize,
    registry: Option<Arc<MetricsRegistry>>,
}

impl<'s> BatchAnnotator<'s> {
    /// Builds a pool over `semitri` sized to the machine's parallelism.
    pub fn new(semitri: &'s SeMiTri) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            semitri,
            threads,
            registry: None,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Records the run's metrics into an external registry instead of a
    /// fresh per-run one (e.g. a process-wide registry scraped by an
    /// exporter). When reused across runs the counters and histograms
    /// accumulate; the per-run [`BatchSummary`] then summarizes the
    /// registry's whole history, not just the last batch.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Annotates every trajectory of `batch`, fanning the work across the
    /// pool. Workers pull indexes from a shared channel (natural work
    /// stealing: a worker stuck on a long trajectory doesn't block the
    /// others), so the output is reassembled by index afterwards.
    pub fn annotate_all(&self, batch: &[RawTrajectory]) -> BatchOutput {
        let semitri = self.semitri;
        self.run_batch(
            batch,
            |t| (t.object_id, t.trajectory_id),
            move |t| semitri.try_annotate(t),
        )
    }

    /// Annotates every untrusted [`GpsFeed`] of `batch`: each worker runs
    /// the preprocessing stage on its feed (sort, dedupe, drop), so
    /// malformed feeds fail *their slot* with
    /// [`PipelineErrorKind::MalformedFeed`] while the rest of the fleet
    /// annotates normally.
    pub fn annotate_feeds(&self, batch: &[GpsFeed]) -> BatchOutput {
        let semitri = self.semitri;
        self.run_batch(
            batch,
            |f| (f.object_id, f.trajectory_id),
            move |f| semitri.try_annotate_feed(f),
        )
    }

    fn run_batch<T, I, A>(&self, batch: &[T], ids: I, annotate: A) -> BatchOutput
    where
        T: Sync,
        I: Fn(&T) -> (u64, u64) + Sync,
        A: Fn(&T) -> Result<PipelineOutput, FeedError> + Sync,
    {
        let started = Instant::now();
        // never spin up more workers than there is work for
        let threads = self.threads.min(batch.len()).max(1);

        // per-run metrics: every worker reports stage spans through the
        // same observer the sequential pipeline uses, so the summary's
        // schema is identical to a sequential run's registry
        let registry = self
            .registry
            .clone()
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let stage_observer = MetricsObserver::new(registry.clone());
        let trajectory_secs = registry.histogram("batch.trajectory.secs");
        registry.gauge("batch.threads").set(threads as i64);
        registry
            .counter("batch.trajectories")
            .add(batch.len() as u64);
        let failure_counter = registry.counter("batch.failures");

        let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
        let (result_tx, result_rx) =
            crossbeam::channel::unbounded::<(usize, Result<PipelineOutput, PipelineError>)>();
        for index in 0..batch.len() {
            job_tx.send(index).expect("job receiver alive");
        }
        drop(job_tx);

        let ids = &ids;
        let annotate = &annotate;
        let worker_stats: Vec<(f64, usize)> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let jobs = job_rx.clone();
                    let results = result_tx.clone();
                    let stage_observer = &stage_observer;
                    let trajectory_secs = &trajectory_secs;
                    let failure_counter = &failure_counter;
                    scope.spawn(move |_| {
                        let mut busy_secs = 0.0;
                        let mut annotated = 0usize;
                        while let Ok(index) = jobs.recv() {
                            let item = &batch[index];
                            let (object_id, trajectory_id) = ids(item);
                            let t0 = Instant::now();
                            let outcome = match catch_unwind(AssertUnwindSafe(|| annotate(item))) {
                                Ok(Ok(out)) => Ok(out),
                                Ok(Err(feed_err)) => Err(PipelineError {
                                    index,
                                    object_id,
                                    trajectory_id,
                                    kind: PipelineErrorKind::MalformedFeed,
                                    message: feed_err.to_string(),
                                }),
                                Err(payload) => Err(PipelineError {
                                    index,
                                    object_id,
                                    trajectory_id,
                                    kind: PipelineErrorKind::Panicked,
                                    message: panic_message(payload.as_ref()),
                                }),
                            };
                            let elapsed = t0.elapsed().as_secs_f64();
                            busy_secs += elapsed;
                            annotated += 1;
                            match &outcome {
                                Ok(out) => {
                                    trajectory_secs.record(elapsed);
                                    stage_observer.on_preprocess(trajectory_id, &out.cleaning);
                                    for stage in Stage::ALL {
                                        stage_observer.on_stage_end(
                                            stage,
                                            trajectory_id,
                                            out.stage_records(stage),
                                            out.latency.stage_secs(stage),
                                        );
                                    }
                                }
                                Err(_) => failure_counter.inc(),
                            }
                            if results.send((index, outcome)).is_err() {
                                break;
                            }
                        }
                        (busy_secs, annotated)
                    })
                })
                .collect();
            // close this scope's spare handles so the result drain below
            // sees disconnection once every worker is done
            drop(result_tx);
            drop(job_rx);
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or((0.0, 0)))
                .collect()
        })
        .expect("workers never propagate panics");

        // reassemble in input order
        let mut slots: Vec<Option<Result<PipelineOutput, PipelineError>>> =
            (0..batch.len()).map(|_| None).collect();
        while let Ok((index, outcome)) = result_rx.try_recv() {
            slots[index] = Some(outcome);
        }
        let results: Vec<Result<PipelineOutput, PipelineError>> = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    let (object_id, trajectory_id) = ids(&batch[index]);
                    Err(PipelineError {
                        index,
                        object_id,
                        trajectory_id,
                        kind: PipelineErrorKind::Panicked,
                        message: "worker produced no result".into(),
                    })
                })
            })
            .collect();
        let wall_secs = started.elapsed().as_secs_f64();

        let mut records = 0usize;
        let mut failures = 0usize;
        for result in &results {
            match result {
                Ok(output) => records += output.cleaned.len(),
                Err(_) => failures += 1,
            }
        }
        registry.counter("batch.records").add(records as u64);

        let metrics = registry.snapshot();
        let summary = BatchSummary {
            threads,
            trajectories: batch.len(),
            failures,
            records,
            wall_secs,
            records_per_sec: if wall_secs > 0.0 {
                records as f64 / wall_secs
            } else {
                0.0
            },
            compute_episode: StageSummary::from_metrics(&metrics, Stage::Episode),
            map_match: StageSummary::from_metrics(&metrics, Stage::Line),
            landuse_join: StageSummary::from_metrics(&metrics, Stage::Region),
            point: StageSummary::from_metrics(&metrics, Stage::Point),
            worker_busy_secs: worker_stats.iter().map(|(busy, _)| *busy).collect(),
            worker_trajectories: worker_stats.iter().map(|(_, n)| *n).collect(),
            metrics,
        };

        BatchOutput { results, summary }
    }
}

impl SeMiTri {
    /// Annotates a batch of trajectories over `threads` shared workers.
    /// Convenience for [`BatchAnnotator`] with an explicit pool size.
    pub fn annotate_batch(&self, batch: &[RawTrajectory], threads: usize) -> BatchOutput {
        BatchAnnotator::new(self)
            .with_threads(threads)
            .annotate_all(batch)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use semitri_data::sim::{SimConfig, TripSimulator};
    use semitri_data::{City, CityConfig, PoiCategory, TransportMode};
    use semitri_episodes::{EpisodeKind, SegmentationPolicy, VelocityPolicy};
    use semitri_geo::{Point, Rect, Timestamp};

    fn small_city() -> City {
        City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 5_000.0, 5_000.0),
            poi_count: 400,
            region_count: 4,
            seed: 77,
            ..CityConfig::default()
        })
    }

    fn fleet(city: &City, trips: u64) -> Vec<RawTrajectory> {
        (0..trips)
            .map(|k| {
                let origin = Point::new(900.0 + 350.0 * k as f64, 1_300.0 + 250.0 * k as f64);
                let dest = Point::new(4_000.0 - 300.0 * k as f64, 3_800.0 - 200.0 * k as f64);
                let mut sim = TripSimulator::new(
                    &city.roads,
                    SimConfig {
                        sampling_interval: 6.0,
                        ..SimConfig::default()
                    },
                    11 + k,
                    origin,
                    Timestamp(7.0 * 3_600.0 + 600.0 * k as f64),
                );
                sim.dwell(900.0, true, None);
                sim.travel_to(dest, TransportMode::Walk);
                sim.dwell(1_500.0, false, Some((k + 1, PoiCategory::ItemSale)));
                sim.travel_to(origin, TransportMode::Walk);
                sim.dwell(900.0, true, None);
                sim.finish(k + 1, 100 + k).to_raw()
            })
            .collect()
    }

    /// Asserts the semantic (non-timing) parts of two outputs are equal.
    fn assert_same_output(a: &PipelineOutput, b: &PipelineOutput) {
        assert_eq!(a.cleaned.records(), b.cleaned.records());
        assert_eq!(a.episodes, b.episodes);
        assert_eq!(a.region_tuples, b.region_tuples);
        assert_eq!(a.move_routes, b.move_routes);
        assert_eq!(a.stop_annotations, b.stop_annotations);
        assert_eq!(a.sst, b.sst);
    }

    #[test]
    fn results_preserve_input_order() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let batch = fleet(&city, 5);
        let out = BatchAnnotator::new(&semitri)
            .with_threads(3)
            .annotate_all(&batch);
        assert_eq!(out.results.len(), batch.len());
        for (i, result) in out.results.iter().enumerate() {
            let output = result.as_ref().expect("no failures in this batch");
            assert_eq!(output.sst.object_id, batch[i].object_id);
            assert_eq!(output.sst.trajectory_id, batch[i].trajectory_id);
        }
    }

    #[test]
    fn multi_thread_output_is_identical_to_single_thread() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let batch = fleet(&city, 6);
        let single = semitri.annotate_batch(&batch, 1);
        let pooled = semitri.annotate_batch(&batch, 4);
        assert_eq!(single.results.len(), pooled.results.len());
        for (a, b) in single.results.iter().zip(&pooled.results) {
            assert_same_output(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        // and both agree with the sequential single-trajectory API
        for (traj, result) in batch.iter().zip(&pooled.results) {
            assert_same_output(&semitri.annotate(traj), result.as_ref().unwrap());
        }
    }

    /// Policy that panics on one marked trajectory — exercises panic
    /// isolation without poisoning the pool.
    struct PanickingPolicy {
        inner: VelocityPolicy,
        poison_trajectory_id: u64,
    }

    impl SegmentationPolicy for PanickingPolicy {
        fn label(&self, traj: &RawTrajectory) -> Vec<EpisodeKind> {
            assert_ne!(
                traj.trajectory_id, self.poison_trajectory_id,
                "injected batch failure"
            );
            self.inner.label(traj)
        }

        fn min_stop_secs(&self) -> f64 {
            self.inner.min_stop_secs()
        }
    }

    #[test]
    fn worker_panic_is_isolated_to_its_trajectory() {
        let city = small_city();
        let batch = fleet(&city, 5);
        let poisoned = SeMiTri::new(
            &city,
            PipelineConfig {
                policy: Box::new(PanickingPolicy {
                    inner: VelocityPolicy::default(),
                    poison_trajectory_id: batch[2].trajectory_id,
                }),
                ..PipelineConfig::default()
            },
        );
        let clean = SeMiTri::new(&city, PipelineConfig::default());

        let out = poisoned.annotate_batch(&batch, 3);
        assert_eq!(out.summary.failures, 1);
        assert_eq!(out.errors().count(), 1);
        let err = out.results[2].as_ref().unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.object_id, batch[2].object_id);
        assert_eq!(err.trajectory_id, batch[2].trajectory_id);
        assert_eq!(err.kind, PipelineErrorKind::Panicked);
        assert!(err.message.contains("injected batch failure"), "{err}");
        assert!(err.to_string().contains("panicked"), "{err}");

        // every other slot still annotated, identically to a clean run
        for (i, result) in out.results.iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert_same_output(result.as_ref().unwrap(), &clean.annotate(&batch[i]));
        }
    }

    #[test]
    fn summary_aggregates_stages_and_workers() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let batch = fleet(&city, 4);
        let out = semitri.annotate_batch(&batch, 2);
        let s = &out.summary;
        assert_eq!(s.threads, 2);
        assert_eq!(s.trajectories, 4);
        assert_eq!(s.failures, 0);
        assert!(s.records > 0);
        assert!(s.wall_secs > 0.0);
        assert!(s.records_per_sec > 0.0);
        for stage in [&s.compute_episode, &s.map_match, &s.landuse_join, &s.point] {
            assert!(stage.min <= stage.mean && stage.mean <= stage.max);
            assert!(stage.min <= stage.p95 && stage.p95 <= stage.max);
        }
        assert_eq!(s.worker_busy_secs.len(), 2);
        assert_eq!(s.worker_trajectories.len(), 2);
        assert_eq!(s.worker_trajectories.iter().sum::<usize>(), 4);
        for u in s.worker_utilization() {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    #[test]
    fn malformed_feed_fails_its_slot_not_the_batch() {
        use semitri_data::GpsRecord;
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let good = fleet(&city, 3);

        // slot 1 is irrecoverable (all fixes non-finite); the others are
        // the good trajectories, one of them scrambled out of order
        // (adjacent swaps across distinct timestamps, so the stable
        // re-sort restores exactly the original order, ties included)
        let mut scrambled = good[2].records().to_vec();
        for i in (0..scrambled.len().saturating_sub(1)).step_by(7) {
            if scrambled[i].t != scrambled[i + 1].t {
                scrambled.swap(i, i + 1);
            }
        }
        let feeds = vec![
            GpsFeed::new(
                good[0].object_id,
                good[0].trajectory_id,
                good[0].records().to_vec(),
            ),
            GpsFeed::new(
                9,
                999,
                vec![GpsRecord::new(
                    Point::new(f64::NAN, f64::NAN),
                    Timestamp(0.0),
                )],
            ),
            GpsFeed::new(good[2].object_id, good[2].trajectory_id, scrambled),
        ];

        let out = BatchAnnotator::new(&semitri)
            .with_threads(2)
            .annotate_feeds(&feeds);
        assert_eq!(out.results.len(), 3);
        assert_eq!(out.summary.failures, 1);

        let err = out.results[1].as_ref().unwrap_err();
        assert_eq!(err.kind, PipelineErrorKind::MalformedFeed);
        assert_eq!(err.trajectory_id, 999);
        assert!(err.to_string().contains("rejected"), "{err}");
        assert!(err.message.contains("no valid records"), "{err}");

        // the clean slot matches the trusted path exactly
        assert_same_output(
            out.results[0].as_ref().unwrap(),
            &semitri.annotate(&good[0]),
        );
        // the scrambled slot was repaired back into the same trajectory
        let repaired = out.results[2].as_ref().unwrap();
        assert!(repaired.cleaning.reordered > 0);
        assert_same_output(repaired, &semitri.annotate(&good[2]));

        // preprocess counters flowed into the batch metrics
        let total_input: u64 = feeds.iter().map(|f| f.records.len() as u64).sum();
        assert_eq!(
            out.summary.metrics.counter("stage.preprocess.records"),
            total_input - 1 // the malformed feed never reports
        );
        assert!(out.summary.metrics.counter("stage.preprocess.reordered") > 0);
    }

    #[test]
    fn oversized_pool_and_empty_batch_are_safe() {
        let city = small_city();
        let semitri = SeMiTri::new(&city, PipelineConfig::default());

        let empty = semitri.annotate_batch(&[], 8);
        assert!(empty.results.is_empty());
        assert_eq!(empty.summary.records, 0);
        assert_eq!(empty.summary.records_per_sec, 0.0);

        let batch = fleet(&city, 2);
        let out = semitri.annotate_batch(&batch, 16);
        // the pool never spawns more workers than trajectories
        assert_eq!(out.summary.threads, 2);
        assert!(out.results.iter().all(|r| r.is_ok()));
    }
}
