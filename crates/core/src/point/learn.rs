//! Learning the HMM transition matrix from observed activity sequences.
//!
//! The paper initializes the state transition matrix from nomenclature
//! (Fig. 6) and notes that "learning dynamic and personalized transition
//! matrix A is interesting but not the focus of this paper". This module
//! implements that extension: maximum-likelihood transition estimation
//! with Laplace (add-α) smoothing from labeled stop-category sequences —
//! e.g. a user's confirmed history, or region-transition logs.

use semitri_data::PoiCategory;

/// Counts category-to-category transitions across sequences and returns a
/// row-stochastic 5×5 matrix with add-`alpha` smoothing.
///
/// Rows with no observations fall back to the uniform distribution (they
/// would otherwise be all-smoothing anyway). `alpha = 1.0` is classic
/// Laplace smoothing; smaller values trust the data more.
///
/// # Panics
/// Panics if `alpha` is negative.
pub fn learn_transitions(sequences: &[Vec<PoiCategory>], alpha: f64) -> Vec<Vec<f64>> {
    assert!(alpha >= 0.0, "smoothing alpha must be non-negative");
    let n = PoiCategory::ALL.len();
    let mut counts = vec![vec![0.0f64; n]; n];
    for seq in sequences {
        for w in seq.windows(2) {
            counts[w[0].ordinal()][w[1].ordinal()] += 1.0;
        }
    }
    counts
        .into_iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            if total == 0.0 && alpha == 0.0 {
                return vec![1.0 / n as f64; n];
            }
            let denom = total + alpha * n as f64;
            row.into_iter().map(|c| (c + alpha) / denom).collect()
        })
        .collect()
}

/// Evaluates how well a transition matrix explains held-out sequences:
/// mean log-likelihood per transition (higher is better). Returns `None`
/// when the sequences contain no transitions.
pub fn transition_log_likelihood(a: &[Vec<f64>], sequences: &[Vec<PoiCategory>]) -> Option<f64> {
    let mut ll = 0.0f64;
    let mut n = 0usize;
    for seq in sequences {
        for w in seq.windows(2) {
            let p = a[w[0].ordinal()][w[1].ordinal()].max(1e-300);
            ll += p.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(ll / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::hmm::Hmm;
    use PoiCategory::*;

    #[test]
    fn rows_are_stochastic() {
        let seqs = vec![
            vec![Services, Feedings, ItemSale, PersonLife],
            vec![Feedings, Feedings, ItemSale],
        ];
        let a = learn_transitions(&seqs, 1.0);
        assert_eq!(a.len(), 5);
        for row in &a {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn learned_matrix_reflects_observed_transitions() {
        // heavily repeated ItemSale → PersonLife
        let seqs = vec![vec![ItemSale, PersonLife]; 50];
        let a = learn_transitions(&seqs, 0.1);
        let row = &a[ItemSale.ordinal()];
        assert!(row[PersonLife.ordinal()] > 0.9);
        assert!(row[Services.ordinal()] < 0.05);
    }

    #[test]
    fn unobserved_rows_uniform_without_smoothing() {
        let seqs = vec![vec![ItemSale, ItemSale]];
        let a = learn_transitions(&seqs, 0.0);
        let row = &a[Feedings.ordinal()];
        assert!(row.iter().all(|&p| (p - 0.2).abs() < 1e-12));
    }

    #[test]
    fn empty_input_gives_uniform_or_smoothed() {
        let a = learn_transitions(&[], 1.0);
        for row in &a {
            assert!(row.iter().all(|&p| (p - 0.2).abs() < 1e-12));
        }
    }

    #[test]
    fn learned_matrix_beats_default_on_matching_data() {
        // synthetic behavior: strong ItemSale self-loop with occasional
        // Feedings breaks — very different from the Fig. 6 default
        let mut seqs = Vec::new();
        for k in 0..20 {
            let mut s = vec![ItemSale; 8];
            if k % 3 == 0 {
                s[4] = Feedings;
            }
            seqs.push(s);
        }
        let learned = learn_transitions(&seqs[..15], 0.5);
        let default = Hmm::default_transitions(5);
        let ll_learned = transition_log_likelihood(&learned, &seqs[15..]).unwrap();
        let ll_default = transition_log_likelihood(&default, &seqs[15..]).unwrap();
        assert!(
            ll_learned > ll_default,
            "learned {ll_learned} vs default {ll_default}"
        );
    }

    #[test]
    fn learned_matrix_plugs_into_the_annotator() {
        use crate::point::{PointAnnotator, PointParams};
        use semitri_data::{Poi, PoiSet};
        use semitri_geo::{Point, Rect};

        let pois = PoiSet::new(
            (0..10)
                .map(|i| Poi {
                    id: i,
                    point: Point::new(100.0 + i as f64, 100.0),
                    category: ItemSale,
                    name: format!("shop {i}"),
                })
                .collect(),
        );
        let a = learn_transitions(&[vec![ItemSale, ItemSale, ItemSale]], 1.0);
        let ann = PointAnnotator::new(
            &pois,
            Rect::new(0.0, 0.0, 500.0, 500.0),
            PointParams::default(),
        )
        .unwrap()
        .with_transitions(&a)
        .unwrap();
        let out = ann.annotate_stops(&[Point::new(101.0, 100.0), Point::new(104.0, 101.0)]);
        assert!(out.iter().all(|s| s.category == ItemSale));
    }

    #[test]
    fn log_likelihood_none_without_transitions() {
        let a = Hmm::default_transitions(5);
        assert!(transition_log_likelihood(&a, &[]).is_none());
        assert!(transition_log_likelihood(&a, &[vec![ItemSale]]).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_alpha() {
        learn_transitions(&[], -0.1);
    }
}
