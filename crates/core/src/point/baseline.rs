//! Nearest-POI baseline for stop annotation.
//!
//! The "traditional one-to-one match" the paper contrasts with (§5.2,
//! citing \[28\]): each stop is annotated with the category of its single
//! nearest POI, ignoring density and the stop sequence. Works in sparse
//! landscapes, degrades in dense urban areas — which the ablation bench
//! quantifies.

use semitri_data::{PoiCategory, PoiSet};
use semitri_geo::{Point, Rect};
use semitri_index::GridIndex;

/// The nearest-POI stop annotator.
#[derive(Debug, Clone)]
pub struct NearestPoiAnnotator {
    grid: GridIndex<PoiCategory>,
    search_radius: f64,
}

impl NearestPoiAnnotator {
    /// Builds the baseline over a POI set.
    ///
    /// # Panics
    /// Panics on an empty POI set or non-positive parameters.
    pub fn new(pois: &PoiSet, bounds: Rect, cell_size: f64, search_radius: f64) -> Self {
        assert!(!pois.is_empty(), "baseline needs at least one POI");
        assert!(
            cell_size > 0.0 && search_radius > 0.0,
            "parameters must be positive"
        );
        let mut grid = GridIndex::new(bounds, cell_size);
        for p in pois.pois() {
            grid.insert(p.point, p.category);
        }
        Self {
            grid,
            search_radius,
        }
    }

    /// The category of the nearest POI within the search radius of `p`,
    /// or `None` in a POI desert.
    pub fn annotate(&self, p: Point) -> Option<PoiCategory> {
        let mut best: Option<(f64, PoiCategory)> = None;
        self.grid.for_each_within(p, self.search_radius, |q, &cat| {
            let d = p.distance_sq(q);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, cat));
            }
        });
        best.map(|(_, c)| c)
    }

    /// Annotates a sequence of stop centers.
    pub fn annotate_stops(&self, centers: &[Point]) -> Vec<Option<PoiCategory>> {
        centers.iter().map(|&c| self.annotate(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::Poi;

    fn set() -> (PoiSet, Rect) {
        let bounds = Rect::new(0.0, 0.0, 1_000.0, 1_000.0);
        let pois = PoiSet::new(vec![
            Poi {
                id: 0,
                point: Point::new(100.0, 100.0),
                category: PoiCategory::Feedings,
                name: "cafe".to_string(),
            },
            Poi {
                id: 1,
                point: Point::new(120.0, 100.0),
                category: PoiCategory::ItemSale,
                name: "shop".to_string(),
            },
        ]);
        (pois, bounds)
    }

    #[test]
    fn picks_nearest() {
        let (pois, bounds) = set();
        let ann = NearestPoiAnnotator::new(&pois, bounds, 50.0, 200.0);
        assert_eq!(
            ann.annotate(Point::new(95.0, 100.0)),
            Some(PoiCategory::Feedings)
        );
        assert_eq!(
            ann.annotate(Point::new(130.0, 100.0)),
            Some(PoiCategory::ItemSale)
        );
    }

    #[test]
    fn desert_returns_none() {
        let (pois, bounds) = set();
        let ann = NearestPoiAnnotator::new(&pois, bounds, 50.0, 100.0);
        assert_eq!(ann.annotate(Point::new(900.0, 900.0)), None);
    }

    #[test]
    fn annotate_stops_maps_each() {
        let (pois, bounds) = set();
        let ann = NearestPoiAnnotator::new(&pois, bounds, 50.0, 200.0);
        let out = ann.annotate_stops(&[Point::new(100.0, 101.0), Point::new(800.0, 800.0)]);
        assert_eq!(out, vec![Some(PoiCategory::Feedings), None]);
    }
}
