//! Semantic Point Annotation Layer (paper §4.3, Algorithm 3).
//!
//! Annotates the *stop* episodes of a trajectory with POI categories — the
//! activity behind the stop — using an HMM whose hidden states are the POI
//! categories, observations are the stop positions, and the observation
//! model is the Gaussian/discretized density of [`observation`]. Decoding
//! is log-space Viterbi ([`hmm`]). [`baseline`] provides the one-to-one
//! nearest-POI annotator the paper contrasts against.

pub mod baseline;
pub mod hmm;
pub mod learn;
pub mod observation;

use crate::error::SemitriError;
use crate::model::{PlaceKind, PlaceRef};
use hmm::Hmm;
use observation::{PoiLookupScratch, PoiObservationModel, CATEGORY_COUNT};
use semitri_data::{PoiCategory, PoiSet};
use semitri_geo::{Point, Rect};
use semitri_index::{IndexMode, OracleMode};

/// The result for one stop: the inferred category and, when resolvable,
/// the exact POI behind the stop.
#[derive(Debug, Clone, PartialEq)]
pub struct StopAnnotation {
    /// Inferred activity category (the HMM hidden state).
    pub category: PoiCategory,
    /// The nearest POI of that category, as a point place reference.
    pub poi: Option<PlaceRef>,
}

/// Configuration of the point annotation layer.
#[derive(Debug, Clone, Copy)]
pub struct PointParams {
    /// Grid cell size of the discretized observation model, meters.
    pub cell_size_m: f64,
    /// Neighbor radius for POI influence, meters.
    pub neighbor_radius_m: f64,
    /// Use the precomputed discretized observation rows (`true`, the
    /// paper's efficient path) or exact Gaussian sums per stop.
    pub discretized: bool,
}

impl Default for PointParams {
    fn default() -> Self {
        Self {
            cell_size_m: 30.0,
            neighbor_radius_m: 75.0,
            discretized: true,
        }
    }
}

/// The Semantic Point Annotation Layer.
///
/// ```
/// use semitri_core::point::{PointAnnotator, PointParams};
/// use semitri_data::{Poi, PoiCategory, PoiSet};
/// use semitri_geo::{Point, Rect};
///
/// let pois = PoiSet::new(
///     (0..8)
///         .map(|i| Poi {
///             id: i,
///             point: Point::new(500.0 + i as f64 * 10.0, 500.0),
///             category: PoiCategory::Feedings,
///             name: format!("cafe {i}"),
///         })
///         .collect(),
/// );
/// let bounds = Rect::new(0.0, 0.0, 1_000.0, 1_000.0);
/// let annotator = PointAnnotator::new(&pois, bounds, PointParams::default()).unwrap();
/// let stops = annotator.annotate_stops(&[Point::new(520.0, 505.0)]);
/// assert_eq!(stops[0].category, PoiCategory::Feedings);
/// ```
pub struct PointAnnotator {
    model: PoiObservationModel,
    hmm: Hmm,
    pois: PoiSet,
    params: PointParams,
}

impl PointAnnotator {
    /// Builds the layer over a POI source.
    ///
    /// * π is approximated by the category shares of the source (§4.3:
    ///   "the percentage of POI samples belonging to each category");
    /// * A defaults to the Fig. 6 matrix; override with
    ///   [`PointAnnotator::with_transitions`].
    ///
    /// # Errors
    /// Returns [`SemitriError::NoPoiData`] for an empty POI set.
    pub fn new(pois: &PoiSet, bounds: Rect, params: PointParams) -> Result<Self, SemitriError> {
        Self::with_index_mode(pois, bounds, params, IndexMode::Frozen)
    }

    /// [`PointAnnotator::new`] with an explicit backend for the POI
    /// resolution index (keeps the default shortlist oracle).
    ///
    /// # Errors
    /// Returns [`SemitriError::NoPoiData`] for an empty POI set.
    pub fn with_index_mode(
        pois: &PoiSet,
        bounds: Rect,
        params: PointParams,
        mode: IndexMode,
    ) -> Result<Self, SemitriError> {
        Self::with_modes(pois, bounds, params, mode, OracleMode::default())
    }

    /// [`PointAnnotator::new`] with explicit index and oracle backends.
    ///
    /// # Errors
    /// Returns [`SemitriError::NoPoiData`] for an empty POI set.
    pub fn with_modes(
        pois: &PoiSet,
        bounds: Rect,
        params: PointParams,
        mode: IndexMode,
        oracle_mode: OracleMode,
    ) -> Result<Self, SemitriError> {
        if pois.is_empty() {
            return Err(SemitriError::NoPoiData);
        }
        let hist = pois.category_histogram();
        let total: usize = hist.iter().sum();
        let pi: Vec<f64> = hist.iter().map(|&c| c as f64 / total as f64).collect();
        let a = Hmm::default_transitions(CATEGORY_COUNT);
        let hmm = Hmm::new(&pi, &a).expect("consistent dimensions");
        let model = PoiObservationModel::with_modes(
            pois,
            bounds,
            params.cell_size_m,
            params.neighbor_radius_m,
            mode,
            oracle_mode,
        );
        Ok(Self {
            model,
            hmm,
            pois: pois.clone(),
            params,
        })
    }

    /// Replaces the transition matrix (e.g. learned from region
    /// transitions, as the paper suggests for data-rich deployments).
    ///
    /// # Errors
    /// Returns [`SemitriError::HmmDimensionMismatch`] when `a` is not
    /// 5 × 5.
    pub fn with_transitions(mut self, a: &[Vec<f64>]) -> Result<Self, SemitriError> {
        let hist = self.pois.category_histogram();
        let total: usize = hist.iter().sum();
        let pi: Vec<f64> = hist.iter().map(|&c| c as f64 / total as f64).collect();
        self.hmm = Hmm::new(&pi, a)?;
        Ok(self)
    }

    /// The observation model (exposed for the ablation benchmarks).
    pub fn observation_model(&self) -> &PoiObservationModel {
        &self.model
    }

    /// Causal (online) annotation of one stop given the forward state of
    /// the previous stops (`None` for the first stop of the feed). Returns
    /// the annotation plus the updated forward state — used by the
    /// real-time annotator, where future stops are not yet known.
    pub fn annotate_stop_online(
        &self,
        center: Point,
        prev_forward: Option<&[f64]>,
    ) -> (StopAnnotation, Vec<f64>) {
        let row = if self.params.discretized {
            self.model.observe_discretized(center)
        } else {
            self.model.observe_exact(center)
        };
        let forward = match prev_forward {
            None => self.hmm.forward_init(&row).expect("row width fixed"),
            Some(prev) => self.hmm.forward_step(prev, &row).expect("row width fixed"),
        };
        let state = forward
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let category = PoiCategory::ALL[state];
        let poi = self
            .model
            .nearest_of_category(&self.pois, center, category)
            .map(|p| PlaceRef::new(PlaceKind::Point, p.id, p.name.clone()));
        (StopAnnotation { category, poi }, forward)
    }

    /// Algorithm 3: infers the category sequence behind a sequence of stop
    /// centers (one trajectory's stops, time-ordered) and resolves the
    /// exact POI per stop where possible.
    ///
    /// Returns one annotation per input stop; an empty input yields an
    /// empty output.
    pub fn annotate_stops(&self, stop_centers: &[Point]) -> Vec<StopAnnotation> {
        if stop_centers.is_empty() {
            return Vec::new();
        }
        let b: Vec<Vec<f64>> = stop_centers
            .iter()
            .map(|&c| {
                let row = if self.params.discretized {
                    self.model.observe_discretized(c)
                } else {
                    self.model.observe_exact(c)
                };
                row.to_vec()
            })
            .collect();
        let (path, _) = self.hmm.viterbi(&b).expect("rows are CATEGORY_COUNT wide");
        // one kNN heap for the whole stop sequence: POI resolution then
        // performs no per-stop allocation
        let mut scratch = PoiLookupScratch::new();
        path.iter()
            .zip(stop_centers)
            .map(|(&state, &center)| {
                let category = PoiCategory::ALL[state];
                let poi = self
                    .model
                    .nearest_of_category_with(&mut scratch, &self.pois, center, category)
                    .map(|p| PlaceRef::new(PlaceKind::Point, p.id, p.name.clone()));
                StopAnnotation { category, poi }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::Poi;

    /// Controlled scene: Feedings cluster at x=200, ItemSale cluster at
    /// x=800, both at y=500.
    fn scene() -> (PoiSet, Rect) {
        let bounds = Rect::new(0.0, 0.0, 1_000.0, 1_000.0);
        let mut pois = Vec::new();
        for i in 0..12 {
            pois.push(Poi {
                id: i,
                point: Point::new(200.0 + (i % 4) as f64 * 8.0, 500.0 + (i / 4) as f64 * 8.0),
                category: PoiCategory::Feedings,
                name: format!("cafe {i}"),
            });
        }
        for i in 12..24 {
            pois.push(Poi {
                id: i,
                point: Point::new(
                    800.0 + (i % 4) as f64 * 8.0,
                    500.0 + ((i - 12) / 4) as f64 * 8.0,
                ),
                category: PoiCategory::ItemSale,
                name: format!("shop {i}"),
            });
        }
        (PoiSet::new(pois), bounds)
    }

    #[test]
    fn annotates_stops_with_dominant_local_category() {
        let (pois, bounds) = scene();
        let ann = PointAnnotator::new(&pois, bounds, PointParams::default()).unwrap();
        let stops = vec![Point::new(205.0, 505.0), Point::new(805.0, 505.0)];
        let out = ann.annotate_stops(&stops);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].category, PoiCategory::Feedings);
        assert_eq!(out[1].category, PoiCategory::ItemSale);
        // exact POI resolved
        assert!(out[0].poi.as_ref().unwrap().label.contains("cafe"));
        assert!(out[1].poi.as_ref().unwrap().label.contains("shop"));
        assert_eq!(out[0].poi.as_ref().unwrap().kind, PlaceKind::Point);
    }

    #[test]
    fn exact_and_discretized_agree_on_clear_scenes() {
        let (pois, bounds) = scene();
        let stops = vec![Point::new(210.0, 500.0), Point::new(790.0, 512.0)];
        let a = PointAnnotator::new(&pois, bounds, PointParams::default())
            .unwrap()
            .annotate_stops(&stops);
        let b = PointAnnotator::new(
            &pois,
            bounds,
            PointParams {
                discretized: false,
                ..PointParams::default()
            },
        )
        .unwrap()
        .annotate_stops(&stops);
        assert_eq!(
            a.iter().map(|s| s.category).collect::<Vec<_>>(),
            b.iter().map(|s| s.category).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_stop_sequence() {
        let (pois, bounds) = scene();
        let ann = PointAnnotator::new(&pois, bounds, PointParams::default()).unwrap();
        assert!(ann.annotate_stops(&[]).is_empty());
    }

    #[test]
    fn empty_poi_set_is_an_error() {
        let r = PointAnnotator::new(
            &PoiSet::default(),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            PointParams::default(),
        );
        assert_eq!(r.err(), Some(SemitriError::NoPoiData));
    }

    #[test]
    fn sticky_transitions_stabilize_ambiguous_middle_stop() {
        // stops: clear Feedings, ambiguous midpoint, clear Feedings —
        // sequence context should label all three Feedings even though the
        // midpoint alone is a coin flip
        let (pois, bounds) = scene();
        let ann = PointAnnotator::new(&pois, bounds, PointParams::default()).unwrap();
        let stops = vec![
            Point::new(205.0, 505.0),
            Point::new(500.0, 505.0), // desert midpoint: floor row
            Point::new(210.0, 500.0),
        ];
        let out = ann.annotate_stops(&stops);
        assert_eq!(out[0].category, PoiCategory::Feedings);
        assert_eq!(out[2].category, PoiCategory::Feedings);
        // middle has no local evidence: self-transition keeps it Feedings
        assert_eq!(out[1].category, PoiCategory::Feedings);
        assert!(out[1].poi.is_none(), "no POI resolvable in the desert");
    }

    #[test]
    fn custom_transitions_override() {
        let (pois, bounds) = scene();
        // transitions that forbid staying in Feedings make the second
        // Feedings stop switch to the next-best explanation
        let mut a = Hmm::default_transitions(5);
        let f = PoiCategory::Feedings.ordinal();
        for (j, p) in a[f].iter_mut().enumerate() {
            *p = if j == f { 0.0 } else { 0.25 };
        }
        let ann = PointAnnotator::new(&pois, bounds, PointParams::default())
            .unwrap()
            .with_transitions(&a)
            .unwrap();
        let stops = vec![Point::new(205.0, 505.0), Point::new(205.0, 505.0)];
        let out = ann.annotate_stops(&stops);
        assert_eq!(out[0].category, PoiCategory::Feedings);
        assert_ne!(out[1].category, PoiCategory::Feedings);
    }
}
