//! Hidden Markov model with log-space Viterbi decoding (paper §4.3,
//! Algorithm 3).
//!
//! The model is dimension-generic (the Milan taxonomy has 5 categories,
//! but nothing below depends on that) and works entirely in log space:
//! the paper's recursion `δ_{t+1}(j) = max_i{δ_t(i) A_ij} · B_j(o_{t+1})`
//! underflows after a few dozen stops in linear space.

use crate::error::SemitriError;

/// A discrete HMM `λ = (π, A, B)` with `n` hidden states. `B` is supplied
/// per observation as a row of (unnormalized) likelihoods, so any
/// observation model plugs in.
#[derive(Debug, Clone)]
pub struct Hmm {
    log_pi: Vec<f64>,
    log_a: Vec<f64>, // n × n, row-major: log Pr(j | i)
    n: usize,
}

/// Floor applied to zero probabilities before taking logs, so impossible
/// transitions stay effectively impossible without producing `-inf - -inf`
/// arithmetic.
const LOG_FLOOR: f64 = -1e12;

fn safe_ln(p: f64) -> f64 {
    if p > 0.0 {
        p.ln()
    } else {
        LOG_FLOOR
    }
}

impl Hmm {
    /// Builds a model from linear-space `π` and `A` (rows of `A` are
    /// per-state transition distributions).
    ///
    /// # Errors
    /// Returns [`SemitriError::HmmDimensionMismatch`] when `A` is not
    /// `n × n` for `n = π.len()`, or `n == 0`.
    pub fn new(pi: &[f64], a: &[Vec<f64>]) -> Result<Self, SemitriError> {
        let n = pi.len();
        if n == 0 {
            return Err(SemitriError::HmmDimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        if a.len() != n || a.iter().any(|row| row.len() != n) {
            return Err(SemitriError::HmmDimensionMismatch {
                expected: n,
                got: a.len(),
            });
        }
        let log_pi = pi.iter().map(|&p| safe_ln(p)).collect();
        let mut log_a = Vec::with_capacity(n * n);
        for row in a {
            for &p in row {
                log_a.push(safe_ln(p));
            }
        }
        Ok(Self { log_pi, log_a, n })
    }

    /// Number of hidden states.
    pub fn state_count(&self) -> usize {
        self.n
    }

    /// The paper's Fig. 6 default transition matrix generalized to `n`
    /// states: strong self-transition (0.8) with the remainder spread
    /// uniformly, and a weakly-sticky last state (the "unknown" category:
    /// 0.15 toward every named state, 0.4 self).
    #[allow(clippy::needless_range_loop)]
    pub fn default_transitions(n: usize) -> Vec<Vec<f64>> {
        assert!(n >= 2, "need at least two states");
        let mut a = vec![vec![0.0; n]; n];
        let off = 0.2 / (n - 1) as f64;
        for (i, row) in a.iter_mut().enumerate().take(n - 1) {
            for (j, p) in row.iter_mut().enumerate() {
                *p = if i == j { 0.8 } else { off };
            }
        }
        // last state = unknown: likely to leave
        let leave = 0.6 / (n - 1) as f64;
        for j in 0..n {
            a[n - 1][j] = if j == n - 1 { 0.4 } else { leave };
        }
        a
    }

    /// Viterbi decoding (Algorithm 3): the most probable hidden-state
    /// sequence for an observation sequence given as per-step likelihood
    /// rows `b[t][i] = Pr(o_t | state i)` (linear space, unnormalized
    /// allowed). Returns the state indexes, plus the log-probability of the
    /// best path.
    ///
    /// # Errors
    /// Returns [`SemitriError::HmmDimensionMismatch`] if any row's length
    /// differs from the state count. An empty observation sequence yields
    /// an empty path with probability 0 (log 0.0).
    pub fn viterbi(&self, b: &[Vec<f64>]) -> Result<(Vec<usize>, f64), SemitriError> {
        for row in b {
            if row.len() != self.n {
                return Err(SemitriError::HmmDimensionMismatch {
                    expected: self.n,
                    got: row.len(),
                });
            }
        }
        let t_len = b.len();
        if t_len == 0 {
            return Ok((Vec::new(), 0.0));
        }
        let n = self.n;
        // initialization: δ_1(i) = π_i B_i(o_1); ψ_1(i) = 0
        let mut delta: Vec<f64> = (0..n).map(|i| self.log_pi[i] + safe_ln(b[0][i])).collect();
        let mut psi = vec![vec![0usize; n]; t_len];
        let mut next = vec![0.0f64; n];
        // recursion: δ_t(j) = max_i[δ_{t-1}(i) A_ij] · B_j(o_t)
        // (explicit i/j indices mirror the paper's A_ij notation)
        #[allow(clippy::needless_range_loop)]
        for t in 1..t_len {
            for j in 0..n {
                let mut best_i = 0;
                let mut best = f64::NEG_INFINITY;
                for i in 0..n {
                    let v = delta[i] + self.log_a[i * n + j];
                    if v > best {
                        best = v;
                        best_i = i;
                    }
                }
                next[j] = best + safe_ln(b[t][j]);
                psi[t][j] = best_i;
            }
            std::mem::swap(&mut delta, &mut next);
        }
        // termination + backtracking
        let (mut q, &p_star) = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("n >= 1");
        let mut path = vec![0usize; t_len];
        path[t_len - 1] = q;
        for t in (1..t_len).rev() {
            q = psi[t][q];
            path[t - 1] = q;
        }
        Ok((path, p_star))
    }

    /// Forward-filtering initialization: `α_1(i) = π_i B_i(o_1)` in log
    /// space. Used by the streaming annotator for causal (online) stop
    /// annotation.
    ///
    /// # Errors
    /// Returns [`SemitriError::HmmDimensionMismatch`] on a wrong-size row.
    pub fn forward_init(&self, b_row: &[f64]) -> Result<Vec<f64>, SemitriError> {
        if b_row.len() != self.n {
            return Err(SemitriError::HmmDimensionMismatch {
                expected: self.n,
                got: b_row.len(),
            });
        }
        Ok((0..self.n)
            .map(|i| self.log_pi[i] + safe_ln(b_row[i]))
            .collect())
    }

    /// One forward-filtering step:
    /// `α_{t+1}(j) = [Σ_i α_t(i) A_ij] · B_j(o_{t+1})`, computed with
    /// log-sum-exp for stability.
    ///
    /// # Errors
    /// Returns [`SemitriError::HmmDimensionMismatch`] on wrong-size inputs.
    #[allow(clippy::needless_range_loop)] // explicit i/j mirror α_t(i) A_ij
    pub fn forward_step(&self, prev: &[f64], b_row: &[f64]) -> Result<Vec<f64>, SemitriError> {
        if prev.len() != self.n || b_row.len() != self.n {
            return Err(SemitriError::HmmDimensionMismatch {
                expected: self.n,
                got: prev.len().min(b_row.len()),
            });
        }
        let n = self.n;
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            // log-sum-exp over i of prev[i] + log A_ij
            let mut max = f64::NEG_INFINITY;
            for i in 0..n {
                max = max.max(prev[i] + self.log_a[i * n + j]);
            }
            if max == f64::NEG_INFINITY {
                // every predecessor is impossible (callers may mask dead
                // states with -inf): the state stays impossible. Without
                // this short-circuit the normalization below evaluates
                // `-inf - -inf = NaN`, poisoning every later step.
                out.push(f64::NEG_INFINITY);
                continue;
            }
            let sum: f64 = (0..n)
                .map(|i| (prev[i] + self.log_a[i * n + j] - max).exp())
                .sum();
            out.push(max + sum.ln() + safe_ln(b_row[j]));
        }
        Ok(out)
    }

    /// Brute-force most-probable path by enumerating every state sequence.
    /// Exponential; only for cross-checking Viterbi in tests.
    #[doc(hidden)]
    pub fn brute_force(&self, b: &[Vec<f64>]) -> Option<(Vec<usize>, f64)> {
        let t_len = b.len();
        if t_len == 0 {
            return Some((Vec::new(), 0.0));
        }
        let n = self.n;
        let total = n.checked_pow(t_len as u32)?;
        let mut best: Option<(Vec<usize>, f64)> = None;
        for code in 0..total {
            let mut seq = Vec::with_capacity(t_len);
            let mut c = code;
            for _ in 0..t_len {
                seq.push(c % n);
                c /= n;
            }
            let mut lp = self.log_pi[seq[0]] + safe_ln(b[0][seq[0]]);
            for t in 1..t_len {
                lp += self.log_a[seq[t - 1] * n + seq[t]] + safe_ln(b[t][seq[t]]);
            }
            if best.as_ref().is_none_or(|(_, bp)| lp > *bp) {
                best = Some((seq, lp));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Hmm {
        // classic weather model
        Hmm::new(&[0.6, 0.4], &[vec![0.7, 0.3], vec![0.4, 0.6]]).unwrap()
    }

    #[test]
    fn dimensions_validated() {
        assert!(Hmm::new(&[], &[]).is_err());
        assert!(Hmm::new(&[1.0], &[vec![1.0, 0.0]]).is_err());
        assert!(Hmm::new(&[0.5, 0.5], &[vec![1.0, 0.0]]).is_err());
        assert!(two_state().viterbi(&[vec![0.5]]).is_err());
    }

    #[test]
    fn empty_observation_sequence() {
        let (path, lp) = two_state().viterbi(&[]).unwrap();
        assert!(path.is_empty());
        assert_eq!(lp, 0.0);
    }

    #[test]
    fn single_observation_picks_map_state() {
        let hmm = two_state();
        // observation strongly favors state 1
        let (path, _) = hmm.viterbi(&[vec![0.1, 0.9]]).unwrap();
        assert_eq!(path, vec![1]);
        // but a strong prior can override a weak likelihood
        let (path, _) = hmm.viterbi(&[vec![0.5, 0.51]]).unwrap();
        assert_eq!(path, vec![0]); // π favors state 0 (0.6 · 0.5 > 0.4 · 0.51)
    }

    #[test]
    fn sticky_transitions_bridge_weak_evidence() {
        // state 0 sticky; a single weak contrary observation in the middle
        // should not flip the path
        let hmm = Hmm::new(&[0.5, 0.5], &[vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let b = vec![
            vec![0.9, 0.1],
            vec![0.45, 0.55], // slightly favors 1
            vec![0.9, 0.1],
        ];
        let (path, _) = hmm.viterbi(&b).unwrap();
        assert_eq!(path, vec![0, 0, 0]);
    }

    #[test]
    fn viterbi_matches_brute_force_on_random_instances() {
        // deterministic LCG random instances, 3 states, lengths 1..=6
        let mut state = 0xfeed_f00du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64).max(1e-3)
        };
        for trial in 0..30 {
            let n = 3;
            let pi: Vec<f64> = (0..n).map(|_| next()).collect();
            let a: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let hmm = Hmm::new(&pi, &a).unwrap();
            let t_len = 1 + trial % 6;
            let b: Vec<Vec<f64>> = (0..t_len)
                .map(|_| (0..n).map(|_| next()).collect())
                .collect();
            let (vp, vlp) = hmm.viterbi(&b).unwrap();
            let (bp, blp) = hmm.brute_force(&b).unwrap();
            assert!(
                (vlp - blp).abs() < 1e-9,
                "trial {trial}: viterbi {vlp} vs brute {blp}"
            );
            assert_eq!(vp, bp, "trial {trial}");
        }
    }

    #[test]
    fn impossible_transition_is_never_taken() {
        // state 1 unreachable from state 0 and vice versa; observations
        // alternate preference, but the path must stay in one state
        let hmm = Hmm::new(&[0.5, 0.5], &[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let b = vec![vec![0.9, 0.1], vec![0.1, 0.9], vec![0.9, 0.1]];
        let (path, _) = hmm.viterbi(&b).unwrap();
        assert!(path == vec![0, 0, 0] || path == vec![1, 1, 1]);
    }

    #[test]
    fn long_sequence_does_not_underflow() {
        let hmm = two_state();
        let b: Vec<Vec<f64>> = (0..10_000).map(|_| vec![1e-30, 2e-30]).collect();
        let (path, lp) = hmm.viterbi(&b).unwrap();
        assert_eq!(path.len(), 10_000);
        assert!(lp.is_finite());
        assert!(path.iter().all(|&s| s == 1));
    }

    #[test]
    fn forward_filtering_tracks_strong_evidence() {
        let hmm = two_state();
        let a1 = hmm.forward_init(&[0.9, 0.1]).unwrap();
        assert!(a1[0] > a1[1]);
        // strong contrary evidence flips the filtered state
        let a2 = hmm.forward_step(&a1, &[0.01, 0.99]).unwrap();
        assert!(a2[1] > a2[0]);
        // forward probabilities decrease monotonically (they are joint
        // probabilities of a growing observation prefix)
        assert!(
            a2.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                <= a1.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
    }

    #[test]
    fn forward_step_with_all_impossible_predecessors_stays_impossible() {
        // absorbing-state chain: each state only transitions to itself, so
        // a forward vector whose states are all masked to -inf (the
        // standard "impossible prefix" encoding) has no live predecessor
        // for any successor state. Pre-fix, max stayed NEG_INFINITY and
        // `-inf - -inf` produced NaN, which then poisoned every later step.
        let hmm = Hmm::new(&[0.5, 0.5], &[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let dead = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        let a1 = hmm.forward_step(&dead, &[0.9, 0.1]).unwrap();
        assert!(a1.iter().all(|v| !v.is_nan()), "NaN leaked: {a1:?}");
        assert!(a1.iter().all(|&v| v == f64::NEG_INFINITY), "{a1:?}");
        // and the impossibility propagates cleanly instead of as NaN
        let a2 = hmm.forward_step(&a1, &[0.5, 0.5]).unwrap();
        assert!(a2.iter().all(|&v| v == f64::NEG_INFINITY), "{a2:?}");
    }

    #[test]
    fn forward_step_with_one_live_predecessor_is_unaffected() {
        // masking only one state must keep the other's filtering exact
        let hmm = Hmm::new(&[0.5, 0.5], &[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let prev = vec![(0.5f64).ln(), f64::NEG_INFINITY];
        let next = hmm.forward_step(&prev, &[0.8, 0.2]).unwrap();
        assert!(next.iter().all(|v| !v.is_nan()), "{next:?}");
        // state 0: alpha = 0.5 * 1.0 * 0.8
        assert!((next[0] - (0.5f64 * 0.8).ln()).abs() < 1e-9, "{next:?}");
        // state 1 is only reachable from the masked state (up to the log
        // floor on the zero transition), so it stays effectively impossible
        assert!(next[1] < -1e11, "{next:?}");
    }

    #[test]
    fn forward_dimension_checks() {
        let hmm = two_state();
        assert!(hmm.forward_init(&[0.5]).is_err());
        assert!(hmm.forward_step(&[0.0, 0.0], &[0.5]).is_err());
        assert!(hmm.forward_step(&[0.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn default_transitions_shape() {
        let a = Hmm::default_transitions(5);
        assert_eq!(a.len(), 5);
        for (i, row) in a.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
        assert_eq!(a[0][0], 0.8);
        assert_eq!(a[4][4], 0.4);
        assert_eq!(a[4][0], 0.15);
        assert_eq!(a[0][1], 0.05);
    }
}
