//! The POI observation model (paper §4.3, Lemma 1).
//!
//! `Pr(o | C_i)` — the probability of seeing a stop `o` given the mover's
//! interest in category `C_i` — is, by Lemma 1, proportional to the sum of
//! the per-POI probabilities of that category, each POI modeled as a 2-D
//! isotropic Gaussian centered at its position with category-specific
//! spread σ_c.
//!
//! Two evaluation paths are provided, matching the paper's efficiency
//! discussion:
//!
//! * **exact** — sum the Gaussians of the POIs neighboring the stop
//!   center;
//! * **discretized** — the area is divided into grid cells and
//!   `Pr(grid_jk | C_i)` is precomputed per cell; a stop reads the row of
//!   its center's cell. Orders of magnitude faster for repeated queries,
//!   at a quantization cost measured by the ablation bench.

use semitri_data::{Poi, PoiCategory, PoiSet};
use semitri_geo::{Point, Rect};
use semitri_index::{
    CellOracle, FrozenNearestScratch, FrozenRStarTree, GridIndex, IndexMode, NearestScratch,
    OracleMode, RStarTree,
};

/// Number of POI categories (the Milan taxonomy of Fig. 5).
pub const CATEGORY_COUNT: usize = 5;

/// One indexed POI: position, id, slot in the source `PoiSet`, category.
pub type PoiItem = (Point, u64, u32, PoiCategory);

/// The POI-resolution backend: a point R\*-tree queried by best-first kNN
/// with a category-filtered distance. Built once, read once per stop, so
/// the frozen snapshot is the default.
#[derive(Debug, Clone)]
enum PoiIndex {
    Dynamic(RStarTree<PoiItem>),
    Frozen(Box<FrozenRStarTree<PoiItem>>),
}

/// Reusable kNN heap storage for [`PoiObservationModel::nearest_of_category_with`]
/// (only the active backend's buffer ever warms up).
#[derive(Debug, Default)]
pub(crate) struct PoiLookupScratch<'t> {
    dynamic: NearestScratch<'t, PoiItem>,
    frozen: FrozenNearestScratch,
}

impl PoiLookupScratch<'_> {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// The observation model over a POI source.
#[derive(Debug, Clone)]
pub struct PoiObservationModel {
    /// Grid items carry `(poi id, position in the source `PoiSet`,
    /// category)`; the stored position makes resolving a winning POI O(1)
    /// instead of a linear scan over the whole set.
    grid: GridIndex<(u64, u32, PoiCategory)>,
    /// R\*-tree over the same POIs, used for the per-stop nearest-POI
    /// resolution via best-first kNN (frozen by default).
    lookup: PoiIndex,
    /// Precomputed per-cell nearest-POI shortlists (the default): every POI
    /// within `neighbor_radius` of any point of a cell is in that cell's
    /// slab, so a stop's category argmin scans a short list instead of
    /// walking the kNN heap. Exact-distance ties (and stops beyond the
    /// precompute margin) fall back to the tree so results stay bitwise
    /// identical to the heap path.
    oracle: Option<CellOracle<PoiItem>>,
    /// Precomputed `Pr(grid_jk | C_i)` rows, one per grid cell
    /// (unnormalized likelihoods; Viterbi only needs proportionality).
    cell_rows: Vec<[f64; CATEGORY_COUNT]>,
    /// Radius within which neighboring POIs contribute to a stop.
    neighbor_radius: f64,
}

/// Likelihood floor so a category with no nearby POI stays possible but
/// maximally unlikely (keeps Viterbi paths finite even in POI deserts).
const FLOOR: f64 = 1e-12;

impl PoiObservationModel {
    /// Builds the model: indexes the POIs into a grid of `cell_size` meters
    /// and precomputes the discretized per-cell likelihood rows using the
    /// POIs within `neighbor_radius` of each cell center (the paper's
    /// "only neighboring POIs in that box").
    ///
    /// # Panics
    /// Panics if `pois` is empty or the parameters are non-positive.
    pub fn new(pois: &PoiSet, bounds: Rect, cell_size: f64, neighbor_radius: f64) -> Self {
        Self::with_index_mode(pois, bounds, cell_size, neighbor_radius, IndexMode::Frozen)
    }

    /// [`PoiObservationModel::new`] with an explicit backend for the
    /// nearest-POI resolution index (keeps the default shortlist oracle).
    pub fn with_index_mode(
        pois: &PoiSet,
        bounds: Rect,
        cell_size: f64,
        neighbor_radius: f64,
        mode: IndexMode,
    ) -> Self {
        Self::with_modes(
            pois,
            bounds,
            cell_size,
            neighbor_radius,
            mode,
            OracleMode::default(),
        )
    }

    /// [`PoiObservationModel::new`] with explicit index and oracle
    /// backends. The shortlist oracle is gathered from a frozen snapshot
    /// in both index modes (frozen and dynamic visit orders are
    /// bit-identical), with grid pitch and query radius both equal to
    /// `neighbor_radius`.
    pub fn with_modes(
        pois: &PoiSet,
        bounds: Rect,
        cell_size: f64,
        neighbor_radius: f64,
        mode: IndexMode,
        oracle_mode: OracleMode,
    ) -> Self {
        assert!(!pois.is_empty(), "observation model needs at least one POI");
        assert!(
            cell_size > 0.0 && neighbor_radius > 0.0,
            "parameters must be positive"
        );
        let mut grid = GridIndex::new(bounds, cell_size);
        for (i, p) in pois.pois().iter().enumerate() {
            grid.insert(p.point, (p.id, i as u32, p.category));
        }
        let tree = RStarTree::bulk_load(
            pois.pois()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    (
                        Rect::from_point(p.point),
                        (p.point, p.id, i as u32, p.category),
                    )
                })
                .collect(),
        );
        let build = |frozen: &FrozenRStarTree<PoiItem>| match oracle_mode {
            OracleMode::Precomputed { margin_m } => Some(CellOracle::build(
                frozen,
                neighbor_radius,
                neighbor_radius,
                margin_m,
            )),
            OracleMode::Disabled => None,
        };
        let (lookup, oracle) = match mode {
            IndexMode::Frozen => {
                let frozen = Box::new(tree.freeze());
                let oracle = build(&frozen);
                (PoiIndex::Frozen(frozen), oracle)
            }
            IndexMode::Dynamic => {
                let oracle = if matches!(oracle_mode, OracleMode::Disabled) {
                    None
                } else {
                    build(&tree.clone().freeze())
                };
                (PoiIndex::Dynamic(tree), oracle)
            }
        };
        let mut cell_rows = vec![[FLOOR; CATEGORY_COUNT]; grid.nx() * grid.ny()];
        for row in 0..grid.ny() {
            for col in 0..grid.nx() {
                let center = grid.cell_center(col, row);
                let idx = grid.cell_index(col, row);
                cell_rows[idx] = Self::gaussian_row(&grid, center, neighbor_radius);
            }
        }
        Self {
            grid,
            lookup,
            oracle,
            cell_rows,
            neighbor_radius,
        }
    }

    /// The precomputed shortlist oracle, when enabled (for memory
    /// reporting).
    pub fn oracle(&self) -> Option<&CellOracle<PoiItem>> {
        self.oracle.as_ref()
    }

    /// Lemma 1: per-category Gaussian sums at `p` over neighboring POIs.
    fn gaussian_row(
        grid: &GridIndex<(u64, u32, PoiCategory)>,
        p: Point,
        radius: f64,
    ) -> [f64; CATEGORY_COUNT] {
        let mut row = [FLOOR; CATEGORY_COUNT];
        grid.for_each_within(p, radius, |q, &(_, _, cat)| {
            let sigma = cat.sigma();
            let d_sq = p.distance_sq(q);
            // 2-D isotropic Gaussian density (the 1/2πσ² normalization
            // matters across categories because σ_c differs per category)
            let dens =
                (-d_sq / (2.0 * sigma * sigma)).exp() / (std::f64::consts::TAU * sigma * sigma);
            row[cat.ordinal()] += dens;
        });
        row
    }

    /// Exact observation row for a stop centered at `p`
    /// (`Pr(center_xy | C_i)`, unnormalized).
    pub fn observe_exact(&self, p: Point) -> [f64; CATEGORY_COUNT] {
        Self::gaussian_row(&self.grid, p, self.neighbor_radius)
    }

    /// Discretized observation row: the precomputed row of the grid cell
    /// containing `p` (`Pr(grid_jk | C_i)`).
    pub fn observe_discretized(&self, p: Point) -> [f64; CATEGORY_COUNT] {
        let (col, row) = self.grid.cell_of(p);
        self.cell_rows[self.grid.cell_index(col, row)]
    }

    /// The nearest POI of a given category within the neighbor radius of
    /// `p` — used to resolve "the exact shop the person stopped for" once
    /// the HMM picked the category.
    pub fn nearest_of_category<'p>(
        &self,
        pois: &'p PoiSet,
        p: Point,
        cat: PoiCategory,
    ) -> Option<&'p Poi> {
        self.nearest_of_category_with(&mut PoiLookupScratch::new(), pois, p, cat)
    }

    /// [`PoiObservationModel::nearest_of_category`] threading a reusable
    /// kNN heap, so a whole fleet's stop resolution performs no per-stop
    /// allocation.
    ///
    /// Best-first k=1 search with a category-filtered exact distance
    /// (`∞` for other categories — an admissible bound, since `∞`
    /// dominates every bbox estimate), then the neighbor-radius gate the
    /// paper's "neighboring POIs" definition requires.
    pub(crate) fn nearest_of_category_with<'t, 'p>(
        &'t self,
        scratch: &mut PoiLookupScratch<'t>,
        pois: &'p PoiSet,
        p: Point,
        cat: PoiCategory,
    ) -> Option<&'p Poi> {
        // Shortlist fast path. Agreement with the heap path, case by case:
        // the cell slab contains every POI within `neighbor_radius` of `p`
        // (the catchment window covers `p ± radius`, POI rects are
        // degenerate points, and L∞ ≤ L2), so (a) no in-radius POI of the
        // category in the slab ⇒ none exists ⇒ the heap's best is either
        // ∞-distance or gated out — `None` both ways; (b) a unique minimum
        // ⇒ it is the global category argmin (anything outside the slab is
        // strictly farther than the radius) — exactly the heap's answer;
        // (c) an exact-distance tie ⇒ the heap's traversal order picks the
        // winner, so fall through to the real heap for bitwise identity.
        if let Some(oracle) = &self.oracle {
            if let Some((_, items)) = oracle.candidates(p) {
                let mut best: Option<(f64, u64, u32)> = None;
                let mut tied = false;
                for &(q, id, idx, c) in items {
                    if c != cat {
                        continue;
                    }
                    let d = q.distance(p);
                    if d > self.neighbor_radius {
                        continue;
                    }
                    if let Some((bd, _, _)) = best {
                        if d < bd {
                            best = Some((d, id, idx));
                            tied = false;
                        } else if d == bd {
                            tied = true;
                        }
                    } else {
                        best = Some((d, id, idx));
                    }
                }
                match best {
                    None => return None,
                    Some((_, id, idx)) if !tied => {
                        return pois
                            .pois()
                            .get(idx as usize)
                            .filter(|poi| poi.id == id)
                            .or_else(|| pois.pois().iter().find(|poi| poi.id == id));
                    }
                    Some(_) => {}
                }
            }
        }
        let dist = |item: &PoiItem| {
            if item.3 == cat {
                item.0.distance(p)
            } else {
                f64::INFINITY
            }
        };
        let best = match &self.lookup {
            PoiIndex::Dynamic(t) => t
                .nearest_by_with(&mut scratch.dynamic, p, 1, dist)
                .first()
                .map(|&(d, &(_, id, idx, _))| (d, id, idx)),
            PoiIndex::Frozen(t) => t
                .nearest_by_with(&mut scratch.frozen, p, 1, dist)
                .first()
                .map(|&(d, &(_, id, idx, _))| (d, id, idx)),
        };
        let (d, id, idx) = best?;
        if d > self.neighbor_radius {
            return None;
        }
        // O(1) resolution via the indexed position; the id check (and the
        // linear fallback) keeps the lookup correct when the caller passes
        // a different `PoiSet` than the one the model was built from
        pois.pois()
            .get(idx as usize)
            .filter(|poi| poi.id == id)
            .or_else(|| pois.pois().iter().find(|poi| poi.id == id))
    }

    /// Number of grid cells of the discretization.
    pub fn cell_count(&self) -> usize {
        self.cell_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny controlled POI set: a Feedings cluster west, an ItemSale
    /// cluster east.
    fn two_cluster_set() -> (PoiSet, Rect) {
        let bounds = Rect::new(0.0, 0.0, 1_000.0, 1_000.0);
        let mut pois = Vec::new();
        for i in 0..10 {
            pois.push(Poi {
                id: i,
                point: Point::new(200.0 + (i % 3) as f64 * 10.0, 500.0 + (i / 3) as f64 * 10.0),
                category: PoiCategory::Feedings,
                name: format!("cafe {i}"),
            });
        }
        for i in 10..20 {
            pois.push(Poi {
                id: i,
                point: Point::new(
                    800.0 + (i % 3) as f64 * 10.0,
                    500.0 + ((i - 10) / 3) as f64 * 10.0,
                ),
                category: PoiCategory::ItemSale,
                name: format!("shop {i}"),
            });
        }
        (PoiSet::new(pois), bounds)
    }

    fn model() -> (PoiObservationModel, PoiSet) {
        let (pois, bounds) = two_cluster_set();
        let m = PoiObservationModel::new(&pois, bounds, 50.0, 150.0);
        (m, pois)
    }

    #[test]
    fn exact_row_peaks_at_the_right_category() {
        let (m, _) = model();
        let west = m.observe_exact(Point::new(210.0, 510.0));
        assert!(
            west[PoiCategory::Feedings.ordinal()] > west[PoiCategory::ItemSale.ordinal()] * 100.0
        );
        let east = m.observe_exact(Point::new(810.0, 510.0));
        assert!(
            east[PoiCategory::ItemSale.ordinal()] > east[PoiCategory::Feedings.ordinal()] * 100.0
        );
    }

    #[test]
    fn desert_row_is_floor() {
        let (m, _) = model();
        let row = m.observe_exact(Point::new(500.0, 50.0));
        assert!(row.iter().all(|&v| v == FLOOR));
    }

    #[test]
    fn discretized_approximates_exact() {
        let (m, _) = model();
        let p = Point::new(215.0, 505.0);
        let exact = m.observe_exact(p);
        let disc = m.observe_discretized(p);
        // the argmax category must agree even if magnitudes differ
        let arg = |row: &[f64; 5]| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(arg(&exact), arg(&disc));
    }

    #[test]
    fn more_pois_raise_the_likelihood() {
        // Lemma 1: the row value grows with the number of same-category
        // POIs in the neighborhood
        let bounds = Rect::new(0.0, 0.0, 500.0, 500.0);
        let few = PoiSet::new(vec![Poi {
            id: 0,
            point: Point::new(250.0, 250.0),
            category: PoiCategory::Services,
            name: "a".to_string(),
        }]);
        let many = PoiSet::new(
            (0..5)
                .map(|i| Poi {
                    id: i,
                    point: Point::new(250.0 + i as f64 * 5.0, 250.0),
                    category: PoiCategory::Services,
                    name: format!("b{i}"),
                })
                .collect(),
        );
        let m_few = PoiObservationModel::new(&few, bounds, 50.0, 100.0);
        let m_many = PoiObservationModel::new(&many, bounds, 50.0, 100.0);
        let p = Point::new(250.0, 250.0);
        assert!(
            m_many.observe_exact(p)[PoiCategory::Services.ordinal()]
                > m_few.observe_exact(p)[PoiCategory::Services.ordinal()]
        );
    }

    #[test]
    fn nearest_of_category_resolves_exact_poi() {
        let (m, pois) = model();
        let got = m
            .nearest_of_category(&pois, Point::new(203.0, 503.0), PoiCategory::Feedings)
            .expect("found");
        assert_eq!(got.id, 0);
        // no ItemSale near the west cluster
        assert!(m
            .nearest_of_category(&pois, Point::new(203.0, 503.0), PoiCategory::ItemSale)
            .is_none());
    }

    #[test]
    fn nearest_of_category_agrees_with_brute_force_on_both_backends() {
        let (pois, bounds) = two_cluster_set();
        let frozen = PoiObservationModel::new(&pois, bounds, 50.0, 150.0);
        let dynamic =
            PoiObservationModel::with_index_mode(&pois, bounds, 50.0, 150.0, IndexMode::Dynamic);
        let mut scratch_f = PoiLookupScratch::new();
        let mut scratch_d = PoiLookupScratch::new();
        for i in 0..40 {
            let p = Point::new((i * 37 % 100) as f64 * 10.0, (i * 53 % 100) as f64 * 10.0);
            for cat in [
                PoiCategory::Feedings,
                PoiCategory::ItemSale,
                PoiCategory::Services,
            ] {
                let brute = pois
                    .pois()
                    .iter()
                    .filter(|poi| poi.category == cat && poi.point.distance(p) <= 150.0)
                    .min_by(|a, b| {
                        a.point
                            .distance(p)
                            .partial_cmp(&b.point.distance(p))
                            .unwrap()
                    })
                    .map(|poi| poi.id);
                let f = frozen
                    .nearest_of_category_with(&mut scratch_f, &pois, p, cat)
                    .map(|poi| poi.id);
                let d = dynamic
                    .nearest_of_category_with(&mut scratch_d, &pois, p, cat)
                    .map(|poi| poi.id);
                assert_eq!(f, brute, "probe {i} cat {cat:?}");
                assert_eq!(d, brute, "probe {i} cat {cat:?}");
            }
        }
    }

    #[test]
    fn shortlist_oracle_agrees_with_the_heap_path_everywhere() {
        let (pois, bounds) = two_cluster_set();
        let with = PoiObservationModel::new(&pois, bounds, 50.0, 150.0);
        let without = PoiObservationModel::with_modes(
            &pois,
            bounds,
            50.0,
            150.0,
            IndexMode::Frozen,
            OracleMode::Disabled,
        );
        assert!(with.oracle().is_some());
        assert!(without.oracle().is_none());
        let mut s1 = PoiLookupScratch::new();
        let mut s2 = PoiLookupScratch::new();
        // probes across the bounds, beyond them (margin + fallback), and
        // exactly on POI positions
        let mut probes: Vec<Point> = (0..60)
            .map(|i| {
                Point::new(
                    (i * 37 % 120) as f64 * 12.0 - 100.0,
                    (i * 53 % 120) as f64 * 12.0 - 100.0,
                )
            })
            .collect();
        probes.extend(pois.pois().iter().map(|p| p.point));
        probes.push(Point::new(5_000.0, 5_000.0));
        for (i, &p) in probes.iter().enumerate() {
            for cat in [
                PoiCategory::Feedings,
                PoiCategory::ItemSale,
                PoiCategory::Services,
            ] {
                assert_eq!(
                    with.nearest_of_category_with(&mut s1, &pois, p, cat)
                        .map(|poi| poi.id),
                    without
                        .nearest_of_category_with(&mut s2, &pois, p, cat)
                        .map(|poi| poi.id),
                    "probe {i} cat {cat:?}"
                );
            }
        }
    }

    #[test]
    fn exact_distance_tie_falls_back_to_the_heap_order() {
        // two Feedings POIs equidistant from the probe: the shortlist must
        // not pick on its own — the heap's traversal order is the contract
        let bounds = Rect::new(0.0, 0.0, 400.0, 400.0);
        let pois = PoiSet::new(vec![
            Poi {
                id: 7,
                point: Point::new(100.0, 200.0),
                category: PoiCategory::Feedings,
                name: "left".to_string(),
            },
            Poi {
                id: 9,
                point: Point::new(300.0, 200.0),
                category: PoiCategory::Feedings,
                name: "right".to_string(),
            },
        ]);
        let p = Point::new(200.0, 200.0);
        let with = PoiObservationModel::new(&pois, bounds, 50.0, 150.0);
        let without = PoiObservationModel::with_modes(
            &pois,
            bounds,
            50.0,
            150.0,
            IndexMode::Frozen,
            OracleMode::Disabled,
        );
        assert_eq!(
            with.nearest_of_category(&pois, p, PoiCategory::Feedings)
                .map(|poi| poi.id),
            without
                .nearest_of_category(&pois, p, PoiCategory::Feedings)
                .map(|poi| poi.id),
        );
    }

    #[test]
    #[should_panic(expected = "at least one POI")]
    fn rejects_empty_poi_set() {
        PoiObservationModel::new(&PoiSet::default(), Rect::new(0.0, 0.0, 1.0, 1.0), 1.0, 1.0);
    }

    #[test]
    fn cell_count_matches_grid() {
        let (m, _) = model();
        assert_eq!(m.cell_count(), 20 * 20);
    }
}
