//! The preprocessing stage: degraded feeds in, segmentable records out.
//!
//! SeMiTri's claim is annotating *heterogeneous* trajectories (§1) —
//! feeds that differ in rate, noise and quality. Real feeds add faults on
//! top: NaN sentinels, out-of-order delivery, stuck clocks, duplicated
//! and conflicting fixes, teleports. This stage runs before stop/move
//! segmentation and repairs what it can, drops what it can't, and counts
//! everything it did into a [`CleaningReport`] so the
//! `stage.preprocess.*` metrics expose feed quality per deployment.
//!
//! The contract it establishes for the rest of the Trajectory
//! Computation Layer: records are finite, strictly increasing in time
//! and free of physically impossible jumps. Only one input is
//! irrecoverable — a non-empty feed whose every fix is non-finite —
//! and that surfaces as [`FeedError::NoValidRecords`], never a panic.

use crate::pipeline::CleanConfig;
use semitri_data::{FeedError, GpsRecord};
use semitri_episodes::clean::{
    gaussian_smooth, remove_speed_outliers_counted, OutlierCounts, COLOCATED_EPS_M,
};
use semitri_obs::CleaningReport;

/// Validates, repairs and cleans raw fixes ahead of segmentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Preprocessor {
    /// The cleaning parameters (speed bound, optional smoothing).
    pub clean: CleanConfig,
}

impl Preprocessor {
    /// Builds a preprocessor around `clean`.
    pub fn new(clean: CleanConfig) -> Self {
        Self { clean }
    }

    /// Runs the full pass: finiteness filter → stable time sort →
    /// same-instant dedup → speed-outlier removal → optional Gaussian
    /// smoothing.
    ///
    /// The returned report satisfies
    /// `input == kept + dropped_nonfinite + deduped + dropped_conflicts + dropped_outliers`
    /// — every input fix is accounted for exactly once (`reordered`
    /// counts repairs, not drops). Errors only when a non-empty feed has
    /// no finite fix at all.
    pub fn run(
        &self,
        records: &[GpsRecord],
    ) -> Result<(Vec<GpsRecord>, CleaningReport), FeedError> {
        let mut report = CleaningReport {
            input: records.len() as u64,
            ..CleaningReport::default()
        };

        // 1. drop non-finite fixes — geometry must never see NaN/∞
        let mut valid: Vec<GpsRecord> = records
            .iter()
            .copied()
            .filter(GpsRecord::is_finite)
            .collect();
        report.dropped_nonfinite = records.len() as u64 - valid.len() as u64;
        if valid.is_empty() && !records.is_empty() {
            return Err(FeedError::NoValidRecords {
                total: records.len(),
            });
        }

        // 2. repair ordering: count adjacent inversions (how out-of-order
        // the feed arrived), then stable-sort so equal timestamps keep
        // arrival order and the first-arrived fix wins the dedup below
        report.reordered = valid.windows(2).filter(|w| w[1].t.0 < w[0].t.0).count() as u64;
        if report.reordered > 0 {
            valid.sort_by(|a, b| a.t.0.partial_cmp(&b.t.0).expect("finite timestamps"));
        }

        // 3 + 4. same-instant dedup and the physical speed bound, fused
        // in the episodes-layer forward pass
        let mut counts = OutlierCounts::default();
        let mut cleaned =
            remove_speed_outliers_counted(&valid, self.clean.max_speed_mps, &mut counts);
        report.deduped = counts.deduped;
        report.dropped_conflicts = counts.conflicting;
        report.dropped_outliers = counts.outliers;

        // 5. optional smoothing (record-count preserving)
        if let Some(sigma) = self.clean.smooth_sigma_secs {
            cleaned = gaussian_smooth(&cleaned, sigma);
        }

        report.kept = cleaned.len() as u64;
        debug_assert_eq!(
            report.input,
            report.kept
                + report.dropped_nonfinite
                + report.deduped
                + report.dropped_conflicts
                + report.dropped_outliers,
            "cleaning report must account for every input fix"
        );
        debug_assert!(
            cleaned.windows(2).all(|w| w[1].t.0 > w[0].t.0),
            "preprocessed records must be strictly time-increasing"
        );
        Ok((cleaned, report))
    }
}

/// Re-exported so callers reasoning about the dedup threshold see one
/// constant, not two.
pub const COLOCATED_EPS: f64 = COLOCATED_EPS_M;

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::{Point, Timestamp};

    fn rec(x: f64, y: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, y), Timestamp(t))
    }

    fn pre() -> Preprocessor {
        Preprocessor::new(CleanConfig::default())
    }

    #[test]
    fn clean_feed_passes_through_untouched() {
        let recs: Vec<GpsRecord> = (0..20)
            .map(|i| rec(i as f64 * 5.0, 0.0, i as f64))
            .collect();
        let (out, report) = pre().run(&recs).unwrap();
        assert_eq!(out, recs);
        assert_eq!(
            report,
            CleaningReport {
                input: 20,
                kept: 20,
                ..CleaningReport::default()
            }
        );
    }

    #[test]
    fn degraded_feed_is_fully_accounted_for() {
        let recs = vec![
            rec(10.0, 0.0, 2.0), // out of order vs next
            rec(0.0, 0.0, 0.0),
            rec(f64::NAN, 0.0, 1.0), // non-finite
            rec(5.0, 0.0, 1.0),
            rec(5.2, 0.0, 1.0),     // co-located duplicate
            rec(900.0, 0.0, 1.0),   // conflicting same-instant fix
            rec(9_000.0, 0.0, 3.0), // teleport
            rec(15.0, 0.0, 4.0),
        ];
        let (out, report) = pre().run(&recs).unwrap();
        assert_eq!(report.input, 8);
        assert_eq!(report.dropped_nonfinite, 1);
        assert!(report.reordered >= 1);
        assert_eq!(report.deduped, 1);
        assert_eq!(report.dropped_conflicts, 1);
        assert_eq!(report.dropped_outliers, 1);
        assert_eq!(report.kept, 4);
        assert_eq!(report.kept as usize, out.len());
        assert_eq!(
            report.input,
            report.kept + report.dropped() + report.deduped
        );
        // output is strictly increasing in time
        assert!(out.windows(2).all(|w| w[1].t.0 > w[0].t.0));
    }

    #[test]
    fn all_nonfinite_feed_errors_instead_of_panicking() {
        let recs = vec![rec(f64::NAN, 0.0, 0.0), rec(0.0, f64::INFINITY, 1.0)];
        assert_eq!(
            pre().run(&recs).unwrap_err(),
            FeedError::NoValidRecords { total: 2 }
        );
        // empty is fine
        let (out, report) = pre().run(&[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(report, CleaningReport::default());
    }

    #[test]
    fn smoothing_preserves_the_report_invariant() {
        let p = Preprocessor::new(CleanConfig {
            smooth_sigma_secs: Some(2.0),
            ..CleanConfig::default()
        });
        let recs: Vec<GpsRecord> = (0..30)
            .map(|i| {
                rec(
                    i as f64 * 3.0,
                    if i % 2 == 0 { 2.0 } else { -2.0 },
                    i as f64,
                )
            })
            .collect();
        let (out, report) = p.run(&recs).unwrap();
        assert_eq!(out.len(), 30);
        assert_eq!(report.kept, 30);
        // smoothing attenuated the zig-zag
        assert!(out[10..20].iter().all(|r| r.point.y.abs() < 1.0));
    }

    #[test]
    fn stable_sort_keeps_first_arrival_on_ties() {
        // the feed interleaves a tie after an out-of-order fix; the
        // first-arrived t=5 fix must win the dedup
        let recs = vec![
            rec(50.0, 0.0, 9.0),
            rec(1.0, 0.0, 5.0),
            rec(1.3, 0.0, 5.0), // same instant, co-located → deduped
        ];
        let (out, report) = pre().run(&recs).unwrap();
        assert_eq!(out[0].point.x, 1.0);
        assert_eq!(report.deduped, 1);
        assert_eq!(report.reordered, 1);
    }
}
