//! Property-based tests of the annotation layers' invariants.

use proptest::prelude::*;
use semitri_core::line::baseline::{BaselineMetric, NearestSegmentMatcher};
use semitri_core::point::hmm::Hmm;
use semitri_core::{
    GlobalMapMatcher, IndexMode, KernelMode, MatchParams, MatchScratch, OracleMode,
    EXP_FAST_REL_TOL,
};
use semitri_data::road::RoadClass;
use semitri_data::{GpsRecord, RoadNetwork};
use semitri_geo::{Point, Timestamp};

/// A small random road network: a chain plus random chords (always
/// connected, no zero-length edges).
fn network_strategy() -> impl Strategy<Value = RoadNetwork> {
    network_strategy_with(3..15)
}

/// [`network_strategy`] with a caller-chosen node-count range — the city
/// density axis of the oracle sweep.
fn network_strategy_with(nodes: std::ops::Range<usize>) -> impl Strategy<Value = RoadNetwork> {
    let max_chord = nodes.end - 1;
    (
        proptest::collection::vec((0.0..1_000.0f64, 0.0..1_000.0f64), nodes),
        proptest::collection::vec((0usize..max_chord, 0usize..max_chord), 0..8),
    )
        .prop_map(|(mut nodes_xy, chords)| {
            // spread nodes so no two coincide
            for (i, p) in nodes_xy.iter_mut().enumerate() {
                p.0 += i as f64 * 37.0;
            }
            let nodes: Vec<Point> = nodes_xy.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let n = nodes.len();
            let mut edges = Vec::new();
            for i in 0..n - 1 {
                edges.push((
                    i as u32,
                    (i + 1) as u32,
                    RoadClass::Street,
                    false,
                    format!("chain {i}"),
                ));
            }
            for (a, b) in chords {
                let (a, b) = (a % n, b % n);
                if a != b && nodes[a].distance(nodes[b]) > 1.0 {
                    edges.push((
                        a as u32,
                        b as u32,
                        RoadClass::Street,
                        false,
                        "chord".to_string(),
                    ));
                }
            }
            RoadNetwork::new(nodes, edges)
        })
}

fn records_strategy() -> impl Strategy<Value = Vec<GpsRecord>> {
    proptest::collection::vec((0.0..1_600.0f64, 0.0..1_000.0f64), 1..40).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| GpsRecord::new(Point::new(x, y), Timestamp(i as f64 * 5.0)))
            .collect()
    })
}

/// A dense walk: short steps keep long runs of fixes inside one
/// candidate-radius grid cell, so the optimized matcher's last-cell
/// candidate cache is hit on almost every fix.
fn dense_track_strategy() -> impl Strategy<Value = Vec<GpsRecord>> {
    (
        (0.0..1_400.0f64, 0.0..900.0f64),
        proptest::collection::vec((-8.0..8.0f64, -8.0..8.0f64), 2..80),
    )
        .prop_map(|((x0, y0), steps)| {
            let (mut x, mut y) = (x0, y0);
            steps
                .into_iter()
                .enumerate()
                .map(|(i, (dx, dy))| {
                    x += dx;
                    y += dy;
                    GpsRecord::new(Point::new(x, y), Timestamp(i as f64 * 2.0))
                })
                .collect()
        })
}

/// The oracle shared by the matcher-identity properties: the optimized
/// scratch-arena kernel must reproduce the naive paper-literal path
/// *exactly* — same matched segment, snapped point and score within 1e-12
/// (they are bitwise-identical by construction; the epsilon only guards
/// against legitimate future reformulations).
fn assert_matches_naive(
    matcher: &GlobalMapMatcher,
    scratch: &mut MatchScratch,
    recs: &[GpsRecord],
) -> Result<(), TestCaseError> {
    let naive = matcher.match_records_naive(recs);
    let fast = matcher.match_records_with(scratch, recs);
    prop_assert_eq!(naive.len(), fast.len());
    for (i, (a, b)) in naive.iter().zip(&fast).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.segment, b.segment, "segment diverged at record {}", i);
                prop_assert!(
                    a.snapped.distance(b.snapped) <= 1e-12,
                    "snap diverged at record {}: {:?} vs {:?}",
                    i,
                    a.snapped,
                    b.snapped
                );
                prop_assert!(
                    (a.score - b.score).abs() <= 1e-12,
                    "score diverged at record {}: {} vs {}",
                    i,
                    a.score,
                    b.score
                );
            }
            (a, b) => prop_assert!(false, "coverage diverged at record {i}: {a:?} vs {b:?}"),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_matcher_is_result_identical_to_naive(
        net in network_strategy(),
        recs in records_strategy(),
        radius_m in 10.0..80.0f64,
        sigma_factor in 0.25..2.0f64,
        candidate_radius_m in 30.0..160.0f64,
    ) {
        let params = MatchParams {
            radius_m,
            sigma_factor,
            candidate_radius_m,
            ..MatchParams::default()
        };
        let matcher = GlobalMapMatcher::new(&net, params);
        let mut scratch = MatchScratch::new();
        assert_matches_naive(&matcher, &mut scratch, &recs)?;
    }

    #[test]
    fn cell_cached_path_agrees_with_uncached_on_dense_tracks(
        net in network_strategy(),
        tracks in proptest::collection::vec(dense_track_strategy(), 1..4),
    ) {
        // one scratch reused across every track: cache hits dominate
        // within a track, and stale state must never leak across tracks
        let matcher = GlobalMapMatcher::new(&net, MatchParams::default());
        let mut scratch = MatchScratch::new();
        for recs in &tracks {
            assert_matches_naive(&matcher, &mut scratch, recs)?;
        }
    }

    #[test]
    fn oracle_frozen_naive_triple_agreement(
        net in network_strategy_with(3..30),
        recs in records_strategy(),
        margin_m in 0.0..400.0f64,
        candidate_radius_m in 30.0..160.0f64,
    ) {
        // Sweep precompute margin × candidate cutoff × city density and
        // demand the full identity triple: the oracle slab path, the pure
        // frozen-tree path and the naive paper-literal path agree on the
        // per-fix candidate set AND its order, and on the final matched
        // path. Record coordinates reach 1600 m while margins stop at
        // 400 m, so the beyond-margin tree fallback is exercised too.
        let params = MatchParams { candidate_radius_m, ..MatchParams::default() };
        let with_oracle = GlobalMapMatcher::with_modes(
            &net, params, IndexMode::Frozen, OracleMode::Precomputed { margin_m },
        );
        let tree_only = GlobalMapMatcher::with_modes(
            &net, params, IndexMode::Frozen, OracleMode::Disabled,
        );
        for r in &recs {
            let cands = with_oracle.candidates_at(r.point);
            prop_assert_eq!(&cands, &with_oracle.candidates_at_via_tree(r.point));
            prop_assert_eq!(&cands, &tree_only.candidates_at(r.point));
        }
        // one scratch across both matchers: the fingerprint guard must
        // keep the differently-built oracles from aliasing
        let mut scratch = MatchScratch::new();
        assert_matches_naive(&with_oracle, &mut scratch, &recs)?;
        assert_matches_naive(&tree_only, &mut scratch, &recs)?;
        prop_assert_eq!(
            with_oracle.match_records(&recs),
            tree_only.match_records(&recs)
        );
    }

    #[test]
    fn fast_kernel_mode_scores_stay_within_tolerance(
        net in network_strategy(),
        recs in records_strategy(),
        radius_m in 10.0..80.0f64,
        sigma_factor in 0.25..2.0f64,
    ) {
        // KernelMode::Fast swaps the libm exp for exp_fast in the Eq. 4
        // weights only — candidate selection and the radius cut are
        // mode-independent, so coverage must agree record-for-record and
        // the winning global score may drift by at most O(EXP_FAST_REL_TOL):
        // scores are weighted means of local scores in [0, 1] whose weights
        // each carry <= EXP_FAST_REL_TOL relative error (the max over
        // candidates is 1-Lipschitz in that perturbation, so the bound
        // survives even an argmax flip between near-tied candidates).
        let exact = GlobalMapMatcher::new(&net, MatchParams {
            radius_m, sigma_factor, ..MatchParams::default()
        });
        let fast = GlobalMapMatcher::new(&net, MatchParams {
            radius_m, sigma_factor, kernel_mode: KernelMode::Fast,
            ..MatchParams::default()
        });
        let me = exact.match_records(&recs);
        let mf = fast.match_records(&recs);
        prop_assert_eq!(me.len(), mf.len());
        for (i, (a, b)) in me.iter().zip(&mf).enumerate() {
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert!(
                        (a.score - b.score).abs() <= 16.0 * EXP_FAST_REL_TOL,
                        "score drift at record {}: exact {} vs fast {}",
                        i, a.score, b.score
                    );
                }
                (a, b) => prop_assert!(false, "coverage diverged at record {i}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn global_matcher_output_invariants(net in network_strategy(), recs in records_strategy()) {
        let matcher = GlobalMapMatcher::new(&net, MatchParams::default());
        let matches = matcher.match_records(&recs);
        prop_assert_eq!(matches.len(), recs.len());
        for (r, m) in recs.iter().zip(&matches) {
            if let Some(m) = m {
                // matched segment exists and the snap lies on it
                let seg = &net.segment(m.segment).geometry;
                prop_assert!(seg.distance_to_point(m.snapped) < 1e-6);
                // the match respects the candidate radius
                let d = seg.distance_to_point(r.point);
                prop_assert!(d <= matcher.params().candidate_radius_m + 1e-6);
                // scores are normalized weighted means of local scores ≤ 1
                prop_assert!(m.score.is_finite());
                prop_assert!(m.score <= 1.0 + 1e-9);
                prop_assert!(m.score >= 0.0);
            }
        }
    }

    #[test]
    fn local_baseline_picks_the_true_nearest(net in network_strategy(), recs in records_strategy()) {
        let matcher = NearestSegmentMatcher::new(&net, BaselineMetric::PointSegment, 200.0);
        let matches = matcher.match_records(&recs);
        for (r, m) in recs.iter().zip(&matches) {
            // brute-force nearest within the radius
            let best = net
                .segments()
                .iter()
                .map(|s| (s.id, s.geometry.distance_to_point(r.point)))
                .filter(|&(_, d)| d <= 200.0)
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            match (m, best) {
                (Some(m), Some((_, best_d))) => {
                    let got_d = net.segment(m.segment).geometry.distance_to_point(r.point);
                    prop_assert!((got_d - best_d).abs() < 1e-9);
                }
                (None, None) => {}
                (got, want) => prop_assert!(false, "mismatch: got {got:?}, want {want:?}"),
            }
        }
    }

    #[test]
    fn viterbi_path_is_optimal_on_random_models(
        pi in proptest::collection::vec(0.01..1.0f64, 3),
        a_flat in proptest::collection::vec(0.01..1.0f64, 9),
        b_flat in proptest::collection::vec(0.01..1.0f64, 3..18),
    ) {
        let a: Vec<Vec<f64>> = a_flat.chunks(3).map(|c| c.to_vec()).collect();
        let hmm = Hmm::new(&pi, &a).unwrap();
        let b: Vec<Vec<f64>> = b_flat.chunks(3).filter(|c| c.len() == 3).map(|c| c.to_vec()).collect();
        prop_assume!(!b.is_empty());
        let (path, lp) = hmm.viterbi(&b).unwrap();
        let (bpath, blp) = hmm.brute_force(&b).unwrap();
        prop_assert!((lp - blp).abs() < 1e-9);
        prop_assert_eq!(path, bpath);
    }
}
