//! Property-based tests for the geometry kernel invariants.

use proptest::prelude::*;
use semitri_geo::{Point, Polygon, Polyline, Rect, Segment};

fn pt() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_is_symmetric(a in pt(), b in pt()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }

    #[test]
    fn distance_triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
    }

    #[test]
    fn rect_union_contains_both(
        a1 in pt(), a2 in pt(), b1 in pt(), b2 in pt()
    ) {
        let a = Rect::from_points(a1, a2);
        let b = Rect::from_points(b1, b2);
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn rect_intersection_area_bounded(
        a1 in pt(), a2 in pt(), b1 in pt(), b2 in pt()
    ) {
        let a = Rect::from_points(a1, a2);
        let b = Rect::from_points(b1, b2);
        let i = a.intersection_area(&b);
        prop_assert!(i >= 0.0);
        prop_assert!(i <= a.area() + 1e-6);
        prop_assert!(i <= b.area() + 1e-6);
        // intersects() consistent with a positive intersection area
        if i > 0.0 {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn rect_enlargement_nonnegative(
        a1 in pt(), a2 in pt(), b1 in pt(), b2 in pt()
    ) {
        let a = Rect::from_points(a1, a2);
        let b = Rect::from_points(b1, b2);
        prop_assert!(a.enlargement(&b) >= -1e-9);
    }

    #[test]
    fn eq1_distance_at_most_endpoint_distances(q in pt(), a in pt(), b in pt()) {
        let s = Segment::new(a, b);
        let d = s.distance_to_point(q);
        prop_assert!(d <= q.distance(a) + 1e-9);
        prop_assert!(d <= q.distance(b) + 1e-9);
        // Eq. 1 distance dominates the perpendicular distance
        prop_assert!(d + 1e-9 >= s.perpendicular_distance(q) - 1e-6);
    }

    #[test]
    fn eq1_closest_point_is_on_segment_bbox(q in pt(), a in pt(), b in pt()) {
        let s = Segment::new(a, b);
        let c = s.closest_point(q);
        prop_assert!(s.bbox().inflate(1e-9).contains_point(c));
    }

    #[test]
    fn segment_intersects_is_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    #[test]
    fn polyline_length_at_least_endpoint_distance(
        pts in proptest::collection::vec(pt(), 2..12)
    ) {
        let first = pts[0];
        let last = *pts.last().unwrap();
        let pl = Polyline::new(pts);
        prop_assert!(pl.length() + 1e-9 >= first.distance(last));
    }

    #[test]
    fn frechet_symmetric_and_nonnegative(
        a in proptest::collection::vec(pt(), 1..8),
        b in proptest::collection::vec(pt(), 1..8)
    ) {
        let pa = Polyline::new(a);
        let pb = Polyline::new(b);
        let dab = pa.frechet_distance(&pb);
        let dba = pb.frechet_distance(&pa);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
        // Fréchet dominates Hausdorff
        prop_assert!(dab + 1e-9 >= pa.hausdorff_distance(&pb));
    }

    #[test]
    fn polygon_contains_its_centroid_when_convex(
        cx in -1e3..1e3f64, cy in -1e3..1e3f64, r in 1.0..500.0f64, n in 3usize..16
    ) {
        let p = Polygon::regular(Point::new(cx, cy), r, n);
        prop_assert!(p.contains_point(p.centroid()));
        prop_assert!(p.bbox().contains_point(p.centroid()));
    }

    #[test]
    fn polygon_area_le_bbox_area(
        cx in -1e3..1e3f64, cy in -1e3..1e3f64, r in 1.0..500.0f64, n in 3usize..16
    ) {
        let p = Polygon::regular(Point::new(cx, cy), r, n);
        prop_assert!(p.area() <= p.bbox().area() + 1e-6);
    }

    #[test]
    fn resample_endpoints_fixed(
        pts in proptest::collection::vec(pt(), 2..10), step in 0.5..100.0f64
    ) {
        let pl = Polyline::new(pts);
        let rs = pl.resample(step);
        prop_assert_eq!(rs.vertices().first(), pl.vertices().first());
        prop_assert_eq!(rs.vertices().last(), pl.vertices().last());
    }
}
