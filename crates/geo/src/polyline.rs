//! Polylines: road center-lines and raw GPS tracks.

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;

/// A sequence of at least one vertex forming a chain of segments.
///
/// Used for road center-lines (before they are split into individual
/// [`Segment`]s for matching) and for geometric views of raw tracks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    vertices: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline from vertices (may be empty).
    pub fn new(vertices: Vec<Point>) -> Self {
        Self { vertices }
    }

    /// The vertices.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Appends a vertex.
    pub fn push(&mut self, p: Point) {
        self.vertices.push(p);
    }

    /// Iterator over the consecutive segments of the chain.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total chain length in meters.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Bounding rectangle of all vertices.
    pub fn bbox(&self) -> Rect {
        Rect::covering(self.vertices.iter().copied())
    }

    /// Minimum Equation-(1) distance from `q` to any segment of the chain.
    /// Returns `f64::INFINITY` for an empty polyline and the point distance
    /// for a single-vertex polyline.
    ///
    /// This is the per-candidate kernel of global map matching, so it takes
    /// one square root total (of the minimum squared distance) instead of
    /// one per chain segment; `sqrt` is monotone and correctly rounded, so
    /// the result is bit-identical to the naive per-segment formulation.
    #[inline]
    #[must_use]
    pub fn distance_to_point(&self, q: Point) -> f64 {
        match self.vertices.len() {
            0 => f64::INFINITY,
            1 => self.vertices[0].distance(q),
            _ => self
                .segments()
                .map(|s| s.distance_sq_to_point(q))
                .fold(f64::INFINITY, f64::min)
                .sqrt(),
        }
    }

    /// The point at curvilinear distance `d` from the start, clamped to the
    /// chain ends. Returns `None` for an empty polyline.
    pub fn point_at_distance(&self, d: f64) -> Option<Point> {
        let first = *self.vertices.first()?;
        if d <= 0.0 || self.vertices.len() == 1 {
            return Some(if d <= 0.0 {
                first
            } else {
                *self.vertices.last().expect("nonempty")
            });
        }
        let mut remaining = d;
        for seg in self.segments() {
            let len = seg.length();
            if remaining <= len {
                let t = if len == 0.0 { 0.0 } else { remaining / len };
                return Some(seg.point_at(t));
            }
            remaining -= len;
        }
        Some(*self.vertices.last().expect("nonempty"))
    }

    /// Resamples the chain at (approximately) even spacing `step`, always
    /// keeping the first and last vertex. Used by the trip simulator to turn
    /// routes into GPS samples.
    pub fn resample(&self, step: f64) -> Polyline {
        assert!(step > 0.0, "resample step must be positive");
        if self.vertices.len() < 2 {
            return self.clone();
        }
        let total = self.length();
        if total == 0.0 {
            return Polyline::new(vec![
                self.vertices[0],
                *self.vertices.last().expect("len>=2"),
            ]);
        }
        let n = (total / step).ceil() as usize;
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..n {
            let d = total * (i as f64) / (n as f64);
            out.push(self.point_at_distance(d).expect("nonempty"));
        }
        // pin the final vertex exactly (cumulative-length rounding would
        // otherwise land point_at_distance(total) epsilon short of it)
        out.push(*self.vertices.last().expect("len>=2"));
        Polyline::new(out)
    }

    /// Discrete Fréchet distance to `other` (Eiter–Mannila coupling
    /// distance). This is the classical curve-to-curve metric of geometric
    /// map matching, used here by baseline matchers and tests.
    ///
    /// Returns `f64::INFINITY` if either chain is empty. O(n·m) time,
    /// O(m) space.
    pub fn frechet_distance(&self, other: &Polyline) -> f64 {
        let p = &self.vertices;
        let q = &other.vertices;
        if p.is_empty() || q.is_empty() {
            return f64::INFINITY;
        }
        let m = q.len();
        let mut prev = vec![0.0f64; m];
        let mut cur = vec![0.0f64; m];
        for (i, &pi) in p.iter().enumerate() {
            for (j, &qj) in q.iter().enumerate() {
                let d = pi.distance(qj);
                cur[j] = if i == 0 && j == 0 {
                    d
                } else if i == 0 {
                    d.max(cur[j - 1])
                } else if j == 0 {
                    d.max(prev[0])
                } else {
                    d.max(prev[j].min(prev[j - 1]).min(cur[j - 1]))
                };
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[m - 1]
    }

    /// Douglas–Peucker simplification: the minimal vertex subset whose
    /// chain stays within `epsilon` meters of the original (Eq. 1
    /// point–segment distance). Keeps endpoints; used to condense stored
    /// move geometry (the paper's "condensed representation" concern).
    pub fn simplify(&self, epsilon: f64) -> Polyline {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        if self.vertices.len() < 3 {
            return self.clone();
        }
        let mut keep = vec![false; self.vertices.len()];
        keep[0] = true;
        *keep.last_mut().expect("nonempty") = true;
        let mut stack = vec![(0usize, self.vertices.len() - 1)];
        while let Some((lo, hi)) = stack.pop() {
            if hi <= lo + 1 {
                continue;
            }
            let chord = Segment::new(self.vertices[lo], self.vertices[hi]);
            let (mut worst, mut worst_d) = (lo, -1.0f64);
            for i in lo + 1..hi {
                let d = chord.distance_to_point(self.vertices[i]);
                if d > worst_d {
                    worst = i;
                    worst_d = d;
                }
            }
            if worst_d > epsilon {
                keep[worst] = true;
                stack.push((lo, worst));
                stack.push((worst, hi));
            }
        }
        Polyline::new(
            self.vertices
                .iter()
                .zip(&keep)
                .filter(|&(_, &k)| k)
                .map(|(&v, _)| v)
                .collect(),
        )
    }

    /// Directed Hausdorff distance from `self`'s vertices to the `other`
    /// chain (max over vertices of min distance to the chain).
    pub fn hausdorff_to(&self, other: &Polyline) -> f64 {
        self.vertices
            .iter()
            .map(|&v| other.distance_to_point(v))
            .fold(0.0, f64::max)
    }

    /// Symmetric Hausdorff distance.
    pub fn hausdorff_distance(&self, other: &Polyline) -> f64 {
        self.hausdorff_to(other).max(other.hausdorff_to(self))
    }
}

impl FromIterator<Point> for Polyline {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        Polyline::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_shape().length(), 20.0);
        assert_eq!(Polyline::default().length(), 0.0);
        assert_eq!(Polyline::new(vec![Point::ORIGIN]).length(), 0.0);
    }

    #[test]
    fn bbox_covers_vertices() {
        assert_eq!(l_shape().bbox(), Rect::new(0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn distance_picks_nearest_segment() {
        let pl = l_shape();
        assert_eq!(pl.distance_to_point(Point::new(5.0, 2.0)), 2.0);
        assert_eq!(pl.distance_to_point(Point::new(12.0, 5.0)), 2.0);
        // corner region: nearest is the shared vertex
        let d = pl.distance_to_point(Point::new(13.0, -4.0));
        assert_eq!(d, 5.0);
    }

    #[test]
    fn distance_for_empty_and_single() {
        assert_eq!(
            Polyline::default().distance_to_point(Point::ORIGIN),
            f64::INFINITY
        );
        let single = Polyline::new(vec![Point::new(3.0, 4.0)]);
        assert_eq!(single.distance_to_point(Point::ORIGIN), 5.0);
    }

    #[test]
    fn point_at_distance_walks_chain() {
        let pl = l_shape();
        assert_eq!(pl.point_at_distance(0.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(pl.point_at_distance(5.0), Some(Point::new(5.0, 0.0)));
        assert_eq!(pl.point_at_distance(15.0), Some(Point::new(10.0, 5.0)));
        assert_eq!(pl.point_at_distance(999.0), Some(Point::new(10.0, 10.0)));
        assert_eq!(pl.point_at_distance(-1.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(Polyline::default().point_at_distance(3.0), None);
    }

    #[test]
    fn resample_preserves_endpoints_and_length() {
        let pl = l_shape();
        let rs = pl.resample(3.0);
        assert_eq!(rs.vertices().first(), pl.vertices().first());
        assert_eq!(rs.vertices().last(), pl.vertices().last());
        // resampled chain length can only shrink (corners get cut)
        assert!(rs.length() <= pl.length() + 1e-9);
        assert!(rs.len() >= 7);
        // spacing roughly even
        for s in rs.segments() {
            assert!(s.length() <= 3.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resample_rejects_nonpositive_step() {
        l_shape().resample(0.0);
    }

    #[test]
    fn frechet_identical_is_zero() {
        let pl = l_shape();
        assert_eq!(pl.frechet_distance(&pl), 0.0);
    }

    #[test]
    fn frechet_parallel_offset() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(0.0, 3.0), Point::new(10.0, 3.0)]);
        assert_eq!(a.frechet_distance(&b), 3.0);
        assert_eq!(b.frechet_distance(&a), 3.0);
    }

    #[test]
    fn frechet_at_least_hausdorff() {
        let a = l_shape();
        let b = Polyline::new(vec![
            Point::new(0.0, 1.0),
            Point::new(9.0, 1.0),
            Point::new(9.0, 11.0),
        ]);
        assert!(a.frechet_distance(&b) + 1e-12 >= a.hausdorff_distance(&b));
    }

    #[test]
    fn frechet_empty_is_infinite() {
        assert_eq!(
            Polyline::default().frechet_distance(&l_shape()),
            f64::INFINITY
        );
    }

    #[test]
    fn simplify_collinear_chain_to_endpoints() {
        let pl = Polyline::new((0..20).map(|i| Point::new(i as f64, 0.0)).collect());
        let s = pl.simplify(0.1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.vertices()[0], Point::new(0.0, 0.0));
        assert_eq!(s.vertices()[1], Point::new(19.0, 0.0));
    }

    #[test]
    fn simplify_keeps_significant_corners() {
        let pl = l_shape();
        let s = pl.simplify(0.5);
        assert_eq!(s.len(), 3); // the corner survives
                                // result stays within epsilon of the original
        assert!(pl.hausdorff_distance(&s) <= 0.5 + 1e-9);
    }

    #[test]
    fn simplify_error_bound_holds() {
        // wavy chain: simplified chain must stay within epsilon
        let pl = Polyline::new(
            (0..50)
                .map(|i| Point::new(i as f64 * 4.0, ((i as f64) * 0.7).sin() * 3.0))
                .collect(),
        );
        for eps in [0.5, 1.0, 2.0, 5.0] {
            let s = pl.simplify(eps);
            assert!(s.len() <= pl.len());
            // every original vertex within eps of the simplified chain
            for &v in pl.vertices() {
                assert!(s.distance_to_point(v) <= eps + 1e-9, "eps {eps}");
            }
        }
    }

    #[test]
    fn simplify_degenerate_inputs() {
        assert_eq!(Polyline::default().simplify(1.0).len(), 0);
        let two = Polyline::new(vec![Point::ORIGIN, Point::new(1.0, 1.0)]);
        assert_eq!(two.simplify(1.0), two);
    }

    #[test]
    fn hausdorff_symmetric_wrapper() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)]);
        // every vertex of a lies on b, but b's far end is 10 away from a
        assert_eq!(a.hausdorff_to(&b), 0.0);
        assert_eq!(b.hausdorff_to(&a), 10.0);
        assert_eq!(a.hausdorff_distance(&b), 10.0);
    }
}
