//! WGS-84 ↔ local planar projection.
//!
//! SeMiTri's algorithms (spatial joins, point–segment distances, kernel
//! radii) are expressed in meters. Real datasets arrive in lon/lat, so each
//! deployment area gets a [`LocalProjection`] centered on the area of
//! interest. An equirectangular projection is accurate to well under 0.1%
//! for city-scale extents (tens of kilometers), which is far below GPS noise.

use crate::point::{GeoPoint, Point};
use crate::EARTH_RADIUS_M;

/// An equirectangular projection anchored at a reference geographic point.
///
/// `x = R · Δlon · cos(lat₀)`, `y = R · Δlat` — the standard local
/// east-north-up approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Creates a projection anchored at `origin` (maps to planar `(0, 0)`).
    ///
    /// # Panics
    /// Panics if `origin` is not a valid WGS-84 coordinate or lies at a pole
    /// (where the east–west scale degenerates).
    pub fn new(origin: GeoPoint) -> Self {
        assert!(origin.is_valid(), "projection origin must be valid lon/lat");
        let cos_lat0 = origin.lat.to_radians().cos();
        assert!(
            cos_lat0 > 1e-6,
            "projection origin too close to a pole: lat = {}",
            origin.lat
        );
        Self { origin, cos_lat0 }
    }

    /// The anchoring geographic point.
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects lon/lat to local meters.
    #[inline]
    pub fn to_local(&self, g: GeoPoint) -> Point {
        let dlon = (g.lon - self.origin.lon).to_radians();
        let dlat = (g.lat - self.origin.lat).to_radians();
        Point::new(EARTH_RADIUS_M * dlon * self.cos_lat0, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection: local meters back to lon/lat.
    #[inline]
    pub fn to_geo(&self, p: Point) -> GeoPoint {
        let dlon = p.x / (EARTH_RADIUS_M * self.cos_lat0);
        let dlat = p.y / EARTH_RADIUS_M;
        GeoPoint::new(
            self.origin.lon + dlon.to_degrees(),
            self.origin.lat + dlat.to_degrees(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::haversine_m;

    const LAUSANNE: GeoPoint = GeoPoint::new(6.6323, 46.5197);

    #[test]
    fn origin_maps_to_zero() {
        let proj = LocalProjection::new(LAUSANNE);
        let p = proj.to_local(LAUSANNE);
        assert!(p.x.abs() < 1e-9 && p.y.abs() < 1e-9);
    }

    #[test]
    fn roundtrip_is_exact() {
        let proj = LocalProjection::new(LAUSANNE);
        let g = GeoPoint::new(6.70, 46.48);
        let back = proj.to_geo(proj.to_local(g));
        assert!((back.lon - g.lon).abs() < 1e-12);
        assert!((back.lat - g.lat).abs() < 1e-12);
    }

    #[test]
    fn planar_distance_matches_haversine_city_scale() {
        let proj = LocalProjection::new(LAUSANNE);
        let a = GeoPoint::new(6.60, 46.50);
        let b = GeoPoint::new(6.68, 46.55);
        let planar = proj.to_local(a).distance(proj.to_local(b));
        let sphere = haversine_m(a, b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn north_is_positive_y_east_is_positive_x() {
        let proj = LocalProjection::new(LAUSANNE);
        let north = proj.to_local(GeoPoint::new(LAUSANNE.lon, LAUSANNE.lat + 0.01));
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
        let east = proj.to_local(GeoPoint::new(LAUSANNE.lon + 0.01, LAUSANNE.lat));
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn rejects_polar_origin() {
        LocalProjection::new(GeoPoint::new(0.0, 90.0));
    }

    #[test]
    #[should_panic(expected = "valid lon/lat")]
    fn rejects_invalid_origin() {
        LocalProjection::new(GeoPoint::new(999.0, 0.0));
    }
}
