//! Axis-aligned bounding rectangles.
//!
//! [`Rect`] is the spatial extent exchanged with the R\*-tree in
//! `semitri-index` and the extent the region annotation layer joins against
//! (the paper uses "the spatial bounding rectangle of the episode" for
//! move/stop joins, §4.1).

use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]` in meters.
///
/// A rectangle with `min > max` on either axis is *empty*; [`Rect::EMPTY`]
/// is the identity for [`Rect::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner x.
    pub min_x: f64,
    /// Lower-left corner y.
    pub min_y: f64,
    /// Upper-right corner x.
    pub max_x: f64,
    /// Upper-right corner y.
    pub max_y: f64,
}

impl Rect {
    /// The empty rectangle: identity element for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates a rectangle from corner coordinates. Corners are normalized so
    /// the result always has `min <= max` per axis.
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect {
            min_x: x1.min(x2),
            min_y: y1.min(y2),
            max_x: x1.max(x2),
            max_y: y1.max(y2),
        }
    }

    /// A degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// The smallest rectangle containing both endpoints.
    #[inline]
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Smallest rectangle covering every point of the iterator, or
    /// [`Rect::EMPTY`] for an empty iterator.
    pub fn covering<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut r = Rect::EMPTY;
        for p in points {
            r.expand_to(p);
        }
        r
    }

    /// `true` when no point lies inside (i.e. `min > max` on some axis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width along x; `0.0` when empty.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height along y; `0.0` when empty.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area in square meters; `0.0` when empty.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (the R\*-tree "margin" criterion).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point. Meaningless for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// `true` if `other` lies entirely inside `self` (boundary touching
    /// allowed). An empty `other` is contained in everything.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.min_x >= self.min_x
                && other.max_x <= self.max_x
                && other.min_y >= self.min_y
                && other.max_y <= self.max_y)
    }

    /// `true` if the rectangles share at least one point (closed-set
    /// semantics: touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Area of the intersection; `0.0` when disjoint.
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = self.max_x.min(other.max_x) - self.min_x.max(other.min_x);
        let h = self.max_y.min(other.max_y) - self.min_y.max(other.min_y);
        if w <= 0.0 || h <= 0.0 {
            0.0
        } else {
            w * h
        }
    }

    /// Smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows `self` in place to cover `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Returns a copy grown by `margin` meters on every side.
    ///
    /// Used by the map-matching layer to turn a point plus global-view radius
    /// `R` into a candidate-segment window.
    #[inline]
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Increase in area needed for `self` to also cover `other`
    /// (the R\*-tree ChooseSubtree criterion).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum Euclidean distance from `p` to the rectangle; `0.0` when `p`
    /// is inside. Used for kNN pruning.
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(r, Rect::new(1.0, 2.0, 5.0, 7.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 5.0);
    }

    #[test]
    fn empty_rect_properties() {
        let e = Rect::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.width(), 0.0);
        assert!(!e.intersects(&unit()));
        assert!(!unit().intersects(&e));
        assert!(unit().contains_rect(&e));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let r = unit();
        assert_eq!(r.union(&Rect::EMPTY), r);
        assert_eq!(Rect::EMPTY.union(&r), r);
    }

    #[test]
    fn covering_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 2.0),
        ];
        let r = Rect::covering(pts);
        assert_eq!(r, Rect::new(-2.0, 0.5, 3.0, 5.0));
        assert!(Rect::covering(std::iter::empty()).is_empty());
    }

    #[test]
    fn touching_edges_intersect() {
        let a = unit();
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = unit();
        let b = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert!(!b.intersects(&a));
    }

    #[test]
    fn containment() {
        let big = Rect::new(0.0, 0.0, 10.0, 10.0);
        let small = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.contains_rect(&big));
        assert!(big.contains_point(Point::new(0.0, 0.0)));
        assert!(!big.contains_point(Point::new(10.0001, 5.0)));
    }

    #[test]
    fn intersection_area_overlapping() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.intersection_area(&b), 4.0);
        assert_eq!(b.intersection_area(&a), 4.0);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let big = Rect::new(0.0, 0.0, 10.0, 10.0);
        let small = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert_eq!(big.enlargement(&small), 0.0);
        assert!(small.enlargement(&big) > 0.0);
    }

    #[test]
    fn distance_to_point_inside_and_outside() {
        let r = unit();
        assert_eq!(r.distance_to_point(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(2.0, 0.5)), 1.0);
        let d = r.distance_to_point(Point::new(4.0, 5.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inflate_grows_all_sides() {
        let r = unit().inflate(2.0);
        assert_eq!(r, Rect::new(-2.0, -2.0, 3.0, 3.0));
    }

    #[test]
    fn margin_is_half_perimeter() {
        assert_eq!(Rect::new(0.0, 0.0, 3.0, 4.0).margin(), 7.0);
    }
}
