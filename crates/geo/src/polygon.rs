//! Simple polygons used as free-form semantic regions (campus, park,
//! recreation facility — the paper's OpenStreetMap-sourced regions, §4.1).

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;

/// Distance within which a point counts as lying on the polygon boundary
/// (and therefore inside, per the subsumption predicate).
const BOUNDARY_EPS: f64 = 1e-9;

/// A simple polygon defined by one outer ring of vertices.
///
/// The ring is stored *unclosed* (first vertex is not repeated at the end);
/// the closing edge is implicit. Vertex order may be clockwise or
/// counter-clockwise; [`Polygon::area`] is always non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
    bbox: Rect,
}

impl Polygon {
    /// Creates a polygon from its outer ring.
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are supplied — smaller extents should
    /// use [`Rect`] or [`Point`].
    pub fn new(ring: Vec<Point>) -> Self {
        assert!(ring.len() >= 3, "polygon needs at least 3 vertices");
        let bbox = Rect::covering(ring.iter().copied());
        Self { ring, bbox }
    }

    /// An axis-aligned rectangle as a polygon (convenience for tests and
    /// landuse cells that need polygon semantics).
    pub fn from_rect(r: &Rect) -> Self {
        Polygon::new(vec![
            Point::new(r.min_x, r.min_y),
            Point::new(r.max_x, r.min_y),
            Point::new(r.max_x, r.max_y),
            Point::new(r.min_x, r.max_y),
        ])
    }

    /// A regular `n`-gon approximating a disc — handy for circular regions
    /// such as a recreation facility.
    pub fn regular(center: Point, radius: f64, n: usize) -> Self {
        assert!(n >= 3, "regular polygon needs n >= 3");
        assert!(radius > 0.0, "radius must be positive");
        let ring = (0..n)
            .map(|i| {
                let theta = std::f64::consts::TAU * (i as f64) / (n as f64);
                Point::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        Polygon::new(ring)
    }

    /// The outer ring (unclosed).
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Cached bounding rectangle.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Iterator over the ring edges, including the implicit closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Unsigned area by the shoelace formula.
    pub fn area(&self) -> f64 {
        let n = self.ring.len();
        let mut twice = 0.0;
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            twice += p.cross(q);
        }
        twice.abs() * 0.5
    }

    /// Perimeter length including the closing edge.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Centroid of the polygon (area-weighted). Falls back to the vertex
    /// mean for degenerate (zero-area) rings.
    pub fn centroid(&self) -> Point {
        let n = self.ring.len();
        let mut twice_area = 0.0;
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            let w = p.cross(q);
            twice_area += w;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        if twice_area.abs() < f64::EPSILON {
            let inv = 1.0 / n as f64;
            let sx: f64 = self.ring.iter().map(|p| p.x).sum();
            let sy: f64 = self.ring.iter().map(|p| p.y).sum();
            return Point::new(sx * inv, sy * inv);
        }
        let scale = 1.0 / (3.0 * twice_area);
        Point::new(cx * scale, cy * scale)
    }

    /// Point-in-polygon test (ray crossing), with boundary points counted as
    /// inside. This implements the *spatial subsumption* predicate the paper
    /// identifies as the most used one for stop episodes (§4.1).
    pub fn contains_point(&self, q: Point) -> bool {
        // the bbox short-circuit must be inflated by the boundary
        // tolerance: a point within tolerance of an edge that coincides
        // with the bbox lies (numerically) just outside the bbox, and an
        // uninflated test would reject it before the boundary check that
        // would have accepted it
        if !self.bbox.inflate(BOUNDARY_EPS).contains_point(q) {
            return false;
        }
        // boundary check first so edge-lying points are deterministic
        for e in self.edges() {
            if e.distance_to_point(q) < BOUNDARY_EPS {
                return true;
            }
        }
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.ring[i];
            let pj = self.ring[j];
            if (pi.y > q.y) != (pj.y > q.y) {
                let x_int = pj.x + (pi.x - pj.x) * (q.y - pj.y) / (pi.y - pj.y);
                if q.x < x_int {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// `true` if the polygon and the rectangle share at least one point.
    ///
    /// Exact for simple polygons: checks bbox overlap, then corner/vertex
    /// containment, then edge crossings.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        if !self.bbox.intersects(r) {
            return false;
        }
        // any polygon vertex inside the rect?
        if self.ring.iter().any(|&v| r.contains_point(v)) {
            return true;
        }
        // any rect corner inside the polygon?
        let corners = [
            Point::new(r.min_x, r.min_y),
            Point::new(r.max_x, r.min_y),
            Point::new(r.max_x, r.max_y),
            Point::new(r.min_x, r.max_y),
        ];
        if corners.iter().any(|&c| self.contains_point(c)) {
            return true;
        }
        // any edge crossing?
        let rect_edges = [
            Segment::new(corners[0], corners[1]),
            Segment::new(corners[1], corners[2]),
            Segment::new(corners[2], corners[3]),
            Segment::new(corners[3], corners[0]),
        ];
        self.edges()
            .any(|pe| rect_edges.iter().any(|re| pe.intersects(re)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::from_rect(&Rect::new(0.0, 0.0, 10.0, 10.0))
    }

    fn concave_l() -> Polygon {
        // L-shape: 10x10 square minus its top-right 5x5 quadrant
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_degenerate_ring() {
        Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
    }

    #[test]
    fn area_square_and_l() {
        assert_eq!(square().area(), 100.0);
        assert_eq!(concave_l().area(), 75.0);
    }

    #[test]
    fn area_is_orientation_independent() {
        let mut ring: Vec<Point> = square().ring().to_vec();
        ring.reverse();
        assert_eq!(Polygon::new(ring).area(), 100.0);
    }

    #[test]
    fn perimeter_square() {
        assert_eq!(square().perimeter(), 40.0);
    }

    #[test]
    fn centroid_square() {
        let c = square().centroid();
        assert!((c.x - 5.0).abs() < 1e-12 && (c.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn contains_point_convex() {
        let sq = square();
        assert!(sq.contains_point(Point::new(5.0, 5.0)));
        assert!(!sq.contains_point(Point::new(-1.0, 5.0)));
        assert!(!sq.contains_point(Point::new(5.0, 10.5)));
        // boundary counts as inside
        assert!(sq.contains_point(Point::new(0.0, 5.0)));
        assert!(sq.contains_point(Point::new(10.0, 10.0)));
    }

    #[test]
    fn contains_point_concave() {
        let l = concave_l();
        assert!(l.contains_point(Point::new(2.0, 2.0)));
        assert!(l.contains_point(Point::new(2.0, 8.0)));
        assert!(l.contains_point(Point::new(8.0, 2.0)));
        // the notch is outside
        assert!(!l.contains_point(Point::new(8.0, 8.0)));
    }

    #[test]
    fn boundary_tolerance_consistent_across_bbox_edges() {
        // edges of a rect-polygon coincide with its bbox: points within
        // the boundary tolerance but numerically *outside* the bbox used
        // to be rejected by the bbox short-circuit while the same offset
        // on an interior-facing side was accepted — the predicate was
        // inconsistent on the boundary
        let sq = square();
        // just outside the left edge, well within tolerance
        assert!(sq.contains_point(Point::new(-1e-10, 5.0)));
        // just outside the top-right corner vertex (diagonal offset)
        assert!(sq.contains_point(Point::new(10.0 + 6e-10, 10.0 + 6e-10)));
        // just inside keeps working
        assert!(sq.contains_point(Point::new(1e-10, 5.0)));
        // beyond the tolerance stays outside
        assert!(!sq.contains_point(Point::new(-1e-8, 5.0)));
        assert!(!sq.contains_point(Point::new(10.0 + 1e-8, 10.0 + 1e-8)));
    }

    #[test]
    fn regular_polygon_approximates_disc() {
        let c = Point::new(100.0, 50.0);
        let p = Polygon::regular(c, 10.0, 64);
        let expected = std::f64::consts::PI * 100.0;
        assert!((p.area() - expected).abs() / expected < 0.01);
        assert!(p.contains_point(c));
        assert!(!p.contains_point(c.offset(10.5, 0.0)));
    }

    #[test]
    fn intersects_rect_cases() {
        let l = concave_l();
        // fully inside the polygon's solid part
        assert!(l.intersects_rect(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        // rect containing the whole polygon
        assert!(l.intersects_rect(&Rect::new(-5.0, -5.0, 20.0, 20.0)));
        // rect entirely within the notch (outside the polygon)
        assert!(!l.intersects_rect(&Rect::new(7.0, 7.0, 9.0, 9.0)));
        // rect crossing an edge
        assert!(l.intersects_rect(&Rect::new(9.0, 4.0, 12.0, 6.0)));
        // disjoint
        assert!(!l.intersects_rect(&Rect::new(20.0, 20.0, 30.0, 30.0)));
    }

    #[test]
    fn edges_include_closing_edge() {
        let sq = square();
        assert_eq!(sq.edges().count(), 4);
        let total: f64 = sq.edges().map(|e| e.length()).sum();
        assert_eq!(total, 40.0);
    }
}
