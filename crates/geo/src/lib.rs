//! # semitri-geo — 2-D geometry kernel for SeMiTri
//!
//! SeMiTri (Yan et al., EDBT 2011) annotates trajectories with *semantic
//! places* of three spatial kinds: regions, lines and points. This crate
//! provides the geometric substrate all annotation layers are built on:
//!
//! * [`Point`] / [`GeoPoint`] — positions in a local metric plane and in
//!   WGS-84 lon/lat, with the [`proj`] module converting between the two;
//! * [`Rect`] — axis-aligned bounding rectangles, the currency of the
//!   R\*-tree in `semitri-index`;
//! * [`Segment`] — road segments, with the *point–segment distance* of the
//!   paper's Equation (1) used by the map-matching layer;
//! * [`Polyline`] — road center-lines and raw tracks, including discrete
//!   Fréchet and Hausdorff distances used by the baseline curve-to-curve
//!   matchers mentioned in the paper's related work;
//! * [`Polygon`] — free-form semantic regions (campus, park) with
//!   point-in-polygon tests used by the region annotation layer;
//! * [`Timestamp`] / [`TimeSpan`] — temporal positions of GPS records and
//!   episodes.
//!
//! Everything in this crate is dependency-free, allocation-conscious and
//! deterministic; all distances are Euclidean in a local plane measured in
//! meters (datasets in lon/lat are first projected via [`proj::LocalProjection`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lanes;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod proj;
pub mod rect;
pub mod segment;
pub mod time;

pub use lanes::{exp_fast, weight_lanes, KernelMode, SegmentLanes, EXP_FAST_REL_TOL, LANES};
pub use point::{GeoPoint, Point};
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use proj::LocalProjection;
pub use rect::Rect;
pub use segment::Segment;
pub use time::{TimeSpan, Timestamp};

/// Earth mean radius in meters, used by the equirectangular projection and
/// by [`point::haversine_m`].
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;
