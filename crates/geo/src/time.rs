//! Temporal positions and intervals of GPS records and episodes.

use std::fmt;

/// A timestamp in seconds since an arbitrary epoch (datasets use the Unix
/// epoch; synthetic generators use seconds since dataset start).
///
/// Stored as `f64` seconds: GPS devices report sub-second fixes and every
/// algorithm in the paper (speed, acceleration, kernel weights) consumes
/// time as a real number.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Timestamp(pub f64);

impl Timestamp {
    /// Seconds since the epoch.
    #[inline]
    pub fn secs(&self) -> f64 {
        self.0
    }

    /// Signed difference `self - earlier` in seconds.
    #[inline]
    pub fn since(&self, earlier: Timestamp) -> f64 {
        self.0 - earlier.0
    }

    /// Returns this timestamp advanced by `secs` seconds.
    #[inline]
    pub fn plus(&self, secs: f64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Time of day in seconds within a 24-hour cycle (`0..86400`).
    /// Negative timestamps wrap correctly.
    #[inline]
    pub fn time_of_day(&self) -> f64 {
        self.0.rem_euclid(86_400.0)
    }

    /// Day index since the epoch (floor of days).
    #[inline]
    pub fn day(&self) -> i64 {
        (self.0 / 86_400.0).floor() as i64
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tod = self.time_of_day();
        let h = (tod / 3600.0) as u32;
        let m = ((tod % 3600.0) / 60.0) as u32;
        let s = (tod % 60.0) as u32;
        write!(f, "d{} {:02}:{:02}:{:02}", self.day(), h, m, s)
    }
}

/// A closed time interval `[start, end]` — the `(time_in, time_out)` pair of
/// a structured-semantic-trajectory episode (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSpan {
    /// Entering time.
    pub start: Timestamp,
    /// Leaving time.
    pub end: Timestamp,
}

impl TimeSpan {
    /// Creates a span.
    ///
    /// # Panics
    /// Panics if `end < start`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(end.0 >= start.0, "TimeSpan end precedes start");
        Self { start, end }
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end.0 - self.start.0
    }

    /// `true` if `t` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t.0 >= self.start.0 && t.0 <= self.end.0
    }

    /// `true` if the two closed intervals share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &TimeSpan) -> bool {
        self.start.0 <= other.end.0 && other.start.0 <= self.end.0
    }

    /// The smallest span covering both operands.
    #[inline]
    pub fn union(&self, other: &TimeSpan) -> TimeSpan {
        TimeSpan {
            start: Timestamp(self.start.0.min(other.start.0)),
            end: Timestamp(self.end.0.max(other.end.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_plus() {
        let t0 = Timestamp(100.0);
        let t1 = t0.plus(42.5);
        assert_eq!(t1.since(t0), 42.5);
        assert_eq!(t0.since(t1), -42.5);
    }

    #[test]
    fn time_of_day_wraps() {
        assert_eq!(Timestamp(0.0).time_of_day(), 0.0);
        assert_eq!(Timestamp(86_400.0 + 3_600.0).time_of_day(), 3_600.0);
        assert_eq!(Timestamp(-3_600.0).time_of_day(), 82_800.0);
    }

    #[test]
    fn day_index() {
        assert_eq!(Timestamp(0.0).day(), 0);
        assert_eq!(Timestamp(86_399.0).day(), 0);
        assert_eq!(Timestamp(86_400.0).day(), 1);
        assert_eq!(Timestamp(-1.0).day(), -1);
    }

    #[test]
    fn display_formats_day_and_tod() {
        let t = Timestamp(86_400.0 + 9.0 * 3600.0 + 5.0 * 60.0 + 7.0);
        assert_eq!(t.to_string(), "d1 09:05:07");
    }

    #[test]
    fn span_duration_contains_overlaps() {
        let s = TimeSpan::new(Timestamp(10.0), Timestamp(20.0));
        assert_eq!(s.duration(), 10.0);
        assert!(s.contains(Timestamp(10.0)));
        assert!(s.contains(Timestamp(20.0)));
        assert!(!s.contains(Timestamp(20.1)));
        let t = TimeSpan::new(Timestamp(20.0), Timestamp(30.0));
        assert!(s.overlaps(&t)); // closed intervals touch
        let u = TimeSpan::new(Timestamp(21.0), Timestamp(30.0));
        assert!(!s.overlaps(&u));
    }

    #[test]
    fn span_union() {
        let s = TimeSpan::new(Timestamp(10.0), Timestamp(20.0));
        let t = TimeSpan::new(Timestamp(15.0), Timestamp(40.0));
        assert_eq!(s.union(&t), TimeSpan::new(Timestamp(10.0), Timestamp(40.0)));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_reversed() {
        TimeSpan::new(Timestamp(2.0), Timestamp(1.0));
    }
}
