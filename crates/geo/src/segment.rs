//! Line segments and the paper's point–segment distance (Equation 1).

use crate::point::Point;
use crate::rect::Rect;

/// A directed line segment between two crossings `a` and `b`.
///
/// Road segments in the map-matching layer are `Segment`s; the direction is
/// the digitization order and carries no traffic-flow meaning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start crossing.
    pub a: Point,
    /// End crossing.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from two endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Segment length in meters.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Bounding rectangle of the segment.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.a, self.b)
    }

    /// Parameter `t ∈ ℝ` of the orthogonal projection of `q` onto the
    /// *infinite line* through the segment, with `t = 0` at `a` and `t = 1`
    /// at `b`. Degenerate (zero-length) segments yield `t = 0`.
    #[inline]
    pub fn project_param(&self, q: Point) -> f64 {
        let ab = self.a.vector_to(self.b);
        let len_sq = ab.dot(ab);
        if len_sq == 0.0 {
            return 0.0;
        }
        self.a.vector_to(q).dot(ab) / len_sq
    }

    /// The point on the infinite line at parameter `t`.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Closest point *on the segment* to `q` (projection clamped to the
    /// segment extent).
    #[inline]
    pub fn closest_point(&self, q: Point) -> Point {
        self.point_at(self.project_param(q).clamp(0.0, 1.0))
    }

    /// The paper's point–segment distance, Equation (1):
    ///
    /// ```text
    /// d(Q, AiAj) = d(Q, Q')                     if Q' ∈ AiAj
    ///            = min{ d(Q, Ai), d(Q, Aj) }    otherwise
    /// ```
    ///
    /// where `Q'` is the perpendicular projection of `Q` onto the line
    /// through the segment. Unlike the pure perpendicular distance, this is
    /// well behaved on dense networks, parallel roads and arbitrary
    /// crossings, because projections falling outside the segment fall back
    /// to the endpoint distance.
    #[inline]
    #[must_use]
    pub fn distance_to_point(&self, q: Point) -> f64 {
        q.distance(self.closest_point(q))
    }

    /// Squared Equation-(1) distance. Skips the `sqrt` for callers that only
    /// compare distances or take a single root at the end (the polyline
    /// min-distance kernel evaluated once per candidate per GPS fix).
    #[inline]
    #[must_use]
    pub fn distance_sq_to_point(&self, q: Point) -> f64 {
        q.distance_sq(self.closest_point(q))
    }

    /// Pure perpendicular distance from `q` to the *infinite line* through
    /// the segment. This is the classical map-matching metric the paper
    /// argues against (§4.2); kept for the ablation benchmark.
    #[inline]
    pub fn perpendicular_distance(&self, q: Point) -> f64 {
        let len = self.length();
        if len == 0.0 {
            return self.a.distance(q);
        }
        (self.a.vector_to(self.b).cross(self.a.vector_to(q))).abs() / len
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Heading of the segment in radians (`a` → `b`).
    #[inline]
    pub fn heading(&self) -> f64 {
        self.a.heading_to(self.b)
    }

    /// `true` if the two *closed* segments share at least one point.
    ///
    /// Uses orientation tests with collinear special-casing; robust for the
    /// axis-aligned and diagonal road geometry produced by the generators.
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            a.vector_to(b).cross(a.vector_to(c))
        }
        fn on_segment(s: &Segment, p: Point) -> bool {
            p.x >= s.a.x.min(s.b.x)
                && p.x <= s.a.x.max(s.b.x)
                && p.y >= s.a.y.min(s.b.y)
                && p.y <= s.a.y.max(s.b.y)
        }
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(other, self.a))
            || (d2 == 0.0 && on_segment(other, self.b))
            || (d3 == 0.0 && on_segment(self, other.a))
            || (d4 == 0.0 && on_segment(self, other.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horiz() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0))
    }

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
    }

    #[test]
    fn eq1_projection_inside_uses_perpendicular() {
        // Q projects inside the segment: Eq. 1 == perpendicular distance.
        let q = Point::new(5.0, 3.0);
        assert_eq!(horiz().distance_to_point(q), 3.0);
        assert_eq!(horiz().perpendicular_distance(q), 3.0);
    }

    #[test]
    fn eq1_projection_outside_uses_endpoint() {
        // Q projects beyond endpoint b: Eq. 1 falls back to d(Q, b),
        // while the perpendicular distance misleadingly stays small.
        let q = Point::new(14.0, 3.0);
        let d = horiz().distance_to_point(q);
        assert_eq!(d, 5.0); // sqrt(4^2 + 3^2)
        assert_eq!(horiz().perpendicular_distance(q), 3.0);
        assert!(d > horiz().perpendicular_distance(q));
    }

    #[test]
    fn eq1_before_start_uses_start_endpoint() {
        let q = Point::new(-4.0, 3.0);
        assert_eq!(horiz().distance_to_point(q), 5.0);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s.distance_to_point(Point::new(4.0, 5.0)), 5.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.project_param(Point::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn closest_point_clamps() {
        let s = horiz();
        assert_eq!(s.closest_point(Point::new(-5.0, 1.0)), s.a);
        assert_eq!(s.closest_point(Point::new(25.0, 1.0)), s.b);
        assert_eq!(s.closest_point(Point::new(5.0, 1.0)), Point::new(5.0, 0.0));
    }

    #[test]
    fn project_param_linearity() {
        let s = horiz();
        assert_eq!(s.project_param(Point::new(0.0, 7.0)), 0.0);
        assert_eq!(s.project_param(Point::new(10.0, -2.0)), 1.0);
        assert_eq!(s.project_param(Point::new(2.5, 3.0)), 0.25);
        assert_eq!(s.project_param(Point::new(-10.0, 0.0)), -1.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let b = Segment::new(Point::new(0.0, 10.0), Point::new(10.0, 0.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = horiz();
        let b = Segment::new(Point::new(0.0, 1.0), Point::new(10.0, 1.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn touching_endpoint_intersects() {
        let a = horiz();
        let b = Segment::new(Point::new(10.0, 0.0), Point::new(20.0, 5.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn collinear_overlapping_intersects() {
        let a = horiz();
        let b = Segment::new(Point::new(5.0, 0.0), Point::new(15.0, 0.0));
        assert!(a.intersects(&b));
        let c = Segment::new(Point::new(11.0, 0.0), Point::new(15.0, 0.0));
        assert!(!a.intersects(&c));
    }
}
