//! Positions in the local metric plane ([`Point`]) and on the WGS-84
//! ellipsoid ([`GeoPoint`]).

use crate::EARTH_RADIUS_M;

/// A position in a local planar coordinate system, in meters.
///
/// All SeMiTri annotation algorithms operate on planar points; lon/lat data
/// is projected first (see [`crate::proj::LocalProjection`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other` in meters.
    #[inline]
    #[must_use]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`; cheaper than [`Point::distance`]
    /// when only comparisons are needed.
    #[inline]
    #[must_use]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise addition.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Dot product of the position vectors.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 2-D cross product `self × other`.
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Vector from `self` to `other`, as a point.
    #[inline]
    pub fn vector_to(&self, other: Point) -> Point {
        Point::new(other.x - self.x, other.y - self.y)
    }

    /// Euclidean norm of the position vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Heading from `self` to `other` in radians, measured counter-clockwise
    /// from the positive x axis, in `(-π, π]`. Returns `0.0` for coincident
    /// points.
    #[inline]
    pub fn heading_to(&self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// A WGS-84 position: longitude and latitude in decimal degrees.
///
/// Matches the paper's raw GPS triple `(x = longitude, y = latitude, t)`
/// minus the timestamp (which lives on the GPS record type in
/// `semitri-data`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Longitude in decimal degrees, east positive.
    pub lon: f64,
    /// Latitude in decimal degrees, north positive.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a geographic point from lon/lat degrees.
    #[inline]
    pub const fn new(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// `true` if the coordinates fall inside the valid lon/lat ranges.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lon.is_finite()
            && self.lat.is_finite()
            && (-180.0..=180.0).contains(&self.lon)
            && (-90.0..=90.0).contains(&self.lat)
    }
}

/// Great-circle (haversine) distance between two WGS-84 points in meters.
///
/// Used to validate the local projection error and by trajectory
/// identification when the data is still in lon/lat.
pub fn haversine_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = lat2 - lat1;
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(-17.25, 42.0);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -10.0));
        assert_eq!(a.midpoint(b), Point::new(5.0, -10.0));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn heading_quadrants() {
        let o = Point::ORIGIN;
        assert!((o.heading_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.heading_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.heading_to(Point::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn haversine_known_distance() {
        // Lausanne (6.6323, 46.5197) to Geneva (6.1432, 46.2044): ~51 km.
        let lausanne = GeoPoint::new(6.6323, 46.5197);
        let geneva = GeoPoint::new(6.1432, 46.2044);
        let d = haversine_m(lausanne, geneva);
        assert!((49_000.0..54_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(6.6323, 46.5197);
        assert_eq!(haversine_m(p, p), 0.0);
    }

    #[test]
    fn geopoint_validity() {
        assert!(GeoPoint::new(0.0, 0.0).is_valid());
        assert!(GeoPoint::new(-180.0, 90.0).is_valid());
        assert!(!GeoPoint::new(181.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, -91.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }
}
