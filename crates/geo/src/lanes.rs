//! Fixed-width lane-wise kernels for the hot annotation loops.
//!
//! The map-matching layer evaluates the paper's Equation (1) point–segment
//! distance once per candidate per GPS fix, and the Equation (4) kernel
//! weight `exp(-d²/2σ²)` once per neighbor pair. Both loops are pure
//! element-wise arithmetic, so instead of calling [`Segment`] methods one
//! candidate at a time this module restructures them into fixed-width
//! chunked passes over structure-of-arrays coordinate lanes: each 8-wide
//! chunk is a `[f64; 8]` subslice processed by a branchless body that the
//! stable-Rust autovectorizer can lower to packed SIMD, with a scalar
//! remainder tail.
//!
//! # Bit-identity contract
//!
//! Every lane kernel in this module performs *exactly* the per-element
//! arithmetic of the scalar reference it replaces, in the same order, with
//! no reassociation: chunking only changes which elements are in flight
//! together, never the expression evaluated for any one element. The
//! property tests in this module (and the matcher's oracle tests) enforce
//! bit-identity against [`Segment::distance_to_point`] /
//! [`Segment::distance_sq_to_point`] across chunk widths, slab lengths and
//! remainder tails.
//!
//! Where reassociation or a faster `exp` *does* pay, the deviation is gated
//! behind [`KernelMode::Fast`], which is opt-in ([`KernelMode::Exact`] is
//! the default) and carries a documented relative tolerance
//! ([`EXP_FAST_REL_TOL`]).

use crate::point::Point;
use crate::segment::Segment;

/// Lane width of the chunked kernels: 8 × f64 = one AVX-512 register or two
/// AVX2 registers, and a comfortable unroll for SSE2. The width is a
/// compile-time constant so LLVM sees fixed-trip-count inner loops.
pub const LANES: usize = 8;

/// Selects how the Equation (4) kernel weights `exp(-d²/2σ²)` are
/// evaluated.
///
/// * [`KernelMode::Exact`] (default) calls the libm-correct [`f64::exp`]
///   per lane — bit-identical to the scalar matcher and to
///   `match_records_naive`.
/// * [`KernelMode::Fast`] uses the branchless polynomial [`exp_fast`],
///   which vectorizes but deviates from [`f64::exp`] by at most
///   [`EXP_FAST_REL_TOL`] relative error. Candidate *identity* never
///   changes (distances and the radius cut stay exact); only the weights,
///   and therefore tie-breaks between near-equal scores, can move within
///   the tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Bit-identical weights via [`f64::exp`] (the default).
    #[default]
    Exact,
    /// Vectorizable polynomial weights within [`EXP_FAST_REL_TOL`].
    Fast,
}

/// Maximum relative error of [`exp_fast`] against [`f64::exp`] over the
/// kernel-weight domain `x ∈ [-708, 0]`.
///
/// Error budget: rounding `x·log₂e` once costs up to `|x|·log₂e` ulps
/// carried into the reduced argument (≤ 1.1e-13 relative at the `-708`
/// clamp edge, proportionally less for the small `|x|` the Equation-4
/// weights actually produce), the degree-10 Taylor truncation on
/// `|r| ≤ ln2/2` adds ≤ 3.1e-13, and the Horner-chain rounding is in the
/// low 1e-15s — comfortably inside 5e-13 with margin. The property test
/// `exp_fast_within_tolerance` sweeps the domain and asserts the bound.
pub const EXP_FAST_REL_TOL: f64 = 5e-13;

/// Branchless `eˣ` suitable for autovectorization.
///
/// Classical base-2 evaluation: `x` is clamped to `[-708, 708]`, the
/// base-2 exponent `y = x·log₂e` is split as `y = n + f` with
/// `n = round(y)` and `|f| ≤ ½` (the split subtraction is exact, so the
/// only reduction error is the one rounding of `x·log₂e` itself), `eʳ`
/// with `r = f·ln2` is a degree-10 Horner polynomial, and the `2ⁿ` scale
/// is assembled by exponent-field bit manipulation. Every step is a
/// select or straight-line arithmetic — no table loads, no branches, and
/// (crucially for the x86-64 SSE2 baseline, which has no packed `round`
/// or packed `f64→i64` conversion) no libm `round()` call and no
/// float→int cast: rounding rides the "shifter" trick of adding and
/// subtracting `1.5·2⁵²`, which leaves the rounded integer both as an
/// exact f64 and in the low mantissa bits of the shifted sum — so LLVM
/// can lower an 8-wide chunk of calls to packed SIMD.
///
/// Accuracy: within [`EXP_FAST_REL_TOL`] of [`f64::exp`] on `[-708, 0]`
/// (the Equation-4 weight domain; weights take `x = -d²/2σ² ≤ 0`). NaN
/// propagates; inputs below `-708` clamp to `exp(-708) ≈ 3e-308` rather
/// than flushing through the subnormal range.
#[inline]
#[must_use]
pub fn exp_fast(x: f64) -> f64 {
    // 1.5·2⁵²: adding it pushes x·log₂e into the range where f64 spacing
    // is exactly 1, so the FPU's round-to-nearest does the rounding;
    // subtracting it back recovers the rounded value exactly.
    const SHIFTER: f64 = 6_755_399_441_055_744.0;
    let x = x.clamp(-708.0, 708.0);
    let y = x * std::f64::consts::LOG2_E;
    let j = y + SHIFTER;
    let n = j - SHIFTER;
    // Exact by Sterbenz (n is within a factor of two of y), so no
    // two-part Cody–Waite chain is needed: the only reduction error is
    // the rounding already inside `y`, which EXP_FAST_REL_TOL budgets.
    let f = y - n;
    let r = f * std::f64::consts::LN_2;
    // e^r via Horner over 1/k!. |r| <= ln2/2 bounds the degree-10
    // truncation by r¹¹/11!·e^{ln2/2} ≈ 3.1e-13 relative.
    let p = 2.755_731_922_398_589e-7; // 1/10!
    let p = p * r + 2.755_731_922_398_589_3e-6; // 1/9!
    let p = p * r + 2.480_158_730_158_73e-5; // 1/8!
    let p = p * r + 1.984_126_984_126_984e-4; // 1/7!
    let p = p * r + 1.388_888_888_888_889e-3; // 1/6!
    let p = p * r + 8.333_333_333_333_333e-3; // 1/5!
    let p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    let p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    let p = p * r + 0.5;
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    // 2^n assembled in the exponent field. The low 52 mantissa bits of `j`
    // hold `2⁵¹ + n` (n in [-1022, 1022] after the clamp, so no wrap and
    // the biased exponent stays in (0, 2047) — always a normal number).
    // Reading n back out of `j`'s bits avoids the f64→i64 conversion,
    // which has no packed SSE2 form and would block vectorization.
    const MANTISSA: u64 = (1 << 52) - 1;
    let n_biased = (j.to_bits() & MANTISSA)
        .wrapping_sub(1 << 51)
        .wrapping_add(1023);
    let scale = f64::from_bits(n_biased << 52);
    p * scale
}

/// Evaluates the Equation (4) kernel weights `out[i] = exp(-d[i]²·k)` with
/// `k = 1/2σ²`, in 8-wide chunks.
///
/// Under [`KernelMode::Exact`] the per-element expression is literally
/// `(-d * d * inv_two_sigma_sq).exp()` — the same chain the scalar matcher
/// and `match_records_naive` evaluate — so results are bit-identical.
/// Under [`KernelMode::Fast`] the `exp` is [`exp_fast`] within
/// [`EXP_FAST_REL_TOL`].
///
/// # Panics
///
/// Panics if `out.len() != d.len()`.
pub fn weight_lanes(d: &[f64], inv_two_sigma_sq: f64, mode: KernelMode, out: &mut [f64]) {
    assert_eq!(d.len(), out.len(), "weight_lanes length mismatch");
    let chunks = d.len() / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        let dc: &[f64; LANES] = d[base..base + LANES].try_into().unwrap();
        let oc: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().unwrap();
        match mode {
            KernelMode::Exact => {
                for i in 0..LANES {
                    oc[i] = (-dc[i] * dc[i] * inv_two_sigma_sq).exp();
                }
            }
            KernelMode::Fast => {
                for i in 0..LANES {
                    oc[i] = exp_fast(-dc[i] * dc[i] * inv_two_sigma_sq);
                }
            }
        }
    }
    for i in chunks..d.len() {
        out[i] = match mode {
            KernelMode::Exact => (-d[i] * d[i] * inv_two_sigma_sq).exp(),
            KernelMode::Fast => exp_fast(-d[i] * d[i] * inv_two_sigma_sq),
        };
    }
}

/// A structure-of-arrays slab of segments, the input layout of the batched
/// point–segment distance kernel.
///
/// The matcher gathers one candidate slab per GPS fix into a reused
/// `SegmentLanes` scratch (endpoint coordinates split into four coordinate
/// lanes), then evaluates Equation (1) for the whole slab in one chunked
/// pass instead of one [`Segment::distance_to_point`] call per candidate.
#[derive(Debug, Clone, Default)]
pub struct SegmentLanes {
    ax: Vec<f64>,
    ay: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
}

/// The per-element Equation (1) body, generic over the chunk width so the
/// property tests can sweep widths; the public entry points instantiate
/// `W = LANES`. The arithmetic chain — `project_param`, select on the
/// degenerate segment, `clamp`, `lerp` (which recomputes the deltas, as
/// [`Point::lerp`] does), squared distance — mirrors
/// [`Segment::distance_sq_to_point`] expression for expression, so each
/// element is bit-identical to the scalar reference.
#[inline(always)]
fn eq1_distance_sq_chunk<const W: usize>(
    ax: &[f64; W],
    ay: &[f64; W],
    bx: &[f64; W],
    by: &[f64; W],
    qx: f64,
    qy: f64,
    out: &mut [f64; W],
) {
    for i in 0..W {
        let abx = bx[i] - ax[i];
        let aby = by[i] - ay[i];
        let len_sq = abx * abx + aby * aby;
        // fdiv is speculation-safe: divide unconditionally, select away the
        // degenerate-segment lane afterwards (same value as the scalar
        // early-return since the selected operand is untouched).
        let t_raw = ((qx - ax[i]) * abx + (qy - ay[i]) * aby) / len_sq;
        let t = if len_sq == 0.0 { 0.0 } else { t_raw };
        let t = t.clamp(0.0, 1.0);
        let cx = ax[i] + (bx[i] - ax[i]) * t;
        let cy = ay[i] + (by[i] - ay[i]) * t;
        let dx = qx - cx;
        let dy = qy - cy;
        out[i] = dx * dx + dy * dy;
    }
}

/// Chunked Equation (1) squared distances at an arbitrary width, shared by
/// the `W = LANES` public path and the width-sweeping property tests.
fn distances_sq_impl<const W: usize>(lanes: &SegmentLanes, q: Point, out: &mut Vec<f64>) {
    let n = lanes.len();
    out.clear();
    out.resize(n, 0.0);
    let chunks = n / W * W;
    for base in (0..chunks).step_by(W) {
        let ax: &[f64; W] = lanes.ax[base..base + W].try_into().unwrap();
        let ay: &[f64; W] = lanes.ay[base..base + W].try_into().unwrap();
        let bx: &[f64; W] = lanes.bx[base..base + W].try_into().unwrap();
        let by: &[f64; W] = lanes.by[base..base + W].try_into().unwrap();
        let oc: &mut [f64; W] = (&mut out[base..base + W]).try_into().unwrap();
        eq1_distance_sq_chunk(ax, ay, bx, by, q.x, q.y, oc);
    }
    // Remainder tail: the scalar reference itself, element by element.
    for (i, o) in out.iter_mut().enumerate().skip(chunks) {
        *o = lanes.segment(i).distance_sq_to_point(q);
    }
}

impl SegmentLanes {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes all segments, keeping the lane allocations.
    pub fn clear(&mut self) {
        self.ax.clear();
        self.ay.clear();
        self.bx.clear();
        self.by.clear();
    }

    /// Appends a segment to the slab.
    pub fn push(&mut self, s: Segment) {
        self.ax.push(s.a.x);
        self.ay.push(s.a.y);
        self.bx.push(s.b.x);
        self.by.push(s.b.y);
    }

    /// Number of segments in the slab.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ax.len()
    }

    /// `true` if the slab holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ax.is_empty()
    }

    /// Reassembles the `i`-th segment (tail path and tests).
    #[must_use]
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(
            Point::new(self.ax[i], self.ay[i]),
            Point::new(self.bx[i], self.by[i]),
        )
    }

    /// Squared Equation (1) distance from `q` to every segment in the slab,
    /// evaluated in 8-wide chunks. `out` is cleared and resized; each
    /// element is bit-identical to
    /// [`Segment::distance_sq_to_point`]`(q)` on the corresponding segment.
    pub fn distances_sq_to_point(&self, q: Point, out: &mut Vec<f64>) {
        distances_sq_impl::<LANES>(self, q, out);
    }

    /// Equation (1) distance (with the root) from `q` to every segment,
    /// bit-identical per element to [`Segment::distance_to_point`]`(q)`.
    ///
    /// The root is taken in a second lane pass over the squared distances:
    /// `sqrt` is correctly rounded, so `d_sq.sqrt()` equals the scalar
    /// chain's final `sqrt` bit for bit.
    pub fn distances_to_point(&self, q: Point, out: &mut Vec<f64>) {
        self.distances_sq_to_point(q, out);
        let chunks = out.len() / LANES * LANES;
        for base in (0..chunks).step_by(LANES) {
            let oc: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().unwrap();
            for v in oc.iter_mut() {
                *v = v.sqrt();
            }
        }
        for v in &mut out[chunks..] {
            *v = v.sqrt();
        }
    }

    /// Width-`W` variant of [`SegmentLanes::distances_sq_to_point`], used
    /// by the chunk-width × slab-length × tail property matrix.
    pub fn distances_sq_to_point_width<const W: usize>(&self, q: Point, out: &mut Vec<f64>) {
        distances_sq_impl::<W>(self, q, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn slab(n: usize, salt: f64) -> SegmentLanes {
        let mut lanes = SegmentLanes::new();
        for i in 0..n {
            let f = i as f64;
            lanes.push(Segment::new(
                Point::new(f * 13.7 - salt, (f * 7.3).sin() * 500.0),
                Point::new(f * 13.7 + 90.0, (f * 3.1).cos() * 500.0 + salt),
            ));
        }
        lanes
    }

    #[test]
    fn batched_distances_match_scalar_bitwise() {
        let lanes = slab(37, 4.25); // 4 full chunks + tail of 5
        let q = Point::new(123.5, -42.0);
        let mut d = Vec::new();
        let mut d_sq = Vec::new();
        lanes.distances_to_point(q, &mut d);
        lanes.distances_sq_to_point(q, &mut d_sq);
        for i in 0..lanes.len() {
            let s = lanes.segment(i);
            assert_eq!(d[i].to_bits(), s.distance_to_point(q).to_bits(), "lane {i}");
            assert_eq!(d_sq[i].to_bits(), s.distance_sq_to_point(q).to_bits());
        }
    }

    #[test]
    fn degenerate_segment_lane_matches_scalar() {
        let mut lanes = SegmentLanes::new();
        for _ in 0..9 {
            lanes.push(Segment::new(Point::new(3.0, 4.0), Point::new(3.0, 4.0)));
        }
        let q = Point::new(0.0, 0.0);
        let mut d = Vec::new();
        lanes.distances_to_point(q, &mut d);
        for v in d {
            assert_eq!(v.to_bits(), 5.0f64.to_bits());
        }
    }

    #[test]
    fn weight_lanes_exact_matches_naive_expression() {
        let d: Vec<f64> = (0..21).map(|i| i as f64 * 1.3).collect();
        let k = 1.0 / (2.0 * 4.8 * 4.8);
        let mut w = vec![0.0; d.len()];
        weight_lanes(&d, k, KernelMode::Exact, &mut w);
        for (i, &di) in d.iter().enumerate() {
            let naive = (-di * di * k).exp();
            assert_eq!(w[i].to_bits(), naive.to_bits(), "weight {i}");
        }
    }

    #[test]
    fn exp_fast_spot_checks() {
        for &x in &[0.0f64, -1.0, -0.5, -10.0, -100.0, -700.0, -0.001] {
            let exact = x.exp();
            let fast = exp_fast(x);
            assert!(
                (fast - exact).abs() <= EXP_FAST_REL_TOL * exact,
                "x={x}: fast={fast:e} exact={exact:e}"
            );
        }
        assert_eq!(exp_fast(0.0), 1.0);
        assert!(exp_fast(f64::NAN).is_nan());
        // below the clamp: pinned at exp(-708), never subnormal-flushed
        assert!(exp_fast(-1.0e9) > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Chunk width × slab length × remainder tail: every width agrees
        /// bitwise with the scalar reference on every element, including
        /// tails of every residue class.
        #[test]
        fn chunked_kernel_bitwise_identity_matrix(
            n in 0usize..40,
            coords in proptest::collection::vec(-5000.0f64..5000.0, 0..164),
            qx in -5000.0f64..5000.0,
            qy in -5000.0f64..5000.0,
        ) {
            let mut lanes = SegmentLanes::new();
            for i in 0..n {
                let c = |j: usize| coords.get((i * 4 + j) % coords.len().max(1)).copied().unwrap_or(0.0);
                lanes.push(Segment::new(Point::new(c(0), c(1)), Point::new(c(2), c(3))));
            }
            let q = Point::new(qx, qy);
            let reference: Vec<f64> =
                (0..n).map(|i| lanes.segment(i).distance_sq_to_point(q)).collect();
            let mut out = Vec::new();
            macro_rules! check_width {
                ($w:literal) => {
                    lanes.distances_sq_to_point_width::<$w>(q, &mut out);
                    prop_assert_eq!(out.len(), n);
                    for i in 0..n {
                        prop_assert_eq!(out[i].to_bits(), reference[i].to_bits());
                    }
                };
            }
            check_width!(1);
            check_width!(2);
            check_width!(4);
            check_width!(8);
            check_width!(16);
        }

        /// `KernelMode::Fast` weights stay within the documented tolerance
        /// of the exact weights over the full kernel domain.
        #[test]
        fn exp_fast_within_tolerance(x in -708.0f64..0.0) {
            let exact = x.exp();
            let fast = exp_fast(x);
            prop_assert!(
                (fast - exact).abs() <= EXP_FAST_REL_TOL * exact,
                "x={} fast={:e} exact={:e}", x, fast, exact
            );
        }

        /// Fast-mode weight rows deviate from exact rows by at most the
        /// documented relative tolerance, element-wise, plus the
        /// `exp(-708)` absolute floor in the clamp region (inputs below
        /// -708 clamp instead of underflowing — both weights are zero for
        /// all scoring purposes there).
        #[test]
        fn fast_weight_rows_bounded(
            d in proptest::collection::vec(0.0f64..500.0, 0..40),
            sigma in 0.5f64..60.0,
        ) {
            let k = 1.0 / (2.0 * sigma * sigma);
            let floor = exp_fast(-708.0); // the clamp output itself
            let mut exact = vec![0.0; d.len()];
            let mut fast = vec![0.0; d.len()];
            weight_lanes(&d, k, KernelMode::Exact, &mut exact);
            weight_lanes(&d, k, KernelMode::Fast, &mut fast);
            for i in 0..d.len() {
                prop_assert!(
                    (fast[i] - exact[i]).abs() <= EXP_FAST_REL_TOL * exact[i] + floor,
                    "d={} k={} x={} exact={:e} fast={:e}",
                    d[i], k, -d[i] * d[i] * k, exact[i], fast[i]
                );
            }
        }
    }
}
