//! `store` — tracked benchmarks of the compressed columnar trajectory
//! store.
//!
//! Ingests a heterogeneous annotated corpus — the dense 1 s taxi feed
//! (the regime the fix-column delta codecs are built for) plus the
//! smartphone-user preset, whose POI visits and landuse dwells populate
//! every semantic layer — into a [`SemanticTrajectoryStore`] and
//! measures the warehouse surface: each
//! compressed aggregate (stops-per-landuse-per-hour, record-weighted
//! mode share by road class, POI visit ranks) is paired against the
//! retained [`RowStore`] row-walk on the identical data, and the
//! block-skipping time-window scan is paired against a linear sweep of
//! the same episode rows. Compression itself is reported as compressed
//! bytes per stored fix and label bytes per tuple.
//!
//! With `--bench-json PATH` the results are written as machine-readable
//! JSON (`BENCH_store.json` is the tracked baseline at the repo root);
//! `--quick` shrinks the corpus for CI smoke runs. The run fails
//! (returns `false`, non-zero process exit) when any compressed
//! aggregate is more than 10% slower than its row-walk reference, or —
//! on full runs — when dense-city fixes exceed the 4 bytes/fix
//! compression budget.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;
use semitri::store::{derive_tuple_layers, RowStore, StoreMetricsSnapshot, TupleLayers};
use std::hint::black_box;
use std::time::Instant;

/// Options parsed from the experiment driver's command line.
#[derive(Debug, Default)]
pub struct StoreOptions {
    /// Shrink the corpus for a CI smoke run.
    pub quick: bool,
    /// Write the results as JSON to this path.
    pub json_path: Option<String>,
}

/// One measured scan.
struct ScanResult {
    name: &'static str,
    unit: &'static str,
    median_ns: f64,
    samples: usize,
    units: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Times two implementations of the same scan in interleaved samples
/// (A, B, A, B, …) after a shared warmup, like the hotpath pairs: the
/// ratio stays immune to frequency scaling between separately-timed
/// blocks.
fn bench_pair(
    name_a: &'static str,
    name_b: &'static str,
    unit: &'static str,
    samples: usize,
    passes: usize,
    mut a: impl FnMut() -> usize,
    mut b: impl FnMut() -> usize,
) -> (ScanResult, ScanResult) {
    a();
    b();
    let mut per_a = Vec::with_capacity(samples);
    let mut per_b = Vec::with_capacity(samples);
    let (mut units_a, mut units_b) = (0, 0);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..passes {
            units_a = a();
        }
        per_a.push(t0.elapsed().as_nanos() as f64 / (passes * units_a.max(1)) as f64);
        let t0 = Instant::now();
        for _ in 0..passes {
            units_b = b();
        }
        per_b.push(t0.elapsed().as_nanos() as f64 / (passes * units_b.max(1)) as f64);
    }
    (
        ScanResult {
            name: name_a,
            unit,
            median_ns: median(per_a),
            samples,
            units: units_a,
        },
        ScanResult {
            name: name_b,
            unit,
            median_ns: median(per_b),
            samples,
            units: units_b,
        },
    )
}

/// Runs the store benchmarks; returns `false` on regression.
pub fn run(scale: Scale, opts: &StoreOptions) -> bool {
    header("Store — compressed columnar scans vs the row-walk reference");
    let (days, samples, passes) = if opts.quick {
        (1, 5, 2)
    } else {
        (scale.apply(6), 7, 4)
    };
    // Heterogeneous corpus, as in the paper: a dense 1 s taxi fleet
    // (the feed the fix-column codecs are sized for) and smartphone
    // users whose days are full of POI visits and landuse dwells — the
    // taxi feed alone never parks at a POI, which would leave the
    // stop-aggregate scans counting nothing.
    let taxis = lausanne_taxis(days, 0x5EED);
    let phones = smartphone_users(4, days, 0x5EED ^ 1);
    // Standard dense-feed cleaning: the 2 s Gaussian smoother knocks the
    // per-fix GPS noise out of the position deltas before they reach the
    // store, exactly as a production ingest would run it.
    let config = || PipelineConfig {
        clean: semitri::core::pipeline::CleanConfig {
            smooth_sigma_secs: Some(2.0),
            ..semitri::core::pipeline::CleanConfig::default()
        },
        ..PipelineConfig::default()
    };
    // Real receivers emit millisecond-resolution timestamps; the
    // simulator's accumulated f64 clocks carry sub-ms noise no device
    // reports. Snapping the feed to the ms grid reproduces the wire
    // precision the fix columns are designed around (and the store still
    // round-trips whatever it is given — the hostile-precision case is
    // covered by the proptest suite, at raw-column cost).
    let annotate = |dataset: &Dataset| -> Vec<PipelineOutput> {
        let semitri = SeMiTri::new(&dataset.city, config());
        dataset
            .tracks
            .iter()
            .map(|t| {
                let raw = t.to_raw();
                let ms_records: Vec<GpsRecord> = raw
                    .records()
                    .iter()
                    .map(|r| {
                        GpsRecord::new(r.point, Timestamp((r.t.0 * 1_000.0).round() / 1_000.0))
                    })
                    .collect();
                semitri.annotate(&RawTrajectory::new(
                    raw.object_id,
                    raw.trajectory_id,
                    ms_records,
                ))
            })
            .collect()
    };
    let taxi_outputs = annotate(&taxis);
    let phone_outputs = annotate(&phones);

    // --- ingest: the dense feed through the full write path, timed ---
    let store = SemanticTrajectoryStore::in_memory();
    let mut rows = RowStore::new();
    let total_fixes: usize = taxi_outputs.iter().map(|o| o.cleaned.len()).sum();
    let t0 = Instant::now();
    for out in &taxi_outputs {
        store
            .put_annotated(out, &taxis.city.roads)
            .expect("in-memory ingest");
    }
    let ingest_fixes_per_sec = total_fixes as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    // The phone corpus enters semantically only (meta + episodes + SST
    // layers, no fix columns): bytes/fix stays a statement about the
    // dense feed, and the semantic scans get a corpus where every layer
    // is populated.
    // Warehouse-scale the semantic side: the matrix and episode columns
    // are what the aggregate scans run over, and a handful of simulated
    // days gives them only a few thousand tuples — every scan would be
    // measuring fixed overhead. Replicating the annotated corpus under
    // fresh trajectory ids (both sides of every pair see the identical
    // replicas) grows the scanned corpus to warehouse row counts without
    // re-simulating months; each replica is shifted one day later, so the
    // store really holds months of distinct history and time-window
    // pruning is exercised against honestly partitioned data. Fix
    // columns are NOT replicated: bytes/fix is reported for the real
    // dense feed only.
    let replicas = if opts.quick { 5_000 } else { 1_500 };
    let corpus: Vec<(&PipelineOutput, &semitri::data::RoadNetwork)> = taxi_outputs
        .iter()
        .map(|o| (o, &taxis.city.roads))
        .chain(phone_outputs.iter().map(|o| (o, &phones.city.roads)))
        .collect();
    let mut next_id = corpus
        .iter()
        .map(|(o, _)| o.cleaned.trajectory_id)
        .max()
        .unwrap_or(0)
        + 1;
    let all_layers: Vec<Vec<TupleLayers>> = corpus
        .iter()
        .map(|(out, roads)| derive_tuple_layers(out, roads))
        .collect();
    for rep in 0..replicas {
        for ((out, _), layers) in corpus.iter().zip(&all_layers) {
            let taxi_fed = out.cleaned.trajectory_id
                <= taxi_outputs.last().map_or(0, |o| o.cleaned.trajectory_id)
                && rep == 0;
            let layers = layers.clone();
            let mut sst = out.sst.clone();
            let mut episodes = out.episodes.clone();
            if rep > 0 {
                sst.trajectory_id = next_id;
                next_id += 1;
                // a replica is the same fleet one day later
                let shift = rep as f64 * 86_400.0;
                for t in &mut sst.tuples {
                    t.span.start.0 += shift;
                    t.span.end.0 += shift;
                }
                for e in &mut episodes {
                    e.span.start.0 += shift;
                    e.span.end.0 += shift;
                }
            }
            // the taxi feed's rep-0 meta/episodes/SST already arrived via
            // `put_annotated`; everything else registers here
            if !taxi_fed {
                store
                    .put_trajectory(TrajectoryMeta {
                        trajectory_id: sst.trajectory_id,
                        object_id: out.cleaned.object_id,
                        record_count: out.cleaned.len() as u64,
                    })
                    .expect("replica meta");
                store
                    .put_episodes(sst.trajectory_id, &episodes)
                    .expect("replica episodes");
                store
                    .put_sst_with_layers(&sst, &layers)
                    .expect("replica sst");
            }
            rows.insert(sst, layers);
        }
    }
    let snap = store.metrics();
    println!(
        "  corpus: {} trajectories ({} + {}), {} dense fixes, {} episodes, {} tuples (quick={})",
        corpus.len(),
        taxis.name,
        phones.name,
        total_fixes,
        snap.episodes,
        snap.live_tuples,
        opts.quick
    );
    println!(
        "  fix columns: {} blocks, {:.2} bytes/fix ({} raw → {} compressed, {:.1}x)",
        snap.fix_blocks,
        snap.bytes_per_fix(),
        snap.fix_raw_bytes,
        snap.fix_compressed_bytes,
        snap.fix_raw_bytes as f64 / snap.fix_compressed_bytes.max(1) as f64
    );
    println!(
        "  semantic matrix: {:.2} label bytes/tuple, ingest {:.0} fixes/s",
        snap.label_bytes_per_tuple(),
        ingest_fixes_per_sec
    );

    let mut results: Vec<ScanResult> = Vec::new();

    // --- stops per landuse per hour: packed streams vs tuple rows ---
    let tuples = snap.live_tuples.max(1) as usize;
    let (landuse_col, landuse_row) = bench_pair(
        "olap_landuse_hour",
        "olap_landuse_hour_rows",
        "tuple",
        samples,
        passes,
        || {
            black_box(store.stops_per_landuse_hour());
            tuples
        },
        || {
            black_box(rows.stops_per_landuse_hour());
            tuples
        },
    );
    results.push(landuse_col);
    results.push(landuse_row);

    // --- record-weighted mode share by road class ---
    let (share_col, share_row) = bench_pair(
        "olap_mode_share",
        "olap_mode_share_rows",
        "tuple",
        samples,
        passes,
        || {
            black_box(store.mode_share_by_road_class());
            tuples
        },
        || {
            black_box(rows.mode_share_by_road_class());
            tuples
        },
    );
    results.push(share_col);
    results.push(share_row);

    // --- POI visit ranks (top 20) ---
    let (poi_col, poi_row) = bench_pair(
        "olap_poi_ranks",
        "olap_poi_ranks_rows",
        "tuple",
        samples,
        passes,
        || {
            black_box(store.top_poi_visits(20));
            tuples
        },
        || {
            black_box(rows.top_poi_visits(20));
            tuples
        },
    );
    results.push(poi_col);
    results.push(poi_row);

    // --- time-window scans: block skipping vs a linear episode sweep ---
    // A sweep of one-hour morning windows over days sampled across the
    // whole replica history: each window intersects a small slice of the
    // corpus, the block-skipping regime. The baseline sweeps the same
    // flat episode rows linearly — the scan the store ran before the
    // per-block summaries.
    let all_episodes = store.episodes_in_time(TimeSpan::new(
        Timestamp(f64::NEG_INFINITY),
        Timestamp(f64::INFINITY),
    ));
    let window_count = 16.min(replicas);
    let windows: Vec<TimeSpan> = (0..window_count)
        .map(|i| {
            let day = i * (replicas / window_count.max(1));
            let t = day as f64 * 86_400.0 + 8.0 * 3_600.0;
            TimeSpan::new(Timestamp(t), Timestamp(t + 3_600.0))
        })
        .collect();
    let mut scratch = Vec::new();
    let (time_col, time_row) = bench_pair(
        "episodes_in_time",
        "episodes_in_time_rows",
        "window",
        samples,
        passes,
        || {
            let mut hits = 0usize;
            for w in &windows {
                store.episodes_in_time_with(*w, &mut scratch);
                hits += scratch.len();
            }
            black_box(hits);
            windows.len()
        },
        || {
            let mut hits = 0usize;
            for w in &windows {
                hits += all_episodes
                    .iter()
                    .filter(|e| e.span.start.0 <= w.end.0 && e.span.end.0 >= w.start.0)
                    .count();
            }
            black_box(hits);
            windows.len()
        },
    );
    results.push(time_col);
    results.push(time_row);

    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let speedups = StoreSpeedups {
        landuse_hour_vs_rows: ns_of("olap_landuse_hour_rows") / ns_of("olap_landuse_hour"),
        mode_share_vs_rows: ns_of("olap_mode_share_rows") / ns_of("olap_mode_share"),
        poi_ranks_vs_rows: ns_of("olap_poi_ranks_rows") / ns_of("olap_poi_ranks"),
        time_window_vs_rows: ns_of("episodes_in_time_rows") / ns_of("episodes_in_time"),
    };
    // block-skip stats come from the timed scans just run
    let snap = store.metrics();
    // regression markers CI watches: no compressed scan may run >10%
    // slower than its row-walk reference, and on full runs the dense-city
    // corpus must stay within the 4 bytes/fix compression budget (quick
    // corpora are too short to amortize per-block headers fairly)
    let over_budget = !opts.quick && snap.bytes_per_fix() > 4.0;
    let regression = speedups.any_regressed() || over_budget;

    let mut t = Table::new(&["scan", "median", "unit", "samples", "units/sample"]);
    for r in &results {
        t.row(&[
            r.name.to_string(),
            format!("{:.0} ns", r.median_ns),
            format!("per {}", r.unit),
            r.samples.to_string(),
            r.units.to_string(),
        ]);
    }
    t.print();
    println!(
        "  stops-per-landuse-hour speedup vs row walk: {:.2}x",
        speedups.landuse_hour_vs_rows
    );
    println!(
        "  mode-share-by-class speedup vs row walk: {:.2}x",
        speedups.mode_share_vs_rows
    );
    println!(
        "  poi-visit-ranks speedup vs row walk: {:.2}x",
        speedups.poi_ranks_vs_rows
    );
    println!(
        "  time-window scan speedup vs linear sweep: {:.2}x ({:.0}% of blocks skipped)",
        speedups.time_window_vs_rows,
        snap.block_skip_rate() * 100.0
    );
    if over_budget {
        println!(
            "  OVER BUDGET: {:.2} bytes/fix exceeds the 4.0 dense-city budget",
            snap.bytes_per_fix()
        );
    }
    if regression {
        println!("  REGRESSION: a compressed scan is >10% slower than its row-walk reference");
    }

    if let Some(path) = &opts.json_path {
        let json = render_json(
            &results,
            opts.quick,
            scale.0,
            &snap,
            &speedups,
            ingest_fixes_per_sec,
            regression,
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => {
                eprintln!("  failed to write {path}: {e}");
                return false;
            }
        }
    }
    !regression
}

/// The paired-scan speedup ratios the regression marker watches.
struct StoreSpeedups {
    /// Packed landuse×hour cube scan vs the tuple-row walk.
    landuse_hour_vs_rows: f64,
    /// Packed mode×class scan vs the tuple-row walk.
    mode_share_vs_rows: f64,
    /// Dictionary-coded POI ranking vs the string-keyed row walk.
    poi_ranks_vs_rows: f64,
    /// Block-skipping time-window scan vs a linear episode sweep.
    time_window_vs_rows: f64,
}

impl StoreSpeedups {
    /// True when any compressed scan runs >10% slower than its row-walk
    /// reference (a NaN ratio — a missing scan — also counts).
    fn any_regressed(&self) -> bool {
        [
            self.landuse_hour_vs_rows,
            self.mode_share_vs_rows,
            self.poi_ranks_vs_rows,
            self.time_window_vs_rows,
        ]
        .iter()
        .any(|s| s.is_nan() || *s < 0.9)
    }
}

/// Renders the results document by hand (no JSON dependency in-tree).
fn render_json(
    results: &[ScanResult],
    quick: bool,
    scale: usize,
    snap: &StoreMetricsSnapshot,
    speedups: &StoreSpeedups,
    ingest_fixes_per_sec: f64,
    regression: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"store\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"scans\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"median_ns_per_unit\": {:.1}, \
             \"samples\": {}, \"units_per_sample\": {}}}{}\n",
            r.name,
            r.unit,
            r.median_ns,
            r.samples,
            r.units,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"fix_count\": {},\n", snap.fix_count));
    out.push_str(&format!("  \"fix_blocks\": {},\n", snap.fix_blocks));
    out.push_str(&format!("  \"fix_raw_bytes\": {},\n", snap.fix_raw_bytes));
    out.push_str(&format!(
        "  \"fix_compressed_bytes\": {},\n",
        snap.fix_compressed_bytes
    ));
    out.push_str(&format!(
        "  \"bytes_per_fix\": {:.2},\n",
        snap.bytes_per_fix()
    ));
    out.push_str(&format!(
        "  \"label_bytes_per_tuple\": {:.2},\n",
        snap.label_bytes_per_tuple()
    ));
    out.push_str(&format!(
        "  \"block_skip_rate\": {:.2},\n",
        snap.block_skip_rate()
    ));
    out.push_str(&format!(
        "  \"ingest_fixes_per_sec\": {ingest_fixes_per_sec:.0},\n"
    ));
    out.push_str(&format!(
        "  \"landuse_hour_speedup_vs_rows\": {:.2},\n",
        speedups.landuse_hour_vs_rows
    ));
    out.push_str(&format!(
        "  \"mode_share_speedup_vs_rows\": {:.2},\n",
        speedups.mode_share_vs_rows
    ));
    out.push_str(&format!(
        "  \"poi_ranks_speedup_vs_rows\": {:.2},\n",
        speedups.poi_ranks_vs_rows
    ));
    out.push_str(&format!(
        "  \"time_window_speedup_vs_rows\": {:.2},\n",
        speedups.time_window_vs_rows
    ));
    out.push_str(&format!("  \"regression\": {regression}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_marker_trips_on_any_scan() {
        let ok = StoreSpeedups {
            landuse_hour_vs_rows: 2.0,
            mode_share_vs_rows: 1.8,
            poi_ranks_vs_rows: 1.6,
            time_window_vs_rows: 3.0,
        };
        assert!(!ok.any_regressed());
        assert!(StoreSpeedups {
            landuse_hour_vs_rows: 0.8,
            ..ok
        }
        .any_regressed());
        assert!(StoreSpeedups {
            time_window_vs_rows: f64::NAN,
            ..ok
        }
        .any_regressed());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rs = vec![ScanResult {
            name: "olap_landuse_hour",
            unit: "tuple",
            median_ns: 4.2,
            samples: 3,
            units: 1000,
        }];
        let snap = StoreMetricsSnapshot {
            trajectories: 2,
            episodes: 40,
            ssts: 2,
            fix_count: 10_000,
            fix_blocks: 40,
            fix_raw_bytes: 240_000,
            fix_compressed_bytes: 36_000,
            live_tuples: 80,
            dead_tuples: 0,
            label_bits: 1_360,
            time_queries: 9,
            rect_queries: 0,
            olap_queries: 6,
            ep_blocks_checked: 10,
            ep_blocks_skipped: 7,
            log_bytes: 0,
        };
        let speedups = StoreSpeedups {
            landuse_hour_vs_rows: 2.0,
            mode_share_vs_rows: 1.8,
            poi_ranks_vs_rows: 1.6,
            time_window_vs_rows: 3.0,
        };
        let s = render_json(&rs, true, 1, &snap, &speedups, 1_000_000.0, false);
        assert!(s.contains("\"benchmark\": \"store\""));
        assert!(s.contains("\"bytes_per_fix\": 3.60"));
        assert!(s.contains("\"label_bytes_per_tuple\": 2.12"));
        assert!(s.contains("\"block_skip_rate\": 0.70"));
        assert!(s.contains("\"landuse_hour_speedup_vs_rows\": 2.00"));
        assert!(s.contains("\"time_window_speedup_vs_rows\": 3.00"));
        assert!(s.contains("\"regression\": false"));
        assert!(s.ends_with("}\n"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
