//! Fig. 9: landuse category distribution of taxi trajectories, split into
//! trajectory / move / stop columns, plus the §5.2 compression numbers.
//!
//! Paper shape to reproduce: building areas (1.2) and transportation
//! areas (1.3) together cover ~83% of taxi GPS records; moves dominate
//! the landuse coverage; the semantic representation compresses storage
//! by ~99.7% (distinct cells vs raw records).

use crate::util::{header, pct, Table};
use crate::Scale;
use semitri::core::pipeline::compression_ratio;
use semitri::prelude::*;

/// Runs the Fig. 9 experiment.
pub fn run(scale: Scale) {
    header("Fig. 9 — landuse distribution over taxi data (trajectory / move / stop)");
    let dataset = lausanne_taxis(scale.apply(4), 42);
    println!(
        "  dataset: {} daily trajectories, {} GPS records (seed 42)",
        dataset.tracks.len(),
        dataset.total_records()
    );

    let semitri = SeMiTri::new(
        &dataset.city,
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        },
    );

    let mut all = LanduseDistribution::default();
    let mut stops = LanduseDistribution::default();
    let mut moves = LanduseDistribution::default();
    let mut n_stops = 0usize;
    let mut n_moves = 0usize;
    let mut records = 0usize;
    let mut tuples = 0usize;
    let mut distinct_cells: Vec<u64> = Vec::new();

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        let ann = semitri.region_annotator();
        all.merge(&LanduseDistribution::of_trajectory(ann, &out.cleaned));
        stops.merge(&LanduseDistribution::of_episodes(
            ann,
            &out.cleaned,
            &out.episodes,
            EpisodeKind::Stop,
        ));
        moves.merge(&LanduseDistribution::of_episodes(
            ann,
            &out.cleaned,
            &out.episodes,
            EpisodeKind::Move,
        ));
        let st = EpisodeStats::of(&out.episodes);
        n_stops += st.stops;
        n_moves += st.moves;
        records += out.cleaned.len();
        tuples += out.region_tuples.len();
        distinct_cells.extend(out.region_tuples.iter().map(|t| t.place.id));
    }
    distinct_cells.sort_unstable();
    distinct_cells.dedup();

    println!(
        "  episodes: {} trajectories, {} moves, {} stops (paper: 172 / 1,824 / 1,786)",
        dataset.tracks.len(),
        n_moves,
        n_stops
    );

    let mut t = Table::new(&["landuse", "label", "trajectory", "move", "stop"]);
    for cat in LanduseCategory::ALL {
        if all.count(cat) == 0 && moves.count(cat) == 0 && stops.count(cat) == 0 {
            continue;
        }
        t.row(&[
            cat.code().to_string(),
            cat.label().chars().take(34).collect(),
            pct(all.share(cat)),
            pct(moves.share(cat)),
            pct(stops.share(cat)),
        ]);
    }
    t.print();

    let building_transport =
        all.share(LanduseCategory::Building) + all.share(LanduseCategory::Transportation);
    println!(
        "\n  building (1.2) + transportation (1.3): {} of records (paper: ~83%, 46.6% + 36.1%)",
        pct(building_transport)
    );
    let move_share = moves.total() as f64 / all.total().max(1) as f64;
    println!(
        "  move records cover {} of the landuse area, stops {} (paper: 79.25% / 20.75%)",
        pct(move_share),
        pct(1.0 - move_share)
    );
    println!(
        "  storage compression: {} raw records → {} region tuples ({}), {} distinct cells ({}) — paper: 99.7%",
        records,
        tuples,
        pct(compression_ratio(records, tuples)),
        distinct_cells.len(),
        pct(compression_ratio(records, distinct_cells.len()))
    );
}
