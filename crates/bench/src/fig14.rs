//! Fig. 14: per-user landuse category distribution with top-5 lists.
//!
//! Paper shape to reproduce: building (1.2) + transportation (1.3)
//! dominate for everyone but cover a *smaller* share than for taxis
//! (~61% vs ~83%), and individual users show personality quirks — a
//! lakeside resident with lake records, a hiker with wooded-area records.

use crate::util::{header, pct, Table};
use crate::Scale;
use semitri::prelude::*;

/// Runs the Fig. 14 experiment.
pub fn run(scale: Scale) {
    header("Fig. 14 — per-user landuse distributions and top-5 categories");
    let dataset = smartphone_users(6, scale.apply(7), 42);
    println!(
        "  dataset: 6 users × {} days, {} records (seed 42)",
        scale.apply(7),
        dataset.total_records()
    );
    let annotator = RegionAnnotator::from_landuse(&dataset.city.landuse);

    let mut per_user: Vec<LanduseDistribution> =
        (0..6).map(|_| LanduseDistribution::default()).collect();
    for track in &dataset.tracks {
        per_user[track.object_id as usize].merge(&LanduseDistribution::of_trajectory(
            &annotator,
            &track.to_raw(),
        ));
    }

    // full distribution table
    let mut t = Table::new(&["landuse", "u1", "u2", "u3", "u4", "u5", "u6"]);
    for cat in LanduseCategory::ALL {
        if per_user.iter().all(|d| d.count(cat) == 0) {
            continue;
        }
        let mut cells = vec![cat.code().to_string()];
        for d in &per_user {
            cells.push(pct(d.share(cat)));
        }
        t.row(&cells);
    }
    t.print();

    println!("\n  top-5 categories per user:");
    for (u, d) in per_user.iter().enumerate() {
        let top: Vec<String> = d
            .top_k(5)
            .iter()
            .map(|(c, s)| format!("{} {}", c.code(), pct(*s)))
            .collect();
        println!("    user {}: {}", u + 1, top.join(", "));
    }

    let mut combined = LanduseDistribution::default();
    for d in &per_user {
        combined.merge(d);
    }
    let bt =
        combined.share(LanduseCategory::Building) + combined.share(LanduseCategory::Transportation);
    println!(
        "\n  building + transportation across users: {} (paper: ~61% for people vs ~83% for taxis)",
        pct(bt)
    );
    println!("  paper quirks: user2 hikes in wooded areas (3.10), user3 lives by the lake, user4 downtown.");
}
