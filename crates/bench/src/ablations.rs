//! Ablation studies for the design choices the paper argues for.
//!
//! Each ablation isolates one decision and measures its effect against
//! simulator ground truth:
//!
//! 1. point–segment distance (Eq. 1) vs classical perpendicular distance;
//! 2. global kernel-smoothed scoring (Eqs. 2–4) vs local nearest vs
//!    incremental topological matching;
//! 3. HMM/Viterbi stop annotation vs the one-to-one nearest-POI baseline,
//!    across POI densities;
//! 4. discretized vs exact observation model (accuracy + speed);
//! 5. learned vs default (Fig. 6) transition matrix.

use crate::util::{header, Table};
use crate::Scale;
use semitri::core::line::baseline::{BaselineMetric, NearestSegmentMatcher};
use semitri::core::line::incremental::{IncrementalMatcher, IncrementalParams};
use semitri::core::point::baseline::NearestPoiAnnotator;
use semitri::core::point::learn::{learn_transitions, transition_log_likelihood};
use semitri::core::point::{PointAnnotator, PointParams};
use semitri::prelude::*;
use std::time::Instant;

/// Runs every ablation.
pub fn run(scale: Scale) {
    matching_ablation();
    point_ablation(scale);
    observation_ablation(scale);
    transition_ablation(scale);
}

/// Ablations 1–2: matching metric and scoring strategy.
fn matching_ablation() {
    header("Ablation — map-matching metric and scoring strategy (Seattle drive)");
    let dataset = seattle_drive(42);
    let track = &dataset.tracks[0];
    let truth: Vec<Option<u32>> = track.truth.iter().map(|t| t.segment).collect();
    let roads = &dataset.city.roads;

    let mut t = Table::new(&["matcher", "accuracy", "time"]);
    let mut run = |name: &str, f: &dyn Fn() -> Vec<Option<semitri::core::MatchedPoint>>| {
        let t0 = Instant::now();
        let matches = f();
        let elapsed = t0.elapsed().as_secs_f64();
        let acc = GlobalMapMatcher::accuracy(&matches, &truth);
        t.row(&[
            name.to_string(),
            format!("{:.2}%", acc * 100.0),
            format!("{:.3}s", elapsed),
        ]);
    };

    let global = GlobalMapMatcher::new(roads, MatchParams::default());
    run("global (Eqs. 2-4)", &|| {
        global.match_records(&track.records)
    });

    let incremental = IncrementalMatcher::new(roads, IncrementalParams::default());
    run("incremental topological", &|| {
        incremental.match_records(&track.records)
    });

    let local = NearestSegmentMatcher::new(roads, BaselineMetric::PointSegment, 60.0);
    run("local nearest, Eq. 1 distance", &|| {
        local.match_records(&track.records)
    });

    let perp = NearestSegmentMatcher::new(roads, BaselineMetric::Perpendicular, 60.0);
    run("local nearest, perpendicular", &|| {
        perp.match_records(&track.records)
    });
    t.print();
    println!("  expected ordering: global ≥ incremental ≥ Eq.1-local ≫ perpendicular.");
}

/// Ablation 3: HMM vs nearest-POI across POI densities.
fn point_ablation(scale: Scale) {
    header("Ablation — HMM/Viterbi vs nearest-POI stop annotation, by POI density");
    let mut t = Table::new(&[
        "POIs",
        "labeled stops",
        "HMM accuracy",
        "nearest-POI accuracy",
    ]);
    for poi_count in [1_500usize, 6_000, 20_000] {
        let dataset = milan_cars_with_density(scale.apply(30), poi_count);
        let bounds = dataset.city.bounds();
        let hmm =
            PointAnnotator::new(&dataset.city.pois, bounds, PointParams::default()).expect("POIs");
        let baseline = NearestPoiAnnotator::new(&dataset.city.pois, bounds, 30.0, 75.0);
        let policy = VelocityPolicy::vehicles();

        let mut hmm_ok = 0usize;
        let mut base_ok = 0usize;
        let mut total = 0usize;
        for track in &dataset.tracks {
            let raw = track.to_raw();
            let episodes = policy.segment(&raw);
            // majority ground-truth category per stop episode
            let stops: Vec<&Episode> = episodes
                .iter()
                .filter(|e| e.kind == EpisodeKind::Stop)
                .collect();
            if stops.is_empty() {
                continue;
            }
            let centers: Vec<_> = stops.iter().map(|e| e.center).collect();
            let hmm_out = hmm.annotate_stops(&centers);
            let base_out = baseline.annotate_stops(&centers);
            for ((stop, h), b) in stops.iter().zip(&hmm_out).zip(&base_out) {
                let mut counts = [0usize; 5];
                for (r, tr) in track.records.iter().zip(&track.truth) {
                    if stop.span.contains(r.t) {
                        if let Some(c) = tr.stop_category {
                            counts[c.ordinal()] += 1;
                        }
                    }
                }
                let Some((best, &n)) = counts.iter().enumerate().max_by_key(|&(_, &n)| n) else {
                    continue;
                };
                if n == 0 {
                    continue;
                }
                let truth_cat = PoiCategory::ALL[best];
                total += 1;
                if h.category == truth_cat {
                    hmm_ok += 1;
                }
                if *b == Some(truth_cat) {
                    base_ok += 1;
                }
            }
        }
        t.row(&[
            poi_count.to_string(),
            total.to_string(),
            format!("{:.1}%", 100.0 * hmm_ok as f64 / total.max(1) as f64),
            format!("{:.1}%", 100.0 * base_ok as f64 / total.max(1) as f64),
        ]);
    }
    t.print();
    println!(
        "  dense POIs hurt both annotators; the sequence prior pays off under position error:"
    );

    // second axis: stop-center uncertainty (sparse sampling / indoor
    // losses blur the stop position — the paper's stated hard case)
    let dataset = milan_cars_with_density(scale.apply(30), 6_000);
    let bounds = dataset.city.bounds();
    let hmm =
        PointAnnotator::new(&dataset.city.pois, bounds, PointParams::default()).expect("POIs");
    let baseline = NearestPoiAnnotator::new(&dataset.city.pois, bounds, 30.0, 150.0);
    let policy = VelocityPolicy::vehicles();
    let mut t2 = Table::new(&["center error σ", "HMM accuracy", "nearest-POI accuracy"]);
    for err_sigma in [0.0f64, 25.0, 50.0, 100.0] {
        let mut hmm_ok = 0usize;
        let mut base_ok = 0usize;
        let mut total = 0usize;
        let mut rng_state = 0x5eed_5eedu64;
        let mut gauss = move || {
            // deterministic Box–Muller from an LCG
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u1 = ((rng_state >> 33) as f64 / u32::MAX as f64).max(1e-12);
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u2 = (rng_state >> 33) as f64 / u32::MAX as f64 * std::f64::consts::TAU;
            (-2.0 * u1.ln()).sqrt() * u2.cos()
        };
        for track in &dataset.tracks {
            let raw = track.to_raw();
            let episodes = policy.segment(&raw);
            let stops: Vec<&Episode> = episodes
                .iter()
                .filter(|e| e.kind == EpisodeKind::Stop)
                .collect();
            if stops.is_empty() {
                continue;
            }
            let centers: Vec<_> = stops
                .iter()
                .map(|e| e.center.offset(gauss() * err_sigma, gauss() * err_sigma))
                .collect();
            let hmm_out = hmm.annotate_stops(&centers);
            let base_out = baseline.annotate_stops(&centers);
            for ((stop, h), b) in stops.iter().zip(&hmm_out).zip(&base_out) {
                let mut counts = [0usize; 5];
                for (r, tr) in track.records.iter().zip(&track.truth) {
                    if stop.span.contains(r.t) {
                        if let Some(c) = tr.stop_category {
                            counts[c.ordinal()] += 1;
                        }
                    }
                }
                let Some((best, &n)) = counts.iter().enumerate().max_by_key(|&(_, &n)| n) else {
                    continue;
                };
                if n == 0 {
                    continue;
                }
                let truth_cat = PoiCategory::ALL[best];
                total += 1;
                if h.category == truth_cat {
                    hmm_ok += 1;
                }
                if *b == Some(truth_cat) {
                    base_ok += 1;
                }
            }
        }
        t2.row(&[
            format!("{err_sigma:.0} m"),
            format!("{:.1}%", 100.0 * hmm_ok as f64 / total.max(1) as f64),
            format!("{:.1}%", 100.0 * base_ok as f64 / total.max(1) as f64),
        ]);
    }
    t2.print();
    println!("  the HMM degrades gracefully under position error — the paper's §4.3 motivation.");
}

/// A Milan-style dataset with controllable POI density (trips are
/// synthesized against the same POI set the annotators see, so ground
/// truth stays meaningful at every density).
fn milan_cars_with_density(n_cars: usize, poi_count: usize) -> Dataset {
    semitri::data::presets::milan_cars_with_pois(n_cars, 2, poi_count, 42)
}

/// Ablation 4: discretized vs exact observation model.
fn observation_ablation(scale: Scale) {
    header("Ablation — discretized vs exact observation model");
    let dataset = milan_cars(scale.apply(30), 2, 42);
    let bounds = dataset.city.bounds();
    let policy = VelocityPolicy::vehicles();

    let mut t = Table::new(&["model", "accuracy", "annotate time"]);
    for (name, discretized) in [("discretized grid", true), ("exact Gaussian sums", false)] {
        let annotator = PointAnnotator::new(
            &dataset.city.pois,
            bounds,
            PointParams {
                discretized,
                ..PointParams::default()
            },
        )
        .expect("POIs");
        let mut ok = 0usize;
        let mut total = 0usize;
        let mut elapsed = 0.0f64;
        for track in &dataset.tracks {
            let raw = track.to_raw();
            let episodes = policy.segment(&raw);
            let stops: Vec<&Episode> = episodes
                .iter()
                .filter(|e| e.kind == EpisodeKind::Stop)
                .collect();
            let centers: Vec<_> = stops.iter().map(|e| e.center).collect();
            let t0 = Instant::now();
            let out = annotator.annotate_stops(&centers);
            elapsed += t0.elapsed().as_secs_f64();
            for (stop, ann) in stops.iter().zip(&out) {
                let mut counts = [0usize; 5];
                for (r, tr) in track.records.iter().zip(&track.truth) {
                    if stop.span.contains(r.t) {
                        if let Some(c) = tr.stop_category {
                            counts[c.ordinal()] += 1;
                        }
                    }
                }
                let Some((best, &n)) = counts.iter().enumerate().max_by_key(|&(_, &n)| n) else {
                    continue;
                };
                if n == 0 {
                    continue;
                }
                total += 1;
                if ann.category == PoiCategory::ALL[best] {
                    ok += 1;
                }
            }
        }
        t.row(&[
            name.to_string(),
            format!("{:.1}%", 100.0 * ok as f64 / total.max(1) as f64),
            format!("{:.4}s", elapsed),
        ]);
    }
    t.print();
    println!("  the grid precomputation trades a small accuracy delta for a large decode speedup (§4.3).");
}

/// Ablation 5: learned vs default transition matrix.
fn transition_ablation(scale: Scale) {
    header("Ablation — learned vs Fig. 6 default transition matrix");
    let dataset = milan_cars(scale.apply(60), 3, 42);
    // ground-truth activity sequences from the simulator
    let mut sequences: Vec<Vec<PoiCategory>> = Vec::new();
    for track in &dataset.tracks {
        let mut seq = Vec::new();
        let mut last: Option<PoiCategory> = None;
        for tr in &track.truth {
            if let Some(c) = tr.stop_category {
                if last != Some(c) || seq.is_empty() {
                    seq.push(c);
                }
                last = Some(c);
            } else {
                last = None;
            }
        }
        if seq.len() >= 2 {
            sequences.push(seq);
        }
    }
    let split = sequences.len() * 7 / 10;
    let (train, test) = sequences.split_at(split);
    let learned = learn_transitions(train, 0.5);
    let default = semitri::core::point::hmm::Hmm::default_transitions(5);

    let ll_learned = transition_log_likelihood(&learned, test);
    let ll_default = transition_log_likelihood(&default, test);
    println!(
        "  {} train / {} test activity sequences",
        train.len(),
        test.len()
    );
    println!(
        "  held-out mean log-likelihood per transition: learned {:.3} vs Fig. 6 default {:.3}",
        ll_learned.unwrap_or(f64::NAN),
        ll_default.unwrap_or(f64::NAN)
    );
    println!("  (higher is better; the paper defers transition learning to future work, §4.3)");
}
