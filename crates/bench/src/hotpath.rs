//! `hotpath` — tracked microbenchmarks of the per-fix annotation kernels.
//!
//! Measures the hot paths of all three annotation layers plus the spatial
//! index and the end-to-end pipeline, reporting the median nanoseconds per
//! work unit over repeated samples. The optimized map-matching kernel
//! ([`GlobalMapMatcher::match_records_with`]) is benchmarked against the
//! retained paper-literal reference (`match_records_naive`) on the same
//! machine and inputs, so the reported speedup is a true before/after
//! number for this codebase.
//!
//! The spatial-index and end-to-end kernels are benchmarked as
//! frozen-vs-dynamic *pairs* on identical probes: the [`FrozenRStarTree`]
//! snapshot against the pointer-chasing [`RStarTree`] it was built from,
//! and the frozen-index pipeline (the default) against a
//! [`IndexMode::Dynamic`] pipeline on the same fleet.
//!
//! With `--bench-json PATH` the results are written as a machine-readable
//! JSON document (`BENCH_annotation.json` is the tracked baseline at the
//! repo root); `--quick` shrinks the dataset and sample count for CI
//! smoke runs. The run fails (returns `false`, non-zero process exit)
//! when any paired kernel — the optimized matcher vs the paper-literal
//! reference, or a frozen kernel vs its dynamic baseline — is more than
//! 10% *slower* than its reference — the regression marker CI watches for.

use crate::util::{header, Table};
use crate::Scale;
use semitri::core::point::PointParams;
use semitri::geo::{weight_lanes, KernelMode, Segment, SegmentLanes};
use semitri::index::RStarTree;
use semitri::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Options parsed from the experiment driver's command line.
#[derive(Debug, Default)]
pub struct HotpathOptions {
    /// Shrink dataset and sample counts for a CI smoke run.
    pub quick: bool,
    /// Write the results as JSON to this path.
    pub json_path: Option<String>,
}

/// One measured kernel.
struct KernelResult {
    name: &'static str,
    /// The work unit the median is normalized by.
    unit: &'static str,
    median_ns: f64,
    samples: usize,
    /// Work units processed per sample.
    units: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Runs `f` (one full pass over the workload, returning the number of work
/// units processed) `samples` times and records the median ns per unit.
fn bench(
    name: &'static str,
    unit: &'static str,
    samples: usize,
    mut f: impl FnMut() -> usize,
) -> KernelResult {
    // one untimed warmup settles allocator state, page faults and clocks
    f();
    let mut per_unit = Vec::with_capacity(samples);
    let mut units = 0;
    for _ in 0..samples {
        let t0 = Instant::now();
        units = f();
        let ns = t0.elapsed().as_nanos() as f64;
        per_unit.push(ns / units.max(1) as f64);
    }
    KernelResult {
        name,
        unit,
        median_ns: median(per_unit),
        samples,
        units,
    }
}

/// Times two implementations of the same workload in *interleaved*
/// samples (A, B, A, B, …) after a shared warmup, so the reported ratio
/// is immune to frequency scaling and allocator drift between two
/// separately-timed blocks.
fn bench_pair(
    name_a: &'static str,
    name_b: &'static str,
    unit: &'static str,
    samples: usize,
    mut a: impl FnMut() -> usize,
    mut b: impl FnMut() -> usize,
) -> (KernelResult, KernelResult) {
    a();
    b();
    let mut per_a = Vec::with_capacity(samples);
    let mut per_b = Vec::with_capacity(samples);
    let (mut units_a, mut units_b) = (0, 0);
    for _ in 0..samples {
        let t0 = Instant::now();
        units_a = a();
        per_a.push(t0.elapsed().as_nanos() as f64 / units_a.max(1) as f64);
        let t0 = Instant::now();
        units_b = b();
        per_b.push(t0.elapsed().as_nanos() as f64 / units_b.max(1) as f64);
    }
    (
        KernelResult {
            name: name_a,
            unit,
            median_ns: median(per_a),
            samples,
            units: units_a,
        },
        KernelResult {
            name: name_b,
            unit,
            median_ns: median(per_b),
            samples,
            units: units_b,
        },
    )
}

/// Runs the hotpath microbenchmarks; returns `false` on regression.
pub fn run(scale: Scale, opts: &HotpathOptions) -> bool {
    header("Hotpath — per-fix annotation kernel microbenchmarks");
    let (users, days, samples) = if opts.quick {
        (2, 1, 3)
    } else {
        (4, scale.apply(2), 7)
    };
    let dataset = smartphone_users(users, days, 0x5EED);
    let city = &dataset.city;
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let total_records: usize = raws.iter().map(|r| r.len()).sum();
    println!(
        "  dataset: {} trajectories, {} records (seed 0x5EED, quick={})",
        raws.len(),
        total_records,
        opts.quick
    );

    let region = RegionAnnotator::from_landuse(&city.landuse);
    let semitri = SeMiTri::new(city, PipelineConfig::default());

    // The matcher is benched on dense 1 Hz walking legs through a
    // downtown-density street grid (120 m blocks, the paper's Milan
    // regime) with the candidate cutoff at the top of its sweep range
    // (150 m — urban-canyon error reach): the Eqs. 3–4 neighbor window
    // saturates (W ≈ 40), candidate sets are wide (C ≈ 12, where the
    // O(W·C²) → O(W·C) merge rework dominates the ratio) and consecutive
    // fixes stay in one candidate cell. Sparse 8 s suburban tracks
    // degenerate to W ≈ 1, C ≈ 2 and hide the kernel cost entirely.
    let downtown = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 4_000.0, 4_000.0),
        block: 120.0,
        poi_count: 800,
        ..CityConfig::default()
    });
    let walk_matcher = GlobalMapMatcher::new(
        &downtown.roads,
        MatchParams {
            candidate_radius_m: 150.0,
            ..MatchParams::default()
        },
    );
    let walks: Vec<Vec<GpsRecord>> = (0..if opts.quick { 1 } else { 3 })
        .map(|i| {
            let b = downtown.bounds();
            let start = Point::new(b.width() * 0.15 + i as f64 * 150.0, b.height() * 0.2);
            let dest = Point::new(b.width() * 0.8, b.height() * 0.7 + i as f64 * 110.0);
            let mut sim = TripSimulator::new(
                &downtown.roads,
                SimConfig::default(),
                0x5EED + i as u64,
                start,
                Timestamp(0.0),
            );
            sim.travel_to(dest, TransportMode::Walk);
            sim.finish(100 + i as u64, 1).records
        })
        .collect();
    let walk_fixes: usize = walks.iter().map(|w| w.len()).sum();
    println!("  matcher workload: {walk_fixes} dense 1 Hz fixes, 120 m blocks");

    let mut results: Vec<KernelResult> = Vec::new();

    // --- line layer: optimized kernel vs the retained naive reference ---
    let mut scratch = MatchScratch::new();
    let (opt, naive) = bench_pair(
        "match_records_opt",
        "match_records_naive",
        "fix",
        samples,
        || {
            let mut n = 0;
            for recs in &walks {
                n += recs.len();
                black_box(walk_matcher.match_records_with(&mut scratch, recs));
            }
            n
        },
        || {
            let mut n = 0;
            for recs in &walks {
                n += recs.len();
                black_box(walk_matcher.match_records_naive(recs));
            }
            n
        },
    );
    results.push(opt);
    results.push(naive);

    // --- spatial index: dynamic tree vs its frozen snapshot, paired ---
    // Probes come from the dense downtown walks so every window stays busy
    // (the dense-city regime the frozen layout targets); both sides of
    // each pair sweep the identical probe list over the identical segment
    // set, interleaved, so the ratio is a pure layout effect.
    let seg_tree: RStarTree<u32> = RStarTree::bulk_load(
        downtown
            .roads
            .segments()
            .iter()
            .map(|s| (s.geometry.bbox(), s.id))
            .collect(),
    );
    let frozen_seg_tree = seg_tree.clone().freeze();
    let dense_probes: Vec<Point> = walks
        .iter()
        .flat_map(|w| w.iter())
        .step_by(3)
        .map(|r| r.point)
        .collect();
    let mut frozen_range_scratch = FrozenRangeScratch::new();
    let (dyn_range, frz_range) = bench_pair(
        "rtree_range",
        "frozen_rtree_range",
        "query",
        samples,
        || {
            let mut hits = 0usize;
            for &p in &dense_probes {
                let window = Rect::from_point(p).inflate(60.0);
                seg_tree.for_each_in(&window, |_, &id| hits += id as usize & 1);
            }
            black_box(hits);
            dense_probes.len()
        },
        || {
            let mut hits = 0usize;
            for &p in &dense_probes {
                let window = Rect::from_point(p).inflate(60.0);
                frozen_seg_tree.for_each_in_with(&mut frozen_range_scratch, &window, |_, &id| {
                    hits += id as usize & 1
                });
            }
            black_box(hits);
            dense_probes.len()
        },
    );
    results.push(dyn_range);
    results.push(frz_range);

    // --- precomputed oracle: O(1) slab lookup vs the frozen tree walk ---
    // The oracle is built over the very same frozen tree with the query
    // radius of the range workload above, so both legs of the pair answer
    // the identical candidate question on the identical probes — the ratio
    // is purely slab-lookup vs tree-walk. The frozen leg re-runs here
    // (interleaved with the oracle leg) rather than borrowing the earlier
    // pair's timing, keeping the ratio immune to drift between blocks.
    let seg_oracle = CellOracle::build(&frozen_seg_tree, 60.0, 60.0, DEFAULT_ORACLE_MARGIN_M);
    let arena = OracleArena {
        cells: seg_oracle.cell_count(),
        slots: seg_oracle.slot_count(),
        arena_bytes: seg_oracle.arena_bytes(),
        bytes_per_cell: seg_oracle.bytes_per_cell(),
    };
    // sanity outside the timed region: both legs count the same hits
    {
        let (mut via_oracle, mut via_tree) = (0usize, 0usize);
        for &p in &dense_probes {
            let window = Rect::from_point(p).inflate(60.0);
            let (rects, items) = seg_oracle.candidates(p).expect("probes are in bounds");
            for (r, &id) in rects.iter().zip(items) {
                if r.intersects(&window) {
                    via_oracle += id as usize & 1;
                }
            }
            frozen_seg_tree.for_each_in_with(&mut frozen_range_scratch, &window, |_, &id| {
                via_tree += id as usize & 1
            });
        }
        assert_eq!(via_oracle, via_tree, "oracle/tree candidate sets diverged");
    }
    let (oracle_cand, frz_range_ref) = bench_pair(
        "oracle_candidates",
        "frozen_rtree_range_ref",
        "query",
        samples,
        || {
            let mut hits = 0usize;
            for &p in &dense_probes {
                let window = Rect::from_point(p).inflate(60.0);
                if let Some((rects, items)) = seg_oracle.candidates(p) {
                    for (r, &id) in rects.iter().zip(items) {
                        if r.intersects(&window) {
                            hits += id as usize & 1;
                        }
                    }
                }
            }
            black_box(hits);
            dense_probes.len()
        },
        || {
            let mut hits = 0usize;
            for &p in &dense_probes {
                let window = Rect::from_point(p).inflate(60.0);
                frozen_seg_tree.for_each_in_with(&mut frozen_range_scratch, &window, |_, &id| {
                    hits += id as usize & 1
                });
            }
            black_box(hits);
            dense_probes.len()
        },
    );
    results.push(oracle_cand);
    results.push(frz_range_ref);

    // kNN is benched in the point layer's shape — k nearest POI centers
    // under plain point distance (the per-stop retrieval of Algorithm 2) —
    // so the pair measures the index traversal and heap, not the segment
    // geometry kernel.
    let poi_tree: RStarTree<Point> = RStarTree::bulk_load(
        downtown
            .pois
            .pois()
            .iter()
            .map(|poi| (Rect::from_point(poi.point), poi.point))
            .collect(),
    );
    let frozen_poi_tree = poi_tree.clone().freeze();
    let mut dyn_knn_scratch = NearestScratch::new();
    let mut frozen_knn_scratch = FrozenNearestScratch::new();
    let (dyn_knn, frz_knn) = bench_pair(
        "rtree_knn",
        "frozen_rtree_knn",
        "query",
        samples,
        || {
            for &p in &dense_probes {
                black_box(poi_tree.nearest_by_with(&mut dyn_knn_scratch, p, 4, |c| c.distance(p)));
            }
            dense_probes.len()
        },
        || {
            for &p in &dense_probes {
                black_box(
                    frozen_poi_tree
                        .nearest_by_with(&mut frozen_knn_scratch, p, 4, |c| c.distance(p)),
                );
            }
            dense_probes.len()
        },
    );
    results.push(dyn_knn);
    results.push(frz_knn);

    // --- frozen range: the production dispatch vs the scalar reference ---
    // Same tree, same probes, same windows. The paired leg runs
    // `for_each_in_with`, the compile-time dispatch the matcher actually
    // calls (lane masks on ≥AVX targets, the scalar loops at the SSE2
    // baseline) — the 0.9x marker guards the production path against its
    // retained reference on whatever target CI builds for. The raw 8-wide
    // mask-then-resolve body is additionally reported unpaired
    // (`frozen_range_lanes_forced`) so narrow-SIMD targets still surface
    // its true cost without tripping the marker on a dispatch that never
    // selects it there.
    let mut lane_range_scratch = FrozenRangeScratch::new();
    let mut scalar_range_scratch = FrozenRangeScratch::new();
    // Two probe sweeps per sample: one sweep is only a few hundred
    // microseconds, and this pair's legs are identical code on non-AVX
    // targets, so jitter is all that separates them from a 1.00 ratio.
    const RANGE_PASSES: usize = 2;
    let (frz_lanes, frz_scalar) = bench_pair(
        "frozen_range_lanes",
        "frozen_range_scalar",
        "query",
        samples,
        || {
            let mut hits = 0usize;
            for _ in 0..RANGE_PASSES {
                for &p in &dense_probes {
                    let window = Rect::from_point(p).inflate(60.0);
                    frozen_seg_tree.for_each_in_with(&mut lane_range_scratch, &window, |_, &id| {
                        hits += id as usize & 1
                    });
                }
            }
            black_box(hits);
            RANGE_PASSES * dense_probes.len()
        },
        || {
            let mut hits = 0usize;
            for _ in 0..RANGE_PASSES {
                for &p in &dense_probes {
                    let window = Rect::from_point(p).inflate(60.0);
                    frozen_seg_tree.for_each_in_scalar_with(
                        &mut scalar_range_scratch,
                        &window,
                        |_, &id| hits += id as usize & 1,
                    );
                }
            }
            black_box(hits);
            RANGE_PASSES * dense_probes.len()
        },
    );
    results.push(frz_lanes);
    results.push(frz_scalar);
    results.push(bench("frozen_range_lanes_forced", "query", samples, || {
        let mut hits = 0usize;
        for _ in 0..RANGE_PASSES {
            for &p in &dense_probes {
                let window = Rect::from_point(p).inflate(60.0);
                frozen_seg_tree.for_each_in_lanes_with(
                    &mut lane_range_scratch,
                    &window,
                    |_, &id| hits += id as usize & 1,
                );
            }
        }
        black_box(hits);
        RANGE_PASSES * dense_probes.len()
    }));

    // --- Eq. 1 batched distances: SegmentLanes slab vs scalar Segment ---
    // The whole downtown segment set as one SoA slab, probed by the dense
    // walk fixes — the matcher's candidate-distance shape at its widest.
    let seg_slab = {
        let mut l = SegmentLanes::new();
        for s in downtown.roads.segments() {
            l.push(s.geometry);
        }
        l
    };
    let scalar_segs: Vec<Segment> = downtown
        .roads
        .segments()
        .iter()
        .map(|s| s.geometry)
        .collect();
    let slab_probes: Vec<Point> = dense_probes.iter().copied().step_by(4).collect();
    let mut batch_dist_out: Vec<f64> = Vec::new();
    let mut scalar_dist_out: Vec<f64> = Vec::new();
    let (dist_batch, dist_scalar) = bench_pair(
        "segment_distance_batch",
        "segment_distance_scalar",
        "distance",
        samples,
        || {
            let mut acc = 0.0f64;
            for &p in &slab_probes {
                seg_slab.distances_to_point(p, &mut batch_dist_out);
                acc += batch_dist_out[0];
            }
            black_box(acc);
            slab_probes.len() * seg_slab.len()
        },
        || {
            let mut acc = 0.0f64;
            for &p in &slab_probes {
                scalar_dist_out.clear();
                scalar_dist_out.extend(scalar_segs.iter().map(|s| s.distance_to_point(p)));
                acc += scalar_dist_out[0];
            }
            black_box(acc);
            slab_probes.len() * scalar_segs.len()
        },
    );
    results.push(dist_batch);
    results.push(dist_scalar);

    // --- Eq. 4 weight rows: chunked lane kernel vs the libm exp loop ---
    // Neighbor distances sweep the kernel's real operating range [0, R];
    // the lane leg runs KernelMode::Fast (the vectorizable polynomial with
    // the documented EXP_FAST_REL_TOL bound), the scalar leg is the naive
    // per-pair `(-d²·inv2σ²).exp()` the matcher used to emit. The Exact
    // lane mode is reported unpaired — it calls the same libm exp per
    // element, so its value is the bit-identity, not throughput.
    let weight_d: Vec<f64> = (0..4096).map(|i| 30.0 * (i as f64 / 4095.0)).collect();
    let mut w_out = vec![0.0f64; weight_d.len()];
    let mut w_out_scalar = vec![0.0f64; weight_d.len()];
    let inv_two_sigma_sq = {
        let sigma = 0.5 * 30.0;
        1.0 / (2.0 * sigma * sigma)
    };
    // Enough passes that one sample runs ~1 ms: a 4096-element row is only
    // ~15 µs of work, and scheduler jitter on that scale dominated the
    // pair ratio.
    const WEIGHT_PASSES: usize = 64;
    let (w_rows, w_scalar) = bench_pair(
        "kernel_weight_rows",
        "kernel_weight_scalar",
        "weight",
        samples,
        || {
            for _ in 0..WEIGHT_PASSES {
                weight_lanes(&weight_d, inv_two_sigma_sq, KernelMode::Fast, &mut w_out);
                black_box(&w_out);
            }
            WEIGHT_PASSES * weight_d.len()
        },
        || {
            for _ in 0..WEIGHT_PASSES {
                for (o, &d) in w_out_scalar.iter_mut().zip(&weight_d) {
                    *o = (-d * d * inv_two_sigma_sq).exp();
                }
                black_box(&w_out_scalar);
            }
            WEIGHT_PASSES * weight_d.len()
        },
    );
    results.push(w_rows);
    results.push(w_scalar);
    results.push(bench("kernel_weight_rows_exact", "weight", samples, || {
        for _ in 0..WEIGHT_PASSES {
            weight_lanes(&weight_d, inv_two_sigma_sq, KernelMode::Exact, &mut w_out);
            black_box(&w_out);
        }
        WEIGHT_PASSES * weight_d.len()
    }));

    let probes: Vec<Point> = raws
        .iter()
        .flat_map(|r| r.records())
        .step_by(7)
        .map(|r| r.point)
        .collect();

    // --- region layer: index build (interned labels) and Algorithm 1 ---
    results.push(bench("region_build", "cell", samples, || {
        black_box(RegionAnnotator::from_landuse(&city.landuse)).len()
    }));
    results.push(bench("region_annotate", "record", samples, || {
        let mut n = 0;
        for raw in &raws {
            n += raw.len();
            black_box(region.annotate_trajectory(raw));
        }
        n
    }));

    // --- point layer: HMM stop annotation over synthetic stop centers ---
    let centers: Vec<Point> = probes.iter().copied().step_by(5).take(200).collect();
    let point_result = PointAnnotator::new(&city.pois, city.bounds(), PointParams::default());
    if let Ok(point) = &point_result {
        results.push(bench("point_annotate_stops", "stop", samples, || {
            black_box(point.annotate_stops(&centers));
            centers.len()
        }));
    }

    // --- end to end: frozen-index pipeline (the default) vs dynamic ---
    let semitri_dynamic = SeMiTri::new(
        city,
        PipelineConfig {
            index_mode: IndexMode::Dynamic,
            ..PipelineConfig::default()
        },
    );
    let (frz_e2e, dyn_e2e) = bench_pair(
        "pipeline_annotate",
        "pipeline_annotate_dynamic",
        "record",
        samples,
        || {
            let mut n = 0;
            for raw in &raws {
                n += raw.len();
                black_box(semitri.annotate(raw));
            }
            n
        },
        || {
            let mut n = 0;
            for raw in &raws {
                n += raw.len();
                black_box(semitri_dynamic.annotate(raw));
            }
            n
        },
    );
    results.push(frz_e2e);
    results.push(dyn_e2e);

    // --- raster burn: per-thread tile accumulators vs one serial grid ---
    // The city-scale aggregation workload: the annotated fleet burned into
    // the 27-layer density stack. The tiled leg shards the corpus across
    // workers (each filling a private grid, merged at the end — the
    // result is bit-identical to serial by u64-sum commutativity).
    // `burn_all` itself sheds workers below its per-worker fix threshold,
    // so the tiled leg measures the dispatch callers actually get — on a
    // small corpus both legs run the serial path and the pair reports
    // ~1.0x instead of penalizing thread spawns nobody would pay.
    let outputs: Vec<PipelineOutput> = raws.iter().map(|raw| semitri.annotate(raw)).collect();
    let burned_fixes: usize = outputs.iter().map(|o| o.cleaned.len()).sum();
    let raster_cfg = RasterConfig {
        bounds: city.bounds(),
        cell_m: 50.0,
    };
    let burn_requested = if opts.quick {
        1
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(4)
    };
    let burn_threads = effective_workers(&outputs, burn_requested);
    // Several burns per sample so one sample is long enough that scheduler
    // jitter stays well inside the 10% regression margin (one burn of a
    // scale-1 corpus is only a few hundred microseconds).
    const BURN_PASSES: usize = 4;
    let (burn_tiles, burn_serial) = bench_pair(
        "raster_burn",
        "raster_burn_serial",
        "fix",
        samples,
        || {
            for _ in 0..BURN_PASSES {
                black_box(burn_all(raster_cfg, &outputs, &city.roads, burn_threads));
            }
            BURN_PASSES * burned_fixes
        },
        || {
            for _ in 0..BURN_PASSES {
                black_box(burn_all(raster_cfg, &outputs, &city.roads, 1));
            }
            BURN_PASSES * burned_fixes
        },
    );
    results.push(burn_tiles);
    results.push(burn_serial);

    // --- generation swaps: annotation throughput while publishes land ---
    let swaps = swap_sweep(city, &raws, if opts.quick { 1 } else { 2 });

    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let speedups = Speedups {
        match_vs_naive: ns_of("match_records_naive") / ns_of("match_records_opt"),
        frozen_range_vs_dynamic: ns_of("rtree_range") / ns_of("frozen_rtree_range"),
        frozen_knn_vs_dynamic: ns_of("rtree_knn") / ns_of("frozen_rtree_knn"),
        frozen_pipeline_vs_dynamic: ns_of("pipeline_annotate_dynamic") / ns_of("pipeline_annotate"),
        oracle_vs_frozen_range: ns_of("frozen_rtree_range_ref") / ns_of("oracle_candidates"),
        frozen_range_lanes_vs_scalar: ns_of("frozen_range_scalar") / ns_of("frozen_range_lanes"),
        segment_distance_batch_vs_scalar: ns_of("segment_distance_scalar")
            / ns_of("segment_distance_batch"),
        kernel_weight_rows_vs_scalar: ns_of("kernel_weight_scalar") / ns_of("kernel_weight_rows"),
        raster_burn_vs_serial: ns_of("raster_burn_serial") / ns_of("raster_burn"),
    };
    let e2e_records_per_sec = 1e9 / ns_of("pipeline_annotate");
    let raster_fixes_per_sec = 1e9 / ns_of("raster_burn");
    // regression marker: no paired kernel may run >10% slower than its
    // reference on the same inputs (NaN — a missing kernel — also trips
    // it): the optimized matcher vs the paper-literal reference, and each
    // frozen kernel (range, kNN, end-to-end pipeline) vs its dynamic
    // baseline
    let regression = speedups.any_regressed();

    let mut t = Table::new(&["kernel", "median", "unit", "samples", "units/sample"]);
    for r in &results {
        t.row(&[
            r.name.to_string(),
            format!("{:.0} ns", r.median_ns),
            format!("per {}", r.unit),
            r.samples.to_string(),
            r.units.to_string(),
        ]);
    }
    t.print();
    println!(
        "  match_records speedup vs naive reference: {:.2}x",
        speedups.match_vs_naive
    );
    println!(
        "  frozen rtree_range speedup vs dynamic tree: {:.2}x",
        speedups.frozen_range_vs_dynamic
    );
    println!(
        "  frozen rtree_knn speedup vs dynamic tree: {:.2}x",
        speedups.frozen_knn_vs_dynamic
    );
    println!(
        "  frozen pipeline speedup vs dynamic indexes: {:.2}x",
        speedups.frozen_pipeline_vs_dynamic
    );
    println!(
        "  oracle candidate slab speedup vs frozen rtree_range: {:.2}x",
        speedups.oracle_vs_frozen_range
    );
    println!(
        "  frozen_range_lanes speedup vs scalar loops: {:.2}x",
        speedups.frozen_range_lanes_vs_scalar
    );
    println!(
        "  segment_distance_batch speedup vs scalar segments: {:.2}x",
        speedups.segment_distance_batch_vs_scalar
    );
    println!(
        "  kernel_weight_rows speedup vs scalar exp loop: {:.2}x",
        speedups.kernel_weight_rows_vs_scalar
    );
    println!(
        "  raster_burn dispatch speedup vs forced-serial grid: {:.2}x ({burn_threads} worker(s) of {burn_requested} offered, {:.0} fixes/s)",
        speedups.raster_burn_vs_serial, raster_fixes_per_sec
    );
    println!(
        "  oracle arena: {} cells, {} slots, {} bytes ({:.1} bytes/cell)",
        arena.cells, arena.slots, arena.arena_bytes, arena.bytes_per_cell
    );
    println!("  end-to-end pipeline: {e2e_records_per_sec:.0} records/s");
    println!(
        "  generation swaps: {} publishes, median rebuild {:.1} ms, \
         annotate {:.0} rec/s idle vs {:.0} rec/s under publishes ({:.2}x)",
        swaps.publishes,
        swaps.rebuild_ms_median,
        swaps.idle_records_per_sec,
        swaps.contended_records_per_sec,
        swaps.throughput_ratio(),
    );
    if regression {
        println!("  REGRESSION: a tracked kernel is >10% slower than its paired reference");
    }

    if let Some(path) = &opts.json_path {
        let json = render_json(
            &results,
            opts.quick,
            scale.0,
            &speedups,
            &arena,
            &swaps,
            raster_fixes_per_sec,
            burn_threads,
            regression,
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => {
                eprintln!("  failed to write {path}: {e}");
                return false;
            }
        }
    }
    !regression
}

/// The update-rate sweep: fleet-annotation throughput with the mutation
/// log idle versus with a publisher thread rebuilding and swapping
/// generations back to back, plus the rebuild cost itself. The ratio is
/// the tentpole claim in one number — publishes must not pause readers —
/// but it is reported, not gated: on a small runner the rebuild thread
/// legitimately competes for cores with the annotation thread.
struct SwapSweep {
    publishes: usize,
    rebuild_ms_median: f64,
    idle_records_per_sec: f64,
    contended_records_per_sec: f64,
}

impl SwapSweep {
    fn throughput_ratio(&self) -> f64 {
        if self.idle_records_per_sec > 0.0 {
            self.contended_records_per_sec / self.idle_records_per_sec
        } else {
            0.0
        }
    }
}

/// Annotates the fleet `passes` times on a [`LiveSeMiTri`], once with no
/// publisher and once with a thread submitting one POI per publish and
/// swapping generations continuously (at least one swap lands even if
/// annotation finishes first).
fn swap_sweep(city: &City, raws: &[RawTrajectory], passes: usize) -> SwapSweep {
    use std::sync::atomic::{AtomicBool, Ordering};

    let live = LiveSeMiTri::new(city.clone(), PipelineConfig::default, None);
    let annotate_fleet = |live: &LiveSeMiTri| {
        let mut n = 0usize;
        let t0 = Instant::now();
        for _ in 0..passes {
            for raw in raws {
                n += raw.len();
                black_box(live.annotate(raw));
            }
        }
        n as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };

    let idle_records_per_sec = annotate_fleet(&live);

    let stop = AtomicBool::new(false);
    let center = city.bounds().center();
    let (contended_records_per_sec, rebuild_ms) = std::thread::scope(|scope| {
        let publisher = scope.spawn(|| {
            let mut ms = Vec::new();
            let mut i = 0u64;
            loop {
                live.submit(Mutation::AddPoi {
                    point: Point::new(center.x + (i % 97) as f64, center.y - (i % 89) as f64),
                    category: PoiCategory::Feedings,
                    name: format!("sweep poi {i}"),
                })
                .expect("in-bounds poi");
                let t0 = Instant::now();
                black_box(live.publish());
                ms.push(t0.elapsed().as_secs_f64() * 1e3);
                i += 1;
                if stop.load(Ordering::Relaxed) {
                    return ms;
                }
            }
        });
        let rps = annotate_fleet(&live);
        stop.store(true, Ordering::Relaxed);
        (rps, publisher.join().expect("publisher thread"))
    });

    SwapSweep {
        publishes: rebuild_ms.len(),
        rebuild_ms_median: median(rebuild_ms),
        idle_records_per_sec,
        contended_records_per_sec,
    }
}

/// The paired-kernel speedup ratios the regression marker watches.
struct Speedups {
    /// Optimized matcher vs the retained paper-literal reference.
    match_vs_naive: f64,
    /// Frozen snapshot range query vs the dynamic R\*-tree.
    frozen_range_vs_dynamic: f64,
    /// Frozen snapshot kNN vs the dynamic R\*-tree.
    frozen_knn_vs_dynamic: f64,
    /// Frozen-index pipeline (the default) vs a dynamic-index pipeline.
    frozen_pipeline_vs_dynamic: f64,
    /// Precomputed per-cell candidate slab vs the frozen tree walk it
    /// replaces, measured interleaved on identical probes and windows.
    oracle_vs_frozen_range: f64,
    /// Chunked 8-wide mask-then-resolve range scan vs the retained scalar
    /// reference loops on the same frozen tree.
    frozen_range_lanes_vs_scalar: f64,
    /// Batched SoA point-segment distance slab vs per-segment scalar calls.
    segment_distance_batch_vs_scalar: f64,
    /// Chunked Eq. 4 weight lanes (`KernelMode::Fast`) vs the naive libm
    /// exp loop.
    kernel_weight_rows_vs_scalar: f64,
    /// Tiled multi-worker raster burn vs one serial grid over the same
    /// corpus (both legs produce bit-identical grids).
    raster_burn_vs_serial: f64,
}

/// Memory cost of the precomputed oracle arena, reported alongside the
/// throughput numbers so the space/time trade stays visible in CI.
struct OracleArena {
    cells: usize,
    slots: usize,
    arena_bytes: usize,
    bytes_per_cell: f64,
}

impl Speedups {
    /// True when any paired kernel runs >10% slower than its reference
    /// (a NaN ratio — a missing kernel — also counts as regressed).
    fn any_regressed(&self) -> bool {
        [
            self.match_vs_naive,
            self.frozen_range_vs_dynamic,
            self.frozen_knn_vs_dynamic,
            self.frozen_pipeline_vs_dynamic,
            self.oracle_vs_frozen_range,
            self.frozen_range_lanes_vs_scalar,
            self.segment_distance_batch_vs_scalar,
            self.kernel_weight_rows_vs_scalar,
            self.raster_burn_vs_serial,
        ]
        .iter()
        .any(|s| s.is_nan() || *s < 0.9)
    }
}

/// Renders the results document by hand (no JSON dependency in-tree).
#[allow(clippy::too_many_arguments)]
fn render_json(
    results: &[KernelResult],
    quick: bool,
    scale: usize,
    speedups: &Speedups,
    arena: &OracleArena,
    swaps: &SwapSweep,
    raster_fixes_per_sec: f64,
    raster_threads: usize,
    regression: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"hotpath\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"median_ns_per_unit\": {:.1}, \
             \"samples\": {}, \"units_per_sample\": {}}}{}\n",
            r.name,
            r.unit,
            r.median_ns,
            r.samples,
            r.units,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"match_records_speedup_vs_naive\": {:.2},\n",
        speedups.match_vs_naive
    ));
    out.push_str(&format!(
        "  \"frozen_rtree_range_speedup_vs_dynamic\": {:.2},\n",
        speedups.frozen_range_vs_dynamic
    ));
    out.push_str(&format!(
        "  \"frozen_rtree_knn_speedup_vs_dynamic\": {:.2},\n",
        speedups.frozen_knn_vs_dynamic
    ));
    out.push_str(&format!(
        "  \"frozen_pipeline_speedup_vs_dynamic\": {:.2},\n",
        speedups.frozen_pipeline_vs_dynamic
    ));
    out.push_str(&format!(
        "  \"oracle_candidates_speedup_vs_frozen_range\": {:.2},\n",
        speedups.oracle_vs_frozen_range
    ));
    out.push_str(&format!(
        "  \"frozen_range_lanes_speedup_vs_scalar\": {:.2},\n",
        speedups.frozen_range_lanes_vs_scalar
    ));
    out.push_str(&format!(
        "  \"segment_distance_batch_speedup_vs_scalar\": {:.2},\n",
        speedups.segment_distance_batch_vs_scalar
    ));
    out.push_str(&format!(
        "  \"kernel_weight_rows_speedup_vs_scalar\": {:.2},\n",
        speedups.kernel_weight_rows_vs_scalar
    ));
    out.push_str(&format!(
        "  \"raster_burn_speedup_vs_serial\": {:.2},\n",
        speedups.raster_burn_vs_serial
    ));
    out.push_str(&format!(
        "  \"raster_burn_fixes_per_sec\": {raster_fixes_per_sec:.0},\n"
    ));
    out.push_str(&format!("  \"raster_burn_threads\": {raster_threads},\n"));
    out.push_str(&format!("  \"oracle_cells\": {},\n", arena.cells));
    out.push_str(&format!("  \"oracle_slots\": {},\n", arena.slots));
    out.push_str(&format!(
        "  \"oracle_arena_bytes\": {},\n",
        arena.arena_bytes
    ));
    out.push_str(&format!(
        "  \"oracle_bytes_per_cell\": {:.1},\n",
        arena.bytes_per_cell
    ));
    out.push_str(&format!("  \"swap_publishes\": {},\n", swaps.publishes));
    out.push_str(&format!(
        "  \"swap_rebuild_ms_median\": {:.1},\n",
        swaps.rebuild_ms_median
    ));
    out.push_str(&format!(
        "  \"swap_idle_records_per_sec\": {:.0},\n",
        swaps.idle_records_per_sec
    ));
    out.push_str(&format!(
        "  \"swap_contended_records_per_sec\": {:.0},\n",
        swaps.contended_records_per_sec
    ));
    out.push_str(&format!(
        "  \"swap_throughput_ratio\": {:.2},\n",
        swaps.throughput_ratio()
    ));
    out.push_str(&format!("  \"regression\": {regression}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rs = vec![KernelResult {
            name: "k",
            unit: "fix",
            median_ns: 12.34,
            samples: 3,
            units: 100,
        }];
        let speedups = Speedups {
            match_vs_naive: 2.5,
            frozen_range_vs_dynamic: 1.4,
            frozen_knn_vs_dynamic: 1.1,
            frozen_pipeline_vs_dynamic: 1.0,
            oracle_vs_frozen_range: 3.2,
            frozen_range_lanes_vs_scalar: 1.6,
            segment_distance_batch_vs_scalar: 2.1,
            kernel_weight_rows_vs_scalar: 3.5,
            raster_burn_vs_serial: 1.9,
        };
        let arena = OracleArena {
            cells: 4489,
            slots: 60000,
            arena_bytes: 2_000_000,
            bytes_per_cell: 445.5,
        };
        let swaps = SwapSweep {
            publishes: 12,
            rebuild_ms_median: 87.5,
            idle_records_per_sec: 1_000_000.0,
            contended_records_per_sec: 900_000.0,
        };
        let s = render_json(
            &rs,
            true,
            1,
            &speedups,
            &arena,
            &swaps,
            1_234_567.0,
            4,
            false,
        );
        assert!(s.contains("\"match_records_speedup_vs_naive\": 2.50"));
        assert!(s.contains("\"frozen_rtree_range_speedup_vs_dynamic\": 1.40"));
        assert!(s.contains("\"frozen_rtree_knn_speedup_vs_dynamic\": 1.10"));
        assert!(s.contains("\"frozen_pipeline_speedup_vs_dynamic\": 1.00"));
        assert!(s.contains("\"oracle_candidates_speedup_vs_frozen_range\": 3.20"));
        assert!(s.contains("\"frozen_range_lanes_speedup_vs_scalar\": 1.60"));
        assert!(s.contains("\"segment_distance_batch_speedup_vs_scalar\": 2.10"));
        assert!(s.contains("\"kernel_weight_rows_speedup_vs_scalar\": 3.50"));
        assert!(s.contains("\"raster_burn_speedup_vs_serial\": 1.90"));
        assert!(s.contains("\"raster_burn_fixes_per_sec\": 1234567"));
        assert!(s.contains("\"raster_burn_threads\": 4"));
        assert!(s.contains("\"oracle_cells\": 4489"));
        assert!(s.contains("\"oracle_slots\": 60000"));
        assert!(s.contains("\"oracle_arena_bytes\": 2000000"));
        assert!(s.contains("\"oracle_bytes_per_cell\": 445.5"));
        assert!(s.contains("\"swap_publishes\": 12"));
        assert!(s.contains("\"swap_rebuild_ms_median\": 87.5"));
        assert!(s.contains("\"swap_throughput_ratio\": 0.90"));
        assert!(s.contains("\"median_ns_per_unit\": 12.3"));
        assert!(s.ends_with("}\n"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn regression_marker_trips_on_any_pair() {
        let ok = Speedups {
            match_vs_naive: 2.5,
            frozen_range_vs_dynamic: 1.4,
            frozen_knn_vs_dynamic: 1.1,
            frozen_pipeline_vs_dynamic: 0.95,
            oracle_vs_frozen_range: 3.0,
            frozen_range_lanes_vs_scalar: 1.6,
            segment_distance_batch_vs_scalar: 2.1,
            kernel_weight_rows_vs_scalar: 3.5,
            raster_burn_vs_serial: 1.9,
        };
        assert!(!ok.any_regressed());
        let slow_frozen = Speedups {
            frozen_range_vs_dynamic: 0.8,
            ..ok
        };
        assert!(slow_frozen.any_regressed());
        let missing_kernel = Speedups {
            frozen_knn_vs_dynamic: f64::NAN,
            ..ok
        };
        assert!(missing_kernel.any_regressed());
        let slow_oracle = Speedups {
            oracle_vs_frozen_range: 0.5,
            ..ok
        };
        assert!(slow_oracle.any_regressed());
        let slow_lanes = Speedups {
            frozen_range_lanes_vs_scalar: 0.7,
            ..ok
        };
        assert!(slow_lanes.any_regressed());
        let slow_raster = Speedups {
            raster_burn_vs_serial: 0.85,
            ..ok
        };
        assert!(slow_raster.any_regressed());
    }
}
