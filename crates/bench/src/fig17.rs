//! Fig. 17: per-layer latency of processing phone trajectories.
//!
//! Paper shape to reproduce (mean seconds per daily trajectory on their
//! 2010 hardware): compute episode 0.008 ≪ map match 0.162 < store match
//! 0.292 < landuse join 0.088 ≪ **store episode 3.959** — storage into
//! the (PostGIS) trajectory store dominates everything. We persist into
//! the durable, fsync-per-batch store to preserve that ordering.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;
use std::time::Instant;

/// Runs the Fig. 17 latency experiment.
pub fn run(scale: Scale) {
    header("Fig. 17 — per-layer latency per daily trajectory (6 users)");
    let dataset = smartphone_users(6, scale.apply(5), 42);
    println!(
        "  dataset: {} daily trajectories, {} GPS records (seed 42)",
        dataset.tracks.len(),
        dataset.total_records()
    );

    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());

    let path = std::env::temp_dir().join(format!("semitri_fig17_{}.stlog", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = SemanticTrajectoryStore::open_durable(&path).expect("open store");

    // per-user latency summaries
    let mut per_user: Vec<LatencySummary> = (0..6).map(|_| LatencySummary::default()).collect();
    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());

        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: track.trajectory_id,
                object_id: track.object_id,
                record_count: out.cleaned.len() as u64,
            })
            .expect("meta stored");

        // store episodes — the paper's dominant cost; we store them one
        // batch per episode (each synced) to model per-row inserts
        let t0 = Instant::now();
        for e in &out.episodes {
            store
                .put_episodes(track.trajectory_id, std::slice::from_ref(e))
                .expect("episode stored");
        }
        let store_episode = t0.elapsed().as_secs_f64();

        // store the matched/annotated result (one synced batch)
        let t0 = Instant::now();
        store.put_sst(&out.sst).expect("sst stored");
        let store_match = t0.elapsed().as_secs_f64();

        per_user[track.object_id as usize].add(&out.latency, store_episode, store_match);
    }

    let mut t = Table::new(&[
        "user",
        "compute episode",
        "store episode",
        "map match",
        "store match",
        "landuse join",
    ]);
    let mut all = LatencySummary::default();
    for (u, s) in per_user.iter().enumerate() {
        let m = s.means();
        t.row(&[
            (u + 1).to_string(),
            format!("{:.3}ms", m.compute_episode_secs * 1e3),
            format!("{:.3}ms", s.mean_store_episode() * 1e3),
            format!("{:.3}ms", m.map_match_secs * 1e3),
            format!("{:.3}ms", s.mean_store_match() * 1e3),
            format!("{:.3}ms", m.landuse_join_secs * 1e3),
        ]);
        all.add(&m, s.mean_store_episode(), s.mean_store_match());
    }
    t.print();

    let m = all.means();
    println!(
        "\n  means: compute {:.3}ms | store episode {:.3}ms | map match {:.3}ms | store match {:.3}ms | landuse {:.3}ms",
        m.compute_episode_secs * 1e3,
        all.mean_store_episode() * 1e3,
        m.map_match_secs * 1e3,
        all.mean_store_match() * 1e3,
        m.landuse_join_secs * 1e3
    );
    println!(
        "  paper means: 0.008 / 3.959 / 0.162 / 0.292 / 0.088 s — storing dominates computing."
    );

    let _ = std::fs::remove_file(&path);
}
