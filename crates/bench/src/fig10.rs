//! Fig. 10: map-matching accuracy sensitivity w.r.t. the global-view
//! radius `R` and the kernel bandwidth `σ`.
//!
//! Paper shape to reproduce: accuracy lives in a ~90–96% band on the
//! Seattle benchmark; small `R` (≈2) with `σ = 0.5R` is already at the
//! top of the band, and accuracy degrades gently as `σ` grows past `R`.
//! `R` is dimensionless in the paper; we interpret it in units of the
//! mean GPS point spacing.

use crate::util::{header, Table};
use crate::Scale;
use semitri::core::line::baseline::{BaselineMetric, NearestSegmentMatcher};
use semitri::prelude::*;

/// Runs the Fig. 10 sensitivity sweep plus the baseline comparison.
pub fn run(_scale: Scale) {
    header("Fig. 10 — map-matching accuracy vs global view radius R and kernel width σ");
    let dataset = seattle_drive(42);
    let track = &dataset.tracks[0];
    let truth: Vec<Option<u32>> = track.truth.iter().map(|t| t.segment).collect();
    let raw = track.to_raw();
    let spacing = {
        let dt = raw.mean_sampling_interval().unwrap_or(1.0);
        (raw.path_length() / (raw.len().max(2) - 1) as f64).max(dt) // meters per fix
    };
    println!(
        "  benchmark: {} GPS records over {} road segments, mean point spacing {:.1} m (seed 42)",
        track.len(),
        dataset.city.roads.segments().len(),
        spacing
    );

    let sigmas = [0.5, 1.0, 1.5, 2.0];
    let mut t = Table::new(&["R", "σ=0.5R", "σ=1R", "σ=1.5R", "σ=2R"]);
    for r in 1..=5usize {
        let mut cells = vec![format!("{r}")];
        for &sf in &sigmas {
            let matcher = GlobalMapMatcher::new(
                &dataset.city.roads,
                MatchParams {
                    radius_m: r as f64 * spacing,
                    sigma_factor: sf,
                    ..MatchParams::default()
                },
            );
            let matches = matcher.match_records(&track.records);
            let acc = GlobalMapMatcher::accuracy(&matches, &truth);
            cells.push(format!("{:.2}%", acc * 100.0));
        }
        t.row(&cells);
    }
    t.print();

    println!("\n  baselines on the same drive:");
    let mut b = Table::new(&["matcher", "accuracy"]);
    for (name, metric) in [
        (
            "local nearest (Eq. 1 point-segment)",
            BaselineMetric::PointSegment,
        ),
        (
            "local nearest (perpendicular)",
            BaselineMetric::Perpendicular,
        ),
    ] {
        let m = NearestSegmentMatcher::new(&dataset.city.roads, metric, 60.0);
        let acc = GlobalMapMatcher::accuracy(&m.match_records(&track.records), &truth);
        b.row(&[name.to_string(), format!("{:.2}%", acc * 100.0)]);
    }
    b.print();
    println!("\n  paper: global matching in a 90–96% band, best near R=2, σ=0.5R.");
}
