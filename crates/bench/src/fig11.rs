//! Fig. 11: POI / stop / trajectory category distributions on the Milan
//! private-car data.
//!
//! Paper shape to reproduce: the stop distribution concentrates on *item
//! sale* (~56%) and *person life* (~24%) — private-car stops are shopping
//! and leisure — and the trajectory distribution (Eq. 8 classification)
//! statistically tracks the stop distribution because trajectories
//! average only ~1.7 stops.

use crate::util::{header, pct, Table};
use crate::Scale;
use semitri::prelude::*;

/// Runs the Fig. 11 experiment.
pub fn run(scale: Scale) {
    header("Fig. 11 — semantic stops/trajectories by point annotation (Milan cars)");
    let dataset = milan_cars(scale.apply(40), 2, 42);
    println!(
        "  dataset: {} cars, {} daily trajectories, {} GPS records (seed 42)",
        dataset.object_count(),
        dataset.tracks.len(),
        dataset.total_records()
    );

    let semitri = SeMiTri::new(
        &dataset.city,
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        },
    );

    let poi_shares = CategoryShares::from_counts(dataset.city.pois.category_histogram());
    let mut stop_shares = CategoryShares::default();
    let mut traj_shares = CategoryShares::default();
    let mut total_stops = 0usize;

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        for (_, ann) in &out.stop_annotations {
            stop_shares.add(ann.category);
            total_stops += 1;
        }
        let pairs: Vec<_> = out
            .stop_annotations
            .iter()
            .map(|(i, a)| (&out.episodes[*i], a))
            .collect();
        if let Some(cat) = trajectory_category(&pairs) {
            traj_shares.add(cat);
        }
    }

    let mut t = Table::new(&["category", "POI", "stop", "trajectory"]);
    for cat in PoiCategory::ALL {
        t.row(&[
            cat.label().to_string(),
            pct(poi_shares.share(cat)),
            pct(stop_shares.share(cat)),
            pct(traj_shares.share(cat)),
        ]);
    }
    t.print();
    println!(
        "\n  {} stops over {} trajectories ({:.1} stops/trajectory; paper: 1.7)",
        total_stops,
        dataset.tracks.len(),
        total_stops as f64 / dataset.tracks.len().max(1) as f64
    );
    println!("  paper: stops ≈ 56.3% item sale, 24.2% person life; trajectory column tracks the stop column.");
}
