//! Small output helpers shared by the experiment modules.

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// A fixed-width text table printer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with header cells.
    pub fn new(headers: &[&str]) -> Self {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.push_row(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "row arity mismatch");
        self.push_row(cells.to_vec());
    }

    fn push_row(&mut self, cells: Vec<String>) {
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Renders the table with a separator under the header.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("  {}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("  {}", sep.join("  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "long header"]);
        t.row(&["x".to_string(), "y".to_string()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a"]);
        t.row(&["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4266), "42.66%");
    }
}
