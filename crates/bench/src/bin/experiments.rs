//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <table1|table2|fig9|...|fig17|ablations|throughput|all> [--scale N]
//! ```

use semitri_bench::{
    ablations, faults, fig10, fig11, fig12_13, fig14, fig15_16, fig17, fig9, hotpath, server_load,
    store, tables, throughput, Scale,
};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|fig9|...|fig17|ablations|throughput|faults|hotpath|server-load|store|all> \
         [--scale N] [--quick] [--bench-json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale(1);
    let mut hotpath_opts = hotpath::HotpathOptions::default();
    let mut server_load_opts = server_load::ServerLoadOptions::default();
    let mut store_opts = store::StoreOptions::default();
    let mut which: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    usage();
                };
                scale = Scale(v.max(1));
            }
            "--quick" => {
                hotpath_opts.quick = true;
                server_load_opts.quick = true;
                store_opts.quick = true;
            }
            "--bench-json" => {
                let Some(p) = it.next() else { usage() };
                hotpath_opts.json_path = Some(p.clone());
                server_load_opts.json_path = Some(p.clone());
                store_opts.json_path = Some(p);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        usage();
    }
    let mut failed = false;

    for w in which {
        match w.as_str() {
            "table1" => tables::table1(scale),
            "table2" => tables::table2(scale),
            "fig9" => fig9::run(scale),
            "fig10" => fig10::run(scale),
            "fig11" => fig11::run(scale),
            "fig12" => fig12_13::fig12(scale),
            "fig13" => fig12_13::fig13(scale),
            "fig14" => fig14::run(scale),
            "fig15" => fig15_16::fig15(scale),
            "fig16" => fig15_16::fig16(scale),
            "fig17" => fig17::run(scale),
            "ablations" => ablations::run(scale),
            "throughput" => throughput::run(scale),
            "faults" => faults::run(scale),
            "hotpath" => failed |= !hotpath::run(scale, &hotpath_opts),
            "server-load" => failed |= !server_load::run(scale, &server_load_opts),
            "store" => failed |= !store::run(scale, &store_opts),
            "all" => {
                // microbenchmarks first: they want the quiet heap a
                // standalone `hotpath` run gets, not one pre-fragmented by
                // fourteen experiments
                failed |= !hotpath::run(scale, &hotpath_opts);
                // store scans share the quiet-heap preference; run them
                // without a json path so `all` never clobbers a tracked
                // baseline written by a dedicated run
                failed |= !store::run(
                    scale,
                    &store::StoreOptions {
                        quick: store_opts.quick,
                        json_path: None,
                    },
                );
                tables::table1(scale);
                tables::table2(scale);
                fig9::run(scale);
                fig10::run(scale);
                fig11::run(scale);
                fig12_13::fig12(scale);
                fig12_13::fig13(scale);
                fig14::run(scale);
                fig15_16::fig15(scale);
                fig15_16::fig16(scale);
                fig17::run(scale);
                ablations::run(scale);
                throughput::run(scale);
                faults::run(scale);
            }
            _ => usage(),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
