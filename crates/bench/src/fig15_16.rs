//! Figs. 15–16: qualitative move-annotation walkthroughs.
//!
//! Fig. 15 traces one home → office commute via metro through the four
//! stages — (a) raw GPS points, (b) map-matched segments, (c) inferred
//! transport modes, (d) the summarized road/mode/time table. Fig. 16
//! shows the same trip by bicycle and by bus.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;
use semitri::store::export::{kml_document, raw_trajectory_kml, sst_kml};

fn commute_track(city: &City, mode: TransportMode, seed: u64) -> SimulatedTrack {
    let home = Point::new(city.bounds().width() * 0.25, city.bounds().height() * 0.30);
    let office = city.regions[0].polygon.centroid();
    let mut sim = TripSimulator::new(
        &city.roads,
        SimConfig {
            sampling_interval: 8.0,
            ..SimConfig::default()
        },
        seed,
        home,
        Timestamp(8.0 * 3_600.0 + 50.0 * 60.0),
    );
    sim.travel_to(office, mode);
    sim.finish(4, seed)
}

fn annotate_and_print(city: &City, track: &SimulatedTrack, title: &str) {
    let semitri = SeMiTri::new(city, PipelineConfig::default());
    let out = semitri.annotate(&track.to_raw());

    println!("\n  {title}");
    println!("  (a) raw GPS points: {}", out.cleaned.len());
    let matched: usize = out.move_routes.iter().map(|(_, e)| e.len()).sum();
    println!("  (b) map-matched segment runs: {matched}");
    let mode_set: std::collections::BTreeSet<&str> = out
        .move_routes
        .iter()
        .flat_map(|(_, es)| es.iter().filter_map(|e| e.mode.map(|m| m.label())))
        .collect();
    println!(
        "  (c) inferred transport modes: {}",
        mode_set.into_iter().collect::<Vec<_>>().join(", ")
    );

    println!("  (d) move annotation (street, start time, mode):");
    let mut t = Table::new(&["street", "start", "mode"]);
    let mut last: Option<(String, &str)> = None;
    for (_, entries) in &out.move_routes {
        for e in entries {
            let name = city.roads.segment(e.segment).name.clone();
            let mode = e.mode.map(|m| m.label()).unwrap_or("?");
            // collapse repeats of the same street+mode like the paper table
            if last.as_ref().is_some_and(|(n, m)| *n == name && *m == mode) {
                continue;
            }
            t.row(&[name.clone(), e.span.start.to_string(), mode.to_string()]);
            last = Some((name, mode));
        }
    }
    t.print();
}

/// Fig. 15: the metro commute.
pub fn fig15(_scale: Scale) {
    header("Fig. 15 — move annotation of a home→office trip (via metro)");
    let city = City::generate(CityConfig {
        seed: 42,
        ..CityConfig::default()
    });
    let track = commute_track(&city, TransportMode::Metro, 15);
    annotate_and_print(&city, &track, "home → office via metro (seed 15)");

    // also write the KML the paper's web UI would render
    let semitri = SeMiTri::new(&city, PipelineConfig::default());
    let out = semitri.annotate(&track.to_raw());
    let projection = LocalProjection::new(GeoPoint::new(6.6323, 46.5197));
    let doc = kml_document(
        "fig15 metro commute",
        &[
            raw_trajectory_kml(&out.cleaned, &projection),
            sst_kml(&out.sst),
        ],
    );
    let path = std::env::temp_dir().join("semitri_fig15.kml");
    if std::fs::write(&path, doc).is_ok() {
        println!("\n  KML written to {}", path.display());
    }
    println!("  paper: walk → M1 metro → walk, summarized as a street/time table.");
}

/// Fig. 16: the same commute by bicycle and by bus.
pub fn fig16(_scale: Scale) {
    header("Fig. 16 — home→office via bicycle and via bus");
    let city = City::generate(CityConfig {
        seed: 42,
        ..CityConfig::default()
    });
    let bike = commute_track(&city, TransportMode::Bicycle, 16);
    annotate_and_print(&city, &bike, "home → office via bicycle (seed 16)");
    let bus = commute_track(&city, TransportMode::Bus, 17);
    annotate_and_print(&city, &bus, "home → office via bus (seed 17)");
    println!("\n  paper: bus trips begin/end with short walking legs for boarding/alighting.");
}
