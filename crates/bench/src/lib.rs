//! # semitri-bench — experiment harness for the SeMiTri reproduction
//!
//! One module per table/figure of the paper's evaluation (§5). The
//! `experiments` binary dispatches to them; Criterion micro-benches live
//! in `benches/`.
//!
//! Every experiment is deterministic (fixed seeds, printed in the output)
//! and sized to run on a laptop; pass `--scale N` to the binary to grow
//! the datasets toward paper scale.

pub mod ablations;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig14;
pub mod fig15_16;
pub mod fig17;
pub mod fig9;
pub mod hotpath;
pub mod server_load;
pub mod store;
pub mod tables;
pub mod throughput;
pub mod util;

/// Global experiment scale factor (1 = laptop defaults).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub usize);

impl Scale {
    /// Multiplies a base count by the scale.
    pub fn apply(&self, base: usize) -> usize {
        base * self.0.max(1)
    }
}
