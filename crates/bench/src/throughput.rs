//! End-to-end annotation throughput, single- and multi-threaded.
//!
//! The paper's efficiency challenge (§1.2): datasets are "large and
//! quickly growing, and annotation data is even required in real-time".
//! This experiment measures full-pipeline throughput (GPS records/s)
//! through [`BatchAnnotator`] — one shared, immutable `SeMiTri` fanned
//! across a worker pool — at fixed pool sizes 1/2/4/8 regardless of the
//! host's core count, and checks that the pooled output is identical to
//! the sequential one.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` batch run at one pool size.
fn best_run(semitri: &SeMiTri, raws: &[RawTrajectory], threads: usize, reps: usize) -> BatchOutput {
    let mut best: Option<BatchOutput> = None;
    for _ in 0..reps {
        let out = semitri.annotate_batch(raws, threads);
        let improved = match &best {
            Some(b) => out.summary.wall_secs < b.summary.wall_secs,
            None => true,
        };
        if improved {
            best = Some(out);
        }
    }
    best.expect("reps >= 1")
}

/// Semantic (non-timing) equality of two batch runs.
fn same_results(a: &BatchOutput, b: &BatchOutput) -> bool {
    a.results.len() == b.results.len()
        && a.results.iter().zip(&b.results).all(|(x, y)| match (x, y) {
            (Ok(x), Ok(y)) => {
                x.episodes == y.episodes
                    && x.region_tuples == y.region_tuples
                    && x.move_routes == y.move_routes
                    && x.stop_annotations == y.stop_annotations
                    && x.sst == y.sst
            }
            (Err(x), Err(y)) => x == y,
            _ => false,
        })
}

/// Runs the throughput experiment.
pub fn run(scale: Scale) {
    header("Throughput — full-pipeline records/s vs worker threads");
    let dataset = smartphone_users(6, scale.apply(5), 42);
    println!(
        "  dataset: {} daily trajectories, {} GPS records (seed 42)",
        dataset.tracks.len(),
        dataset.total_records()
    );
    println!(
        "  host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();

    // warm-up (indexes, page cache)
    let _ = semitri.annotate_batch(&raws[..2.min(raws.len())], 1);

    let baseline = best_run(&semitri, &raws, 1, 2);
    let base_rate = baseline.summary.records_per_sec;

    let mut t = Table::new(&[
        "threads",
        "records/s",
        "speedup",
        "map-match p95 (ms)",
        "util",
    ]);
    let mut deterministic = true;
    let mut summaries: Vec<(usize, BatchSummary)> = Vec::new();
    for &n in &THREAD_COUNTS {
        let pooled;
        let out: &BatchOutput = if n == 1 {
            &baseline
        } else {
            pooled = best_run(&semitri, &raws, n, 2);
            deterministic &= same_results(&baseline, &pooled);
            &pooled
        };
        let s = &out.summary;
        summaries.push((n, s.clone()));
        let mean_util = if s.worker_busy_secs.is_empty() {
            0.0
        } else {
            s.worker_utilization().iter().sum::<f64>() / s.worker_busy_secs.len() as f64
        };
        t.row(&[
            n.to_string(),
            format!("{:.0}", s.records_per_sec),
            format!("{:.2}x", s.records_per_sec / base_rate),
            format!("{:.2}", s.map_match.p95 * 1_000.0),
            format!("{:.0}%", mean_util * 100.0),
        ]);
    }
    t.print();
    println!(
        "  pooled output identical to sequential: {}",
        if deterministic { "yes" } else { "NO — BUG" }
    );

    // per-layer latency breakdown (the pooled analogue of Fig. 17): every
    // pool size reports the same metric schema, only latencies shift
    println!("\n  per-layer breakdown (mean ms per trajectory / records):");
    let mut lt = Table::new(&["layer", "1 thr", "2 thr", "4 thr", "8 thr", "records"]);
    for stage in Stage::ALL {
        let mut row = vec![stage.id().to_string()];
        for (_, s) in &summaries {
            row.push(format!("{:.3}", s.stage(stage).mean * 1_000.0));
        }
        row.push(summaries[0].1.stage(stage).records.to_string());
        lt.row(&row);
    }
    lt.print();

    // cross-check: record totals must agree with a plain sequential run
    // observed through the same metrics schema
    let registry = Arc::new(MetricsRegistry::new());
    let observed = SeMiTri::new(&dataset.city, PipelineConfig::default())
        .with_observer(Arc::new(MetricsObserver::new(registry.clone())));
    for raw in &raws {
        let _ = observed.annotate(raw);
    }
    let seq = registry.snapshot();
    let totals_agree = summaries.iter().all(|(_, s)| {
        Stage::ALL
            .iter()
            .all(|&st| s.stage(st).records == seq.counter(st.records_metric()))
    });
    println!(
        "  per-layer record totals identical across pool sizes and sequential: {}",
        if totals_agree { "yes" } else { "NO — BUG" }
    );
    println!("  the annotator is share-nothing after construction; scaling is bounded only by memory bandwidth.");
}
