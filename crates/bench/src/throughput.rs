//! End-to-end annotation throughput, single- and multi-threaded.
//!
//! The paper's efficiency challenge (§1.2): datasets are "large and
//! quickly growing, and annotation data is even required in real-time".
//! This experiment measures full-pipeline throughput (GPS records/s) and
//! how it scales across worker threads — the annotator is immutable after
//! construction, so trajectories parallelize embarrassingly with
//! crossbeam scoped threads.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Annotates every track on `threads` workers; returns (records, seconds).
fn run_with_threads(
    semitri: &SeMiTri<'_>,
    tracks: &[semitri::data::sim::SimulatedTrack],
    threads: usize,
) -> (usize, f64) {
    let raws: Vec<RawTrajectory> = tracks.iter().map(|t| t.to_raw()).collect();
    let records: usize = raws.iter().map(|r| r.len()).sum();
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(raw) = raws.get(i) else { break };
                std::hint::black_box(semitri.annotate(raw));
            });
        }
    })
    .expect("worker panicked");
    (records, t0.elapsed().as_secs_f64())
}

/// Runs the throughput experiment.
pub fn run(scale: Scale) {
    header("Throughput — full-pipeline records/s vs worker threads");
    let dataset = smartphone_users(6, scale.apply(5), 42);
    println!(
        "  dataset: {} daily trajectories, {} GPS records (seed 42)",
        dataset.tracks.len(),
        dataset.total_records()
    );
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());

    // warm-up (indexes, page cache)
    let _ = run_with_threads(&semitri, &dataset.tracks[..2.min(dataset.tracks.len())], 1);

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut t = Table::new(&["threads", "records/s", "speedup"]);
    let mut base = 0.0f64;
    let mut n = 1usize;
    while n <= max_threads {
        let (records, secs) = run_with_threads(&semitri, &dataset.tracks, n);
        let rate = records as f64 / secs;
        if n == 1 {
            base = rate;
        }
        t.row(&[
            n.to_string(),
            format!("{:.0}", rate),
            format!("{:.2}x", rate / base),
        ]);
        n *= 2;
    }
    t.print();
    println!("  the annotator is share-nothing after construction; scaling is bounded only by memory bandwidth.");
}
