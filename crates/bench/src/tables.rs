//! Tables 1 and 2: dataset inventories.
//!
//! Paper Table 1 lists the vehicle datasets (Lausanne taxis, Milan private
//! cars, Seattle drive) with object counts, record counts, tracking time
//! and sampling frequency, plus the geographic sources. Table 2 lists the
//! smartphone campaign and six selected users. The synthetic presets are
//! scaled down; the row *shape* (relative sampling rates, object counts,
//! source sizes) is what must match.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;

fn span_days(d: &Dataset) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for t in &d.tracks {
        if let (Some(first), Some(last)) = (t.records.first(), t.records.last()) {
            lo = lo.min(first.t.0);
            hi = hi.max(last.t.0);
        }
    }
    if lo.is_finite() {
        (hi - lo) / 86_400.0
    } else {
        0.0
    }
}

fn dataset_row(t: &mut Table, d: &Dataset) {
    t.row(&[
        d.name.clone(),
        d.object_count().to_string(),
        d.total_records().to_string(),
        format!("{:.1} days", span_days(d)),
        format!("{:.1} s", d.mean_sampling_interval()),
    ]);
}

/// Table 1: vehicle datasets.
pub fn table1(scale: Scale) {
    header("Table 1 — vehicle trajectory datasets (synthetic analogues)");
    let taxis = lausanne_taxis(scale.apply(4), 42);
    let milan = milan_cars(scale.apply(40), 2, 42);
    let seattle = seattle_drive(42);

    let mut t = Table::new(&[
        "dataset",
        "#objects",
        "#GPS records",
        "tracking",
        "sampling",
    ]);
    dataset_row(&mut t, &taxis);
    dataset_row(&mut t, &milan);
    dataset_row(&mut t, &seattle);
    t.print();

    println!("\n  semantic place sources:");
    let mut s = Table::new(&[
        "dataset",
        "landuse cells",
        "POIs",
        "road segments",
        "regions",
    ]);
    for d in [&taxis, &milan, &seattle] {
        s.row(&[
            d.name.clone(),
            d.city.landuse.len().to_string(),
            d.city.pois.len().to_string(),
            d.city.roads.segments().len().to_string(),
            d.city.regions.len().to_string(),
        ]);
    }
    s.print();
    println!(
        "\n  paper: taxis 2 obj / 3.06M pts / 5 months / 1 s; Milan 17,241 obj / 2.08M pts / 1 wk / ~40 s;"
    );
    println!("  Seattle 1 obj / 7,531 pts / 2 h / 1 s over 158,167 road lines. Shapes must match, not magnitudes.");
}

/// Table 2: people (smartphone) dataset with six selected users.
pub fn table2(scale: Scale) {
    header("Table 2 — people trajectory data from mobile phones (synthetic analogue)");
    let users = scale.apply(6).max(6);
    let days = scale.apply(7);
    let d = smartphone_users(users, days, 7);
    println!(
        "  {} smartphone users, {} daily trajectories, {} GPS records, mean dt {:.1} s",
        d.object_count(),
        d.tracks.len(),
        d.total_records(),
        d.mean_sampling_interval()
    );

    let mut t = Table::new(&["user", "#days-with-gps", "#GPS records", "#trajectories"]);
    for user in 0..6u64 {
        let tracks: Vec<_> = d.tracks.iter().filter(|tr| tr.object_id == user).collect();
        let mut days_seen: Vec<i64> = tracks
            .iter()
            .filter_map(|tr| tr.records.first().map(|r| r.t.day()))
            .collect();
        days_seen.sort_unstable();
        days_seen.dedup();
        let records: usize = tracks.iter().map(|tr| tr.len()).sum();
        t.row(&[
            (user + 1).to_string(),
            days_seen.len().to_string(),
            records.to_string(),
            tracks.len().to_string(),
        ]);
    }
    t.print();
    println!("\n  paper: 185 users / 23,188 daily trajectories / 7.3M records; six users with 89–330 tracked days.");
}
