//! Annotation robustness vs feed degradation rate.
//!
//! The paper assumes reasonably clean GPS feeds; real receivers deliver
//! dropout gaps, duplicate and conflicting timestamps, out-of-order
//! uplinks, stuck clocks and outright NaN fixes. This experiment sweeps a
//! composite degradation rate over a smartphone dataset, runs every feed
//! through the fallible batch path, and reports what the preprocessing
//! stage absorbed and how much of the semantic result survives: episode
//! and stop counts, plus per-stop activity agreement against the clean
//! reference run.

use crate::util::{header, pct, Table};
use crate::Scale;
use semitri::prelude::*;

/// Composite degradation rates swept (fraction of fixes affected).
const RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// A representative fault stack scaled by one knob: at rate `r`, roughly
/// `r` of the fixes drop out, `r/2` duplicate or arrive out of order, and
/// smaller shares carry conflicting timestamps, stuck clocks, noise
/// bursts or non-finite values.
fn injector_for(rate: f64, seed: u64) -> FaultInjector {
    if rate == 0.0 {
        return FaultInjector::new(seed);
    }
    FaultInjector::new(seed)
        .with(Fault::Dropout { rate })
        .with(Fault::Noise { sigma: 15.0, rate })
        .with(Fault::Duplicate { rate: rate / 2.0 })
        .with(Fault::Conflict {
            rate: rate / 4.0,
            offset_m: 150.0,
        })
        .with(Fault::OutOfOrder { rate: rate / 2.0 })
        .with(Fault::StuckClock { rate: rate / 4.0 })
        .with(Fault::NonFinite { rate: rate / 5.0 })
}

/// Positional stop-activity agreement between a degraded and a clean run
/// of the same trajectory: matching categories over the zipped prefix,
/// normalized by the longer stop list (missing/extra stops count against).
fn stop_agreement(degraded: &PipelineOutput, clean: &PipelineOutput) -> (usize, usize) {
    let cats = |out: &PipelineOutput| -> Vec<_> {
        out.stop_annotations
            .iter()
            .map(|(_, a)| a.category)
            .collect()
    };
    let (d, c) = (cats(degraded), cats(clean));
    let matched = d.iter().zip(&c).filter(|(a, b)| a == b).count();
    (matched, d.len().max(c.len()))
}

/// Runs the fault-rate sweep.
pub fn run(scale: Scale) {
    header("Faults — semantic survival vs GPS feed degradation rate");
    let dataset = smartphone_users(4, scale.apply(2), 4242);
    println!(
        "  dataset: {} daily trajectories, {} GPS records (seed 4242)",
        dataset.tracks.len(),
        dataset.total_records()
    );
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let batch = BatchAnnotator::new(&semitri).with_threads(2);

    // clean reference: the trusted path, no degradation
    let clean: Vec<PipelineOutput> = dataset
        .tracks
        .iter()
        .map(|t| semitri.annotate(&t.to_raw()))
        .collect();

    let mut t = Table::new(&[
        "fault rate",
        "fixes in",
        "kept",
        "dropped",
        "reordered",
        "deduped",
        "episodes",
        "stops",
        "stop agreement",
    ]);
    for &rate in &RATES {
        let injector = injector_for(rate, 0xfeed ^ (rate * 1_000.0) as u64);
        let feeds: Vec<GpsFeed> = dataset
            .tracks
            .iter()
            .map(|track| {
                GpsFeed::new(
                    track.object_id,
                    track.trajectory_id,
                    injector.apply_stream(track.trajectory_id, &track.records),
                )
            })
            .collect();
        let out = batch.annotate_feeds(&feeds);

        let mut report = CleaningReport::default();
        let (mut episodes, mut stops) = (0usize, 0usize);
        let (mut matched, mut total_stops) = (0usize, 0usize);
        for (slot, reference) in out.results.iter().zip(&clean) {
            let Ok(out) = slot else {
                continue; // a fully corrupt feed fails its slot; none at these rates
            };
            report.merge(&out.cleaning);
            episodes += out.episodes.len();
            stops += out.stop_annotations.len();
            let (m, n) = stop_agreement(out, reference);
            matched += m;
            total_stops += n;
        }
        let failed = out.errors().count();
        t.row(&[
            pct(rate),
            report.input.to_string(),
            report.kept.to_string(),
            report.dropped().to_string(),
            report.reordered.to_string(),
            report.deduped.to_string(),
            episodes.to_string(),
            stops.to_string(),
            if total_stops == 0 {
                "n/a".to_string()
            } else {
                pct(matched as f64 / total_stops as f64)
            },
        ]);
        if failed > 0 {
            println!(
                "  note: {failed} feed(s) irrecoverable at rate {}",
                pct(rate)
            );
        }
    }
    t.print();
    println!("  degraded feeds flow through the same batch path; the preprocessing stage");
    println!("  repairs ordering, drops corrupt fixes, and the annotation layers degrade");
    println!("  gracefully instead of panicking.");
}
