//! Fig. 12 (log-log length distributions) and Fig. 13 (per-user episode
//! counts) over the smartphone dataset.
//!
//! Paper shape to reproduce: stop sizes concentrate in the 10–500 record
//! range with a decaying tail, while trajectories and moves reach far
//! larger sizes; per-user bars show GPS records (÷100) towering over
//! trajectory/stop/move counts — the storage-compression story.

use crate::util::{header, Table};
use crate::Scale;
use semitri::prelude::*;

/// Runs Fig. 12: log-binned size distributions.
pub fn fig12(scale: Scale) {
    header("Fig. 12 — #GPS records per trajectory/move/stop (log-log distribution)");
    let dataset = smartphone_users(scale.apply(6), scale.apply(7), 42);
    println!(
        "  dataset: {} users, {} daily trajectories, {} records (seed 42)",
        dataset.object_count(),
        dataset.tracks.len(),
        dataset.total_records()
    );

    let policy = VelocityPolicy::default();
    let mut traj_dist = LengthDistribution::new(2.0);
    let mut move_dist = LengthDistribution::new(2.0);
    let mut stop_dist = LengthDistribution::new(2.0);
    for track in &dataset.tracks {
        let raw = track.to_raw();
        traj_dist.add(raw.len());
        for e in policy.segment(&raw) {
            match e.kind {
                EpisodeKind::Stop => stop_dist.add(e.record_count()),
                EpisodeKind::Move => move_dist.add(e.record_count()),
            }
        }
    }

    let mut t = Table::new(&["size ≥", "#trajectories", "#moves", "#stops"]);
    let max_bin = [&traj_dist, &move_dist, &stop_dist]
        .iter()
        .flat_map(|d| d.rows().into_iter().map(|(lo, _)| lo))
        .max()
        .unwrap_or(0);
    let mut lo = 0usize;
    while lo <= max_bin {
        let get = |d: &LengthDistribution| {
            d.rows()
                .into_iter()
                .find(|&(l, _)| l == lo)
                .map(|(_, c)| c)
                .unwrap_or(0)
        };
        t.row(&[
            lo.to_string(),
            get(&traj_dist).to_string(),
            get(&move_dist).to_string(),
            get(&stop_dist).to_string(),
        ]);
        lo = if lo == 0 { 2 } else { lo * 2 };
    }
    t.print();
    println!(
        "\n  paper: moves/trajectories extend to >10^3 records; stops concentrate in 10..500."
    );
}

/// Runs Fig. 13: per-user counts for six users.
pub fn fig13(scale: Scale) {
    header("Fig. 13 — per-user GPS(÷100) / trajectory / stop / move counts");
    let dataset = smartphone_users(6, scale.apply(7), 42);
    let policy = VelocityPolicy::default();

    let mut per_user: Vec<UserEpisodeCounts> = (0..6)
        .map(|u| UserEpisodeCounts {
            user: u as u64,
            ..Default::default()
        })
        .collect();
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let eps = policy.segment(&raw);
        per_user[track.object_id as usize].add_trajectory(raw.len(), &eps);
    }

    let mut t = Table::new(&["user", "GPS (÷100)", "#trajectories", "#stops", "#moves"]);
    for u in &per_user {
        t.row(&[
            (u.user + 1).to_string(),
            (u.gps_records / 100).to_string(),
            u.trajectories.to_string(),
            u.stops.to_string(),
            u.moves.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n  paper: 7.3M records → 46,958 moves + 52,497 stops over 23,188 daily trajectories."
    );
}
