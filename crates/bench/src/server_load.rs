//! `server-load` — throughput/latency harness for the annotation server.
//!
//! Boots a real `semitri-server` on an ephemeral port (taxis preset,
//! seed 42 — the same pipeline `semitri-cli serve taxis` builds) and
//! drives it with keep-alive HTTP clients issuing `POST /annotate` with a
//! pre-rendered JSON-lines feed, at 1, 4, 16 and 64 concurrent clients.
//! Requests/s and the p50/p99 request latency per level are printed as
//! greppable `BENCH_server` lines and, with `--bench-json PATH`, written
//! as JSON (`BENCH_server.json` is the tracked baseline at the repo
//! root).
//!
//! The server uses a thread-per-connection model, so the harness sizes
//! the worker pool to the highest concurrency level — the experiment
//! measures pipeline and protocol throughput, not accept starvation.

use crate::Scale;
use semitri::prelude::*;
use semitri::server::{wake_workers, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// Options parsed from the experiment driver's command line.
#[derive(Debug, Default)]
pub struct ServerLoadOptions {
    /// Shrink the feed and request counts for a CI smoke run.
    pub quick: bool,
    /// Write the results as JSON to this path.
    pub json_path: Option<String>,
}

/// One concurrency level's measurements.
struct LevelResult {
    clients: usize,
    requests: usize,
    wall_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

impl LevelResult {
    fn rps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.requests as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Nearest-rank percentile of an unsorted latency sample, in ms.
fn percentile_ms(sorted_secs: &[f64], q: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_secs.len() as f64).ceil() as usize).clamp(1, sorted_secs.len());
    sorted_secs[rank - 1] * 1e3
}

/// Issues one `POST /annotate` on an established keep-alive connection
/// and returns the request latency in seconds. Panics on any protocol
/// error — a load run with failed requests is not a measurement.
fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request_bytes: &[u8],
) -> f64 {
    let t0 = Instant::now();
    stream.write_all(request_bytes).expect("request write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(
        line.starts_with("HTTP/1.1 200"),
        "non-200 under load: {line:?}"
    );
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        if header == "\r\n" {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    t0.elapsed().as_secs_f64()
}

/// Runs one concurrency level: `clients` threads, each issuing
/// `per_client` keep-alive requests.
fn run_level(
    addr: SocketAddr,
    request_bytes: &[u8],
    clients: usize,
    per_client: usize,
) -> LevelResult {
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = fan_out(clients, |_| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (0..per_client)
            .map(|_| one_request(&mut stream, &mut reader, request_bytes))
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let wall_secs = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LevelResult {
        clients,
        requests: latencies.len(),
        wall_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0) * 1e3,
    }
}

/// Runs `f` on `n` scoped threads and collects the results in thread
/// order.
fn fan_out<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n).map(|i| scope.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    })
}

fn render_json(results: &[LevelResult], quick: bool, scale: usize, feed_fixes: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"server_load\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"endpoint\": \"POST /annotate\",\n");
    out.push_str(&format!("  \"feed_fixes\": {feed_fixes},\n"));
    out.push_str("  \"levels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}{}\n",
            r.clients,
            r.requests,
            r.rps(),
            r.p50_ms,
            r.p99_ms,
            r.max_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the load harness. Returns `false` only when the JSON output could
/// not be written — protocol failures panic, because a partially failed
/// load run must not masquerade as a measurement.
pub fn run(scale: Scale, opts: &ServerLoadOptions) -> bool {
    println!("== server-load: POST /annotate throughput/latency ==");
    let levels: &[usize] = if opts.quick { &[1, 4] } else { &[1, 4, 16, 64] };
    let per_client = scale.apply(if opts.quick { 10 } else { 100 });

    // the same pipeline construction as `semitri-cli serve taxis 42`
    let dataset = lausanne_taxis(1, 42);
    let track = &dataset.tracks[0];
    let mut feed = format!(
        "{{\"object_id\":{},\"trajectory_id\":{}}}\n",
        track.object_id, track.trajectory_id
    );
    let fixes = if opts.quick {
        track.records.len().min(200)
    } else {
        track.records.len()
    };
    for r in &track.records[..fixes] {
        feed.push_str(&format!(
            "{{\"x\":{},\"y\":{},\"t\":{}}}\n",
            r.point.x, r.point.y, r.t.0
        ));
    }
    let request_bytes = format!(
        "POST /annotate HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n{feed}",
        feed.len()
    )
    .into_bytes();

    let make_config = || PipelineConfig {
        mode: ModeInferencer {
            allow_car: true,
            ..ModeInferencer::default()
        },
        policy: Box::new(VelocityPolicy::vehicles()),
        ..PipelineConfig::default()
    };
    // thread-per-connection: one worker per concurrent client, plus one
    let workers = levels.iter().copied().max().unwrap_or(1) + 1;
    let server = Server::new(
        dataset.city.clone(),
        make_config,
        VelocityPolicy::vehicles(),
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);

    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let server = &server;
        let shutdown = &shutdown;
        let handle = scope.spawn(move || server.run(listener, shutdown));
        for &clients in levels {
            let r = run_level(addr, &request_bytes, clients, per_client);
            println!(
                "BENCH_server clients={} requests={} rps={:.1} p50_ms={:.3} p99_ms={:.3} max_ms={:.3}",
                r.clients,
                r.requests,
                r.rps(),
                r.p50_ms,
                r.p99_ms,
                r.max_ms,
            );
            results.push(r);
        }
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        wake_workers(addr, workers);
        handle.join().expect("server thread").expect("server run");
    });

    if let Some(path) = &opts.json_path {
        let json = render_json(&results, opts.quick, scale.0, fixes);
        match std::fs::write(path, json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => {
                eprintln!("  failed to write {path}: {e}");
                return false;
            }
        }
    }
    true
}
