//! Algorithm 2 throughput: global map matching vs the geometric
//! baselines, across network densities.
//!
//! Backs the paper's claim that R\*-tree candidate selection keeps the
//! global algorithm linear in the number of GPS points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semitri::core::line::baseline::{BaselineMetric, NearestSegmentMatcher};
use semitri::prelude::*;
use std::hint::black_box;

fn drive(city: &City, seed: u64) -> Vec<GpsRecord> {
    let mut sim = TripSimulator::new(
        &city.roads,
        SimConfig::default(),
        seed,
        Point::new(1_500.0, 2_500.0),
        Timestamp(0.0),
    );
    sim.travel_to(
        Point::new(city.bounds().width() * 0.8, city.bounds().height() * 0.8),
        TransportMode::Car,
    );
    sim.finish(0, 0).records
}

fn bench_matchers(c: &mut Criterion) {
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 8_000.0, 8_000.0),
        block: 200.0,
        poi_count: 100,
        seed: 3,
        ..CityConfig::default()
    });
    let records = drive(&city, 5);
    let mut g = c.benchmark_group("map_matching");
    g.throughput(Throughput::Elements(records.len() as u64));

    let global = GlobalMapMatcher::new(&city.roads, MatchParams::default());
    g.bench_function("global", |b| {
        b.iter(|| black_box(global.match_records(&records)))
    });

    let local = NearestSegmentMatcher::new(&city.roads, BaselineMetric::PointSegment, 60.0);
    g.bench_function("local_nearest", |b| {
        b.iter(|| black_box(local.match_records(&records)))
    });

    let perp = NearestSegmentMatcher::new(&city.roads, BaselineMetric::Perpendicular, 60.0);
    g.bench_function("perpendicular", |b| {
        b.iter(|| black_box(perp.match_records(&records)))
    });
    g.finish();
}

fn bench_network_scaling(c: &mut Criterion) {
    // per-point cost should stay ~flat as the network grows (R*-tree
    // candidate selection), demonstrating the O(n) claim
    let mut g = c.benchmark_group("map_matching_scaling");
    for extent in [4_000.0f64, 8_000.0, 16_000.0] {
        let city = City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, extent, extent),
            block: 200.0,
            poi_count: 100,
            seed: 3,
            ..CityConfig::default()
        });
        let records = drive(&city, 5);
        let segs = city.roads.segments().len();
        let matcher = GlobalMapMatcher::new(&city.roads, MatchParams::default());
        g.throughput(Throughput::Elements(records.len() as u64));
        g.bench_with_input(BenchmarkId::new("global", segs), &records, |b, records| {
            b.iter(|| black_box(matcher.match_records(records)))
        });
    }
    g.finish();
}

fn bench_radius_sweep(c: &mut Criterion) {
    // cost of growing the global-view radius (more neighbors per point)
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 8_000.0, 8_000.0),
        block: 200.0,
        poi_count: 100,
        seed: 3,
        ..CityConfig::default()
    });
    let records = drive(&city, 5);
    let mut g = c.benchmark_group("map_matching_radius");
    for radius in [15.0f64, 30.0, 60.0, 120.0] {
        let matcher = GlobalMapMatcher::new(
            &city.roads,
            MatchParams {
                radius_m: radius,
                ..MatchParams::default()
            },
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(radius as u64),
            &records,
            |b, records| b.iter(|| black_box(matcher.match_records(records))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_matchers,
    bench_network_scaling,
    bench_radius_sweep
);
criterion_main!(benches);
