//! Algorithm 3 throughput: HMM stop annotation.
//!
//! Measures Viterbi decoding vs stop-sequence length and the ablation the
//! paper motivates in §4.3: precomputed discretized observation rows vs
//! exact per-stop Gaussian sums.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semitri::core::point::hmm::Hmm;
use semitri::core::point::observation::PoiObservationModel;
use semitri::core::point::{PointAnnotator, PointParams};
use semitri::prelude::*;
use std::hint::black_box;

fn poi_scene(count: usize) -> (PoiSet, Rect) {
    let bounds = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    (PoiSet::generate(bounds, count, 8, 11), bounds)
}

fn stop_centers(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.618;
            Point::new(
                2_500.0 + 5_000.0 * (t.sin() * 0.5 + 0.5),
                2_500.0 + 5_000.0 * ((t * 1.3).cos() * 0.5 + 0.5),
            )
        })
        .collect()
}

fn bench_viterbi_length(c: &mut Criterion) {
    // pure decoder cost vs sequence length (5 states, like the taxonomy)
    let pi = vec![0.2; 5];
    let a = Hmm::default_transitions(5);
    let hmm = Hmm::new(&pi, &a).unwrap();
    let mut g = c.benchmark_group("viterbi_decode");
    for len in [10usize, 100, 1_000, 10_000] {
        let b_rows: Vec<Vec<f64>> = (0..len)
            .map(|i| {
                (0..5)
                    .map(|j| 0.1 + ((i * 7 + j * 3) % 13) as f64 / 13.0)
                    .collect()
            })
            .collect();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &b_rows, |b, rows| {
            b.iter(|| black_box(hmm.viterbi(rows).unwrap()))
        });
    }
    g.finish();
}

fn bench_observation_models(c: &mut Criterion) {
    let (pois, bounds) = poi_scene(5_000);
    let model = PoiObservationModel::new(&pois, bounds, 30.0, 75.0);
    let centers = stop_centers(200);
    let mut g = c.benchmark_group("observation_model");
    g.throughput(Throughput::Elements(centers.len() as u64));
    g.bench_function("discretized", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &centers {
                acc += model.observe_discretized(p)[0];
            }
            black_box(acc)
        })
    });
    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &centers {
                acc += model.observe_exact(p)[0];
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_full_annotation(c: &mut Criterion) {
    // end-to-end point layer vs POI density
    let mut g = c.benchmark_group("point_annotation");
    for poi_count in [1_000usize, 5_000, 20_000] {
        let (pois, bounds) = poi_scene(poi_count);
        let annotator = PointAnnotator::new(&pois, bounds, PointParams::default()).unwrap();
        let centers = stop_centers(50);
        g.bench_with_input(
            BenchmarkId::from_parameter(poi_count),
            &centers,
            |b, centers| b.iter(|| black_box(annotator.annotate_stops(centers))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_viterbi_length,
    bench_observation_models,
    bench_full_annotation
);
criterion_main!(benches);
