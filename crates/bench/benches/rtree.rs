//! R*-tree micro-benchmarks: build strategies and query costs backing the
//! paper's O(n log m) region-join claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semitri::index::RStarTree;
use semitri::prelude::{Point, Rect};
use std::hint::black_box;

fn grid_items(n_side: usize) -> Vec<(Rect, u32)> {
    let mut items = Vec::with_capacity(n_side * n_side);
    for j in 0..n_side {
        for i in 0..n_side {
            let x = i as f64 * 100.0;
            let y = j as f64 * 100.0;
            items.push((
                Rect::new(x, y, x + 100.0, y + 100.0),
                (j * n_side + i) as u32,
            ));
        }
    }
    items
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree_build");
    for n_side in [32usize, 64, 128] {
        let items = grid_items(n_side);
        g.bench_with_input(
            BenchmarkId::new("bulk_load", items.len()),
            &items,
            |b, items| b.iter(|| RStarTree::bulk_load(black_box(items.clone()))),
        );
        g.bench_with_input(
            BenchmarkId::new("insert", items.len()),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut t = RStarTree::new();
                    for &(r, id) in items {
                        t.insert(r, id);
                    }
                    t
                })
            },
        );
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree_query");
    for n_side in [64usize, 128, 256] {
        let tree = RStarTree::bulk_load(grid_items(n_side));
        // point probe: the per-GPS-record lookup of Algorithm 1
        g.bench_with_input(
            BenchmarkId::new("point_probe", tree.len()),
            &tree,
            |b, tree| {
                let mut i = 0u64;
                b.iter(|| {
                    i = (i.wrapping_mul(6364136223846793005)).wrapping_add(1442695040888963407);
                    let x = (i % 1000) as f64 * (n_side as f64 / 10.0);
                    let p = Rect::from_point(Point::new(x, x * 0.7));
                    black_box(tree.count_in(&p))
                })
            },
        );
        // window query: the move-episode bbox join
        g.bench_with_input(
            BenchmarkId::new("window_1km", tree.len()),
            &tree,
            |b, tree| {
                b.iter(|| {
                    let w = Rect::new(500.0, 500.0, 1_500.0, 1_500.0);
                    black_box(tree.count_in(&w))
                })
            },
        );
        // kNN: the candidate-POI lookup
        g.bench_with_input(BenchmarkId::new("knn_8", tree.len()), &tree, |b, tree| {
            let probe = Point::new(n_side as f64 * 50.0, n_side as f64 * 50.0);
            b.iter(|| {
                black_box(tree.nearest_by(probe, 8, |&id| {
                    let x = (id as usize % n_side) as f64 * 100.0 + 50.0;
                    let y = (id as usize / n_side) as f64 * 100.0 + 50.0;
                    probe.distance(Point::new(x, y))
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
