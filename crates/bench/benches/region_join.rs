//! Algorithm 1 throughput: trajectory ⋈ landuse spatial join.
//!
//! Backs the paper's complexity claim — O(n log m) with the R\*-tree
//! (≈ O(n) for well-divided landuse). The naive baseline scans all m
//! regions per record; the ratio demonstrates why the index matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semitri::core::RegionAnnotator;
use semitri::prelude::*;
use std::hint::black_box;

fn walk(records: usize, extent: f64) -> RawTrajectory {
    let recs = (0..records)
        .map(|i| {
            let t = i as f64 / records as f64;
            GpsRecord::new(
                Point::new(
                    100.0 + t * (extent - 200.0),
                    extent / 2.0 + (i % 7) as f64 * 10.0,
                ),
                Timestamp(i as f64 * 5.0),
            )
        })
        .collect();
    RawTrajectory::new(1, 1, recs)
}

fn bench_alg1(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_join");
    for grid_side in [2_000.0f64, 6_000.0, 12_000.0] {
        let grid = LanduseGrid::generate(Rect::new(0.0, 0.0, grid_side, grid_side), 100.0, 7);
        let cells = grid.len();
        let annotator = RegionAnnotator::from_landuse(&grid);
        let traj = walk(2_000, grid_side);

        g.bench_with_input(
            BenchmarkId::new("alg1_rtree", cells),
            &(&annotator, &traj),
            |b, (annotator, traj)| b.iter(|| black_box(annotator.annotate_trajectory(traj))),
        );

        // naive baseline: linear scan over every cell per record
        let all_cells: Vec<_> = grid.cells().collect();
        g.bench_with_input(
            BenchmarkId::new("naive_scan", cells),
            &(&all_cells, &traj),
            |b, (cells, traj)| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for r in traj.records() {
                        for c in cells.iter() {
                            if c.rect.contains_point(r.point) {
                                hits += 1;
                                break;
                            }
                        }
                    }
                    black_box(hits)
                })
            },
        );
    }
    g.finish();
}

fn bench_episode_join(c: &mut Criterion) {
    let grid = LanduseGrid::generate(Rect::new(0.0, 0.0, 6_000.0, 6_000.0), 100.0, 7);
    let annotator = RegionAnnotator::from_landuse(&grid);
    let traj = walk(2_000, 6_000.0);
    let episodes = VelocityPolicy::default().segment(&traj);
    c.bench_function("region_join/episode_scoped", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for e in &episodes {
                n += annotator.annotate_episode(&traj, e).len();
            }
            black_box(n)
        })
    });
}

criterion_group!(benches, bench_alg1, bench_episode_join);
criterion_main!(benches);
