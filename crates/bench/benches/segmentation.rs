//! Trajectory Computation Layer throughput: cleaning and the stop/move
//! computing policies of Fig. 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semitri::episodes::clean::{gaussian_smooth, median_filter, remove_speed_outliers};
use semitri::prelude::*;
use std::hint::black_box;

fn synthetic_day(records: usize) -> RawTrajectory {
    // alternating dwell / drive pattern, 5 s sampling
    let mut recs = Vec::with_capacity(records);
    let mut x = 0.0;
    for i in 0..records {
        let phase = (i / 200) % 2;
        if phase == 1 {
            x += 50.0; // moving at 10 m/s
        }
        let jitter = ((i * 2_654_435_761) % 17) as f64 - 8.0;
        recs.push(GpsRecord::new(
            Point::new(x + jitter, jitter * 0.7),
            Timestamp(i as f64 * 5.0),
        ));
    }
    RawTrajectory::new(1, 1, recs)
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmentation");
    for n in [1_000usize, 10_000, 100_000] {
        let traj = synthetic_day(n);
        g.throughput(Throughput::Elements(n as u64));
        let velocity = VelocityPolicy::default();
        g.bench_with_input(BenchmarkId::new("velocity", n), &traj, |b, traj| {
            b.iter(|| black_box(velocity.segment(traj)))
        });
        let density = DensityPolicy::default();
        g.bench_with_input(BenchmarkId::new("density", n), &traj, |b, traj| {
            b.iter(|| black_box(density.segment(traj)))
        });
    }
    g.finish();
}

fn bench_cleaning(c: &mut Criterion) {
    let traj = synthetic_day(50_000);
    let mut g = c.benchmark_group("cleaning");
    g.throughput(Throughput::Elements(traj.len() as u64));
    g.bench_function("speed_outliers", |b| {
        b.iter(|| black_box(remove_speed_outliers(traj.records(), 70.0)))
    });
    g.bench_function("gaussian_smooth", |b| {
        b.iter(|| black_box(gaussian_smooth(traj.records(), 10.0)))
    });
    g.bench_function("median_filter", |b| {
        b.iter(|| black_box(median_filter(traj.records(), 2)))
    });
    g.finish();
}

fn bench_identification(c: &mut Criterion) {
    let traj = synthetic_day(50_000);
    let ident = TrajectoryIdentifier::default();
    c.bench_function("identify_50k", |b| {
        b.iter(|| black_box(ident.identify(1, 0, traj.records())))
    });
}

criterion_group!(
    benches,
    bench_policies,
    bench_cleaning,
    bench_identification
);
criterion_main!(benches);
