//! End-to-end pipeline throughput per daily trajectory (the computation
//! side of Fig. 17) plus the durable-store write cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use semitri::prelude::*;
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let dataset = smartphone_users(2, 2, 9);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let total: usize = raws.iter().map(|r| r.len()).sum();

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(20);
    g.bench_function("annotate_people_day", |b| {
        b.iter(|| {
            for raw in &raws {
                black_box(semitri.annotate(raw));
            }
        })
    });
    g.finish();
}

fn bench_vehicle_pipeline(c: &mut Criterion) {
    let dataset = lausanne_taxis(1, 9);
    let semitri = SeMiTri::new(
        &dataset.city,
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        },
    );
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let total: usize = raws.iter().map(|r| r.len()).sum();

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);
    g.bench_function("annotate_taxi_day", |b| {
        b.iter(|| {
            for raw in &raws {
                black_box(semitri.annotate(raw));
            }
        })
    });
    g.finish();
}

fn bench_store_writes(c: &mut Criterion) {
    let dataset = smartphone_users(1, 1, 9);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let out = semitri.annotate(&dataset.tracks[0].to_raw());

    let mut g = c.benchmark_group("store");
    g.sample_size(20);

    g.bench_function("in_memory_put", |b| {
        b.iter(|| {
            let store = SemanticTrajectoryStore::in_memory();
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: out.sst.trajectory_id,
                    object_id: out.sst.object_id,
                    record_count: out.cleaned.len() as u64,
                })
                .unwrap();
            store
                .put_episodes(out.sst.trajectory_id, &out.episodes)
                .unwrap();
            store.put_sst(&out.sst).unwrap();
            black_box(store.counts())
        })
    });

    let path = std::env::temp_dir().join(format!("semitri_bench_{}.stlog", std::process::id()));
    g.bench_function("durable_put_synced", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&path);
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: out.sst.trajectory_id,
                    object_id: out.sst.object_id,
                    record_count: out.cleaned.len() as u64,
                })
                .unwrap();
            store
                .put_episodes(out.sst.trajectory_id, &out.episodes)
                .unwrap();
            store.put_sst(&out.sst).unwrap();
            black_box(store.counts())
        })
    });
    let _ = std::fs::remove_file(&path);
    g.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_vehicle_pipeline,
    bench_store_writes
);
criterion_main!(benches);
