//! Aggregation of per-layer pipeline latencies (paper Fig. 17).

use semitri_core::LatencyProfile;

/// Mean per-layer latencies over many trajectories, in seconds — the bars
/// of Fig. 17 (computation/annotation side; storage latencies are summed
/// in by the caller from `semitri-store` measurements).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    sums: LatencyProfile,
    /// Accumulated store-episode seconds (measured externally).
    pub store_episode_secs: f64,
    /// Accumulated store-match-result seconds (measured externally).
    pub store_match_secs: f64,
    n: usize,
}

impl LatencySummary {
    /// Accumulates one trajectory's profile plus its storage timings.
    pub fn add(&mut self, p: &LatencyProfile, store_episode: f64, store_match: f64) {
        self.sums.compute_episode_secs += p.compute_episode_secs;
        self.sums.map_match_secs += p.map_match_secs;
        self.sums.landuse_join_secs += p.landuse_join_secs;
        self.sums.point_secs += p.point_secs;
        self.store_episode_secs += store_episode;
        self.store_match_secs += store_match;
        self.n += 1;
    }

    /// Number of trajectories accumulated.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Mean per-trajectory profile (zeros when empty).
    pub fn means(&self) -> LatencyProfile {
        if self.n == 0 {
            return LatencyProfile::default();
        }
        let inv = 1.0 / self.n as f64;
        LatencyProfile {
            compute_episode_secs: self.sums.compute_episode_secs * inv,
            map_match_secs: self.sums.map_match_secs * inv,
            landuse_join_secs: self.sums.landuse_join_secs * inv,
            point_secs: self.sums.point_secs * inv,
        }
    }

    /// Mean store-episode seconds per trajectory.
    pub fn mean_store_episode(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.store_episode_secs / self.n as f64
        }
    }

    /// Mean store-match seconds per trajectory.
    pub fn mean_store_match(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.store_match_secs / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_over_profiles() {
        let mut s = LatencySummary::default();
        s.add(
            &LatencyProfile {
                compute_episode_secs: 0.010,
                map_match_secs: 0.200,
                landuse_join_secs: 0.080,
                point_secs: 0.020,
            },
            3.0,
            0.3,
        );
        s.add(
            &LatencyProfile {
                compute_episode_secs: 0.006,
                map_match_secs: 0.100,
                landuse_join_secs: 0.100,
                point_secs: 0.040,
            },
            5.0,
            0.1,
        );
        assert_eq!(s.count(), 2);
        let m = s.means();
        assert!((m.compute_episode_secs - 0.008).abs() < 1e-12);
        assert!((m.map_match_secs - 0.150).abs() < 1e-12);
        assert!((s.mean_store_episode() - 4.0).abs() < 1e-12);
        assert!((s.mean_store_match() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::default();
        assert_eq!(s.means(), LatencyProfile::default());
        assert_eq!(s.mean_store_episode(), 0.0);
    }
}
