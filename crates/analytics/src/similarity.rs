//! Trajectory similarity measures.
//!
//! The paper's introduction lists "semantic similarity" among the
//! analytics semantic trajectories enable. Two complementary measures are
//! provided:
//!
//! * [`semantic_edit_distance`] / [`semantic_similarity`] — Levenshtein
//!   distance over the *symbol sequences* of two structured semantic
//!   trajectories ("home → move(bus) → office" vs "home → move(metro) →
//!   office"), capturing behavioral similarity independent of geometry;
//! * [`lcss_similarity`] — Longest Common Subsequence over raw GPS points
//!   with a spatial matching threshold (Vlachos et al.), capturing
//!   geometric similarity robust to noise and different sampling rates.

use crate::patterns::{symbols_of, SymbolKind};
use semitri_core::model::StructuredSemanticTrajectory;
use semitri_data::RawTrajectory;

/// Levenshtein distance between two symbol sequences.
pub fn edit_distance(a: &[String], b: &[String]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Edit distance over the semantic symbol sequences of two trajectories.
pub fn semantic_edit_distance(
    a: &StructuredSemanticTrajectory,
    b: &StructuredSemanticTrajectory,
    kind: SymbolKind,
) -> usize {
    edit_distance(&symbols_of(a, kind), &symbols_of(b, kind))
}

/// Normalized semantic similarity in `[0, 1]`: `1 - dist / max_len`.
/// Two empty trajectories are fully similar.
pub fn semantic_similarity(
    a: &StructuredSemanticTrajectory,
    b: &StructuredSemanticTrajectory,
    kind: SymbolKind,
) -> f64 {
    let sa = symbols_of(a, kind);
    let sb = symbols_of(b, kind);
    let max = sa.len().max(sb.len());
    if max == 0 {
        return 1.0;
    }
    1.0 - edit_distance(&sa, &sb) as f64 / max as f64
}

/// LCSS similarity between two raw trajectories: the length of the longest
/// common subsequence under a spatial matching threshold `eps_m`,
/// normalized by the shorter length. `1.0` = one trajectory shadows the
/// other within `eps_m`; `0.0` = nothing matches (or either is empty).
pub fn lcss_similarity(a: &RawTrajectory, b: &RawTrajectory, eps_m: f64) -> f64 {
    assert!(eps_m > 0.0, "matching threshold must be positive");
    let pa = a.records();
    let pb = b.records();
    let (n, m) = (pa.len(), pb.len());
    if n == 0 || m == 0 {
        return 0.0;
    }
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            cur[j] = if pa[i - 1].point.distance(pb[j - 1].point) <= eps_m {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as f64 / n.min(m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_core::model::{Annotation, PlaceKind, PlaceRef, SemanticTuple};
    use semitri_data::{GpsRecord, TransportMode};
    use semitri_geo::{Point, TimeSpan, Timestamp};

    fn sym(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance(&sym(&[]), &sym(&[])), 0);
        assert_eq!(edit_distance(&sym(&["a"]), &sym(&[])), 1);
        assert_eq!(
            edit_distance(&sym(&["a", "b", "c"]), &sym(&["a", "b", "c"])),
            0
        );
        assert_eq!(
            edit_distance(&sym(&["a", "b", "c"]), &sym(&["a", "x", "c"])),
            1
        );
        assert_eq!(edit_distance(&sym(&["a", "b"]), &sym(&["b", "a"])), 2);
        // symmetry
        assert_eq!(
            edit_distance(&sym(&["a", "b", "c", "d"]), &sym(&["b", "c"])),
            edit_distance(&sym(&["b", "c"]), &sym(&["a", "b", "c", "d"]))
        );
    }

    fn day(modes: &[TransportMode]) -> StructuredSemanticTrajectory {
        let tuples = modes
            .iter()
            .enumerate()
            .map(|(i, m)| SemanticTuple {
                place: Some(PlaceRef::new(PlaceKind::Line, i as u64, "road")),
                span: TimeSpan::new(Timestamp(i as f64), Timestamp(i as f64 + 1.0)),
                annotations: vec![Annotation::mode(*m)],
            })
            .collect();
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: 0,
            tuples,
        }
    }

    #[test]
    fn semantic_similarity_mode_sensitive() {
        let bus_day = day(&[TransportMode::Walk, TransportMode::Bus, TransportMode::Walk]);
        let metro_day = day(&[
            TransportMode::Walk,
            TransportMode::Metro,
            TransportMode::Walk,
        ]);
        assert_eq!(
            semantic_similarity(&bus_day, &bus_day, SymbolKind::Semantic),
            1.0
        );
        let s = semantic_similarity(&bus_day, &metro_day, SymbolKind::Semantic);
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
        // under Place symbols they're identical ("road" everywhere)
        assert_eq!(
            semantic_similarity(&bus_day, &metro_day, SymbolKind::Place),
            1.0
        );
    }

    #[test]
    fn semantic_similarity_empty() {
        let empty = StructuredSemanticTrajectory::default();
        assert_eq!(semantic_similarity(&empty, &empty, SymbolKind::Place), 1.0);
        let one = day(&[TransportMode::Walk]);
        assert_eq!(semantic_similarity(&empty, &one, SymbolKind::Place), 0.0);
    }

    fn traj(points: &[(f64, f64)]) -> RawTrajectory {
        RawTrajectory::new(
            1,
            1,
            points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| GpsRecord::new(Point::new(x, y), Timestamp(i as f64)))
                .collect(),
        )
    }

    #[test]
    fn lcss_identical_is_one() {
        let a = traj(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        assert_eq!(lcss_similarity(&a, &a, 5.0), 1.0);
    }

    #[test]
    fn lcss_tolerates_noise_within_eps() {
        let a = traj(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]);
        let b = traj(&[(0.0, 3.0), (10.0, -3.0), (20.0, 2.0), (30.0, -1.0)]);
        assert_eq!(lcss_similarity(&a, &b, 5.0), 1.0);
        assert!(lcss_similarity(&a, &b, 1.0) < 0.5);
    }

    #[test]
    fn lcss_disjoint_is_zero() {
        let a = traj(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = traj(&[(1_000.0, 0.0), (1_010.0, 0.0)]);
        assert_eq!(lcss_similarity(&a, &b, 5.0), 0.0);
    }

    #[test]
    fn lcss_handles_different_lengths_and_rates() {
        // b samples the same path at double rate
        let a = traj(&[(0.0, 0.0), (20.0, 0.0), (40.0, 0.0)]);
        let b = traj(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (20.0, 0.0),
            (30.0, 0.0),
            (40.0, 0.0),
        ]);
        assert_eq!(lcss_similarity(&a, &b, 2.0), 1.0);
    }

    #[test]
    fn lcss_empty_is_zero() {
        let a = traj(&[(0.0, 0.0)]);
        let empty = RawTrajectory::default();
        assert_eq!(lcss_similarity(&a, &empty, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lcss_rejects_bad_eps() {
        let a = traj(&[(0.0, 0.0)]);
        lcss_similarity(&a, &a, 0.0);
    }
}
