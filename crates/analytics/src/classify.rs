//! Trajectory classification by dominant stop activity (paper Eq. 8).
//!
//! `trajectory_cat = argmax_{C_i} Σ_{stop.cat = C_i} (stop.time_out −
//! stop.time_in)` — the category in which the mover spent the most stop
//! time. Drives the "trajectory" column of Fig. 11.

use semitri_core::point::StopAnnotation;
use semitri_data::PoiCategory;
use semitri_episodes::Episode;

/// Classifies a trajectory from its annotated stops (Eq. 8). `stops` pairs
/// each stop episode with its point annotation. Returns `None` when there
/// are no annotated stops.
pub fn trajectory_category(stops: &[(&Episode, &StopAnnotation)]) -> Option<PoiCategory> {
    if stops.is_empty() {
        return None;
    }
    let mut time_per_cat = [0.0f64; 5];
    for (ep, ann) in stops {
        time_per_cat[ann.category.ordinal()] += ep.duration();
    }
    let (best, _) = time_per_cat
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    Some(PoiCategory::ALL[best])
}

/// Percentage distribution over the five categories (for the POI / stop /
/// trajectory columns of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CategoryShares {
    counts: [usize; 5],
    total: usize,
}

impl CategoryShares {
    /// Accumulates one categorized item.
    pub fn add(&mut self, cat: PoiCategory) {
        self.counts[cat.ordinal()] += 1;
        self.total += 1;
    }

    /// Builds shares from raw per-category counts.
    pub fn from_counts(counts: [usize; 5]) -> Self {
        Self {
            counts,
            total: counts.iter().sum(),
        }
    }

    /// Share in `[0, 1]` of one category.
    pub fn share(&self, cat: PoiCategory) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[cat.ordinal()] as f64 / self.total as f64
        }
    }

    /// Raw count of one category.
    pub fn count(&self, cat: PoiCategory) -> usize {
        self.counts[cat.ordinal()]
    }

    /// Total items.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::{Point, Rect, TimeSpan, Timestamp};

    fn stop(duration: f64) -> Episode {
        Episode {
            kind: semitri_episodes::EpisodeKind::Stop,
            start: 0,
            end: 1,
            span: TimeSpan::new(Timestamp(0.0), Timestamp(duration)),
            bbox: Rect::from_point(Point::ORIGIN),
            center: Point::ORIGIN,
        }
    }

    fn ann(cat: PoiCategory) -> StopAnnotation {
        StopAnnotation {
            category: cat,
            poi: None,
        }
    }

    #[test]
    fn eq8_picks_longest_total_stop_time() {
        let s1 = stop(600.0);
        let s2 = stop(1_000.0);
        let s3 = stop(500.0);
        let a1 = ann(PoiCategory::Feedings);
        let a2 = ann(PoiCategory::ItemSale);
        let a3 = ann(PoiCategory::Feedings);
        // Feedings total = 1100 > ItemSale 1000
        let got = trajectory_category(&[(&s1, &a1), (&s2, &a2), (&s3, &a3)]);
        assert_eq!(got, Some(PoiCategory::Feedings));
    }

    #[test]
    fn eq8_empty_is_none() {
        assert_eq!(trajectory_category(&[]), None);
    }

    #[test]
    fn eq8_single_stop() {
        let s = stop(60.0);
        let a = ann(PoiCategory::Services);
        assert_eq!(
            trajectory_category(&[(&s, &a)]),
            Some(PoiCategory::Services)
        );
    }

    #[test]
    fn shares_accumulate() {
        let mut s = CategoryShares::default();
        s.add(PoiCategory::ItemSale);
        s.add(PoiCategory::ItemSale);
        s.add(PoiCategory::Unknown);
        assert_eq!(s.total(), 3);
        assert!((s.share(PoiCategory::ItemSale) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.count(PoiCategory::Unknown), 1);
        assert_eq!(s.share(PoiCategory::Services), 0.0);
    }

    #[test]
    fn shares_from_counts() {
        let s = CategoryShares::from_counts(PoiCategory::MILAN_COUNTS);
        assert_eq!(s.total(), 39_772);
        assert!((s.share(PoiCategory::PersonLife) - 15_371.0 / 39_772.0).abs() < 1e-12);
    }
}
