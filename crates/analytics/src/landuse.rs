//! Landuse category distributions (paper Fig. 9 and Fig. 14).

use semitri_core::RegionAnnotator;
use semitri_data::{LanduseCategory, RawTrajectory};
use semitri_episodes::{Episode, EpisodeKind};

/// A per-category share distribution over the 17 landuse subcategories.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LanduseDistribution {
    counts: [usize; 17],
    total: usize,
}

impl LanduseDistribution {
    /// Accumulates one categorized record.
    pub fn add(&mut self, cat: LanduseCategory) {
        self.counts[cat.ordinal()] += 1;
        self.total += 1;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &LanduseDistribution) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Raw count of one category.
    pub fn count(&self, cat: LanduseCategory) -> usize {
        self.counts[cat.ordinal()]
    }

    /// Total categorized records.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Share of one category in `[0, 1]`; `0` when empty.
    pub fn share(&self, cat: LanduseCategory) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[cat.ordinal()] as f64 / self.total as f64
        }
    }

    /// The `k` most frequent categories, descending (Fig. 14's top-5
    /// lists). Categories with zero count are omitted.
    pub fn top_k(&self, k: usize) -> Vec<(LanduseCategory, f64)> {
        let mut pairs: Vec<(LanduseCategory, usize)> = LanduseCategory::ALL
            .iter()
            .map(|&c| (c, self.counts[c.ordinal()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs
            .into_iter()
            .take(k)
            .map(|(c, n)| (c, n as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// Computes the distribution over all records of a trajectory.
    pub fn of_trajectory(annotator: &RegionAnnotator, traj: &RawTrajectory) -> Self {
        let mut d = Self::default();
        for cat in annotator.categories_for(traj).into_iter().flatten() {
            d.add(cat);
        }
        d
    }

    /// Computes the distribution restricted to episodes of one kind
    /// (the move/stop columns of Fig. 9).
    pub fn of_episodes(
        annotator: &RegionAnnotator,
        traj: &RawTrajectory,
        episodes: &[Episode],
        kind: EpisodeKind,
    ) -> Self {
        let cats = annotator.categories_for(traj);
        let mut d = Self::default();
        for e in episodes.iter().filter(|e| e.kind == kind) {
            for cat in cats[e.start..e.end].iter().flatten() {
                d.add(*cat);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::{GpsRecord, LanduseGrid};
    use semitri_episodes::{SegmentationPolicy, VelocityPolicy};
    use semitri_geo::{Point, Rect, Timestamp};

    fn annotator() -> RegionAnnotator {
        let grid = LanduseGrid::generate(Rect::new(0.0, 0.0, 3_000.0, 3_000.0), 100.0, 5);
        RegionAnnotator::from_landuse(&grid)
    }

    fn traj() -> RawTrajectory {
        // dwell in the center, then cross east
        let mut recs = Vec::new();
        for i in 0..30 {
            recs.push(GpsRecord::new(
                Point::new(1_500.0, 1_500.0),
                Timestamp(i as f64 * 10.0),
            ));
        }
        for i in 0..60 {
            recs.push(GpsRecord::new(
                Point::new(1_500.0 + i as f64 * 20.0, 1_500.0),
                Timestamp(300.0 + i as f64 * 10.0),
            ));
        }
        RawTrajectory::new(1, 1, recs)
    }

    #[test]
    fn shares_sum_to_one() {
        let d = LanduseDistribution::of_trajectory(&annotator(), &traj());
        assert_eq!(d.total(), traj().len());
        let sum: f64 = LanduseCategory::ALL.iter().map(|&c| d.share(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn move_and_stop_partition_the_trajectory() {
        let ann = annotator();
        let t = traj();
        let eps = VelocityPolicy::default().segment(&t);
        let all = LanduseDistribution::of_trajectory(&ann, &t);
        let mut parts = LanduseDistribution::of_episodes(&ann, &t, &eps, EpisodeKind::Stop);
        parts.merge(&LanduseDistribution::of_episodes(
            &ann,
            &t,
            &eps,
            EpisodeKind::Move,
        ));
        assert_eq!(all.total(), parts.total());
        for c in LanduseCategory::ALL {
            assert_eq!(all.count(c), parts.count(c), "{c:?}");
        }
    }

    #[test]
    fn top_k_sorted_and_bounded() {
        let d = LanduseDistribution::of_trajectory(&annotator(), &traj());
        let top = d.top_k(5);
        assert!(top.len() <= 5);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // settlement categories dominate a central-city walk
        let (dominant, share) = top[0];
        assert!(share > 0.2);
        assert_eq!(
            dominant.group(),
            semitri_data::LanduseGroup::Settlement,
            "dominant {dominant:?}"
        );
    }

    #[test]
    fn empty_distribution() {
        let d = LanduseDistribution::default();
        assert_eq!(d.total(), 0);
        assert_eq!(d.share(LanduseCategory::Building), 0.0);
        assert!(d.top_k(3).is_empty());
    }
}
