//! Episode and trajectory size distributions (paper Fig. 12 and Fig. 13).

use semitri_episodes::{Episode, EpisodeKind};

/// A log-binned distribution of "number of GPS records" — the paper plots
/// Fig. 12 on log-log axes, so sizes are binned by powers of a base.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthDistribution {
    base: f64,
    counts: Vec<usize>,
    total: usize,
}

impl LengthDistribution {
    /// Creates an empty distribution with logarithmic bins of the given
    /// base (2.0 = octaves, 10.0 = decades).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "log base must exceed 1");
        Self {
            base,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Bin index of a size (`0` holds sizes 0 and 1).
    pub fn bin_of(&self, size: usize) -> usize {
        if size <= 1 {
            0
        } else {
            (size as f64).log(self.base).floor() as usize
        }
    }

    /// Lower edge of a bin.
    pub fn bin_lower(&self, bin: usize) -> usize {
        if bin == 0 {
            0
        } else {
            self.base.powi(bin as i32) as usize
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, size: usize) {
        let b = self.bin_of(size);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Observations recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `(bin lower edge, count)` rows for plotting, skipping empty bins.
    pub fn rows(&self) -> Vec<(usize, usize)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (self.bin_lower(b), c))
            .collect()
    }
}

/// Per-user counts of GPS records, trajectories, stops and moves — the
/// bars of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserEpisodeCounts {
    /// User / object identifier.
    pub user: u64,
    /// Total GPS records.
    pub gps_records: usize,
    /// Daily trajectories.
    pub trajectories: usize,
    /// Stop episodes.
    pub stops: usize,
    /// Move episodes.
    pub moves: usize,
}

impl UserEpisodeCounts {
    /// Accumulates one trajectory's episodes.
    pub fn add_trajectory(&mut self, record_count: usize, episodes: &[Episode]) {
        self.gps_records += record_count;
        self.trajectories += 1;
        for e in episodes {
            match e.kind {
                EpisodeKind::Stop => self.stops += 1,
                EpisodeKind::Move => self.moves += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::{Point, Rect, TimeSpan, Timestamp};

    #[test]
    fn binning_decades() {
        let d = LengthDistribution::new(10.0);
        assert_eq!(d.bin_of(0), 0);
        assert_eq!(d.bin_of(1), 0);
        assert_eq!(d.bin_of(9), 0);
        assert_eq!(d.bin_of(10), 1);
        assert_eq!(d.bin_of(99), 1);
        assert_eq!(d.bin_of(100), 2);
        assert_eq!(d.bin_lower(2), 100);
    }

    #[test]
    fn add_and_rows() {
        let mut d = LengthDistribution::new(10.0);
        for s in [3, 5, 20, 30, 150, 200, 250] {
            d.add(s);
        }
        assert_eq!(d.total(), 7);
        assert_eq!(d.rows(), vec![(0, 2), (10, 2), (100, 3)]);
    }

    #[test]
    fn octave_bins() {
        let mut d = LengthDistribution::new(2.0);
        d.add(7); // bin 2 (4..8)
        d.add(8); // bin 3
        assert_eq!(d.rows(), vec![(4, 1), (8, 1)]);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_base_one() {
        LengthDistribution::new(1.0);
    }

    fn episode(kind: EpisodeKind) -> Episode {
        Episode {
            kind,
            start: 0,
            end: 1,
            span: TimeSpan::new(Timestamp(0.0), Timestamp(1.0)),
            bbox: Rect::from_point(Point::ORIGIN),
            center: Point::ORIGIN,
        }
    }

    #[test]
    fn user_counts_accumulate() {
        let mut u = UserEpisodeCounts {
            user: 3,
            ..Default::default()
        };
        u.add_trajectory(
            100,
            &[episode(EpisodeKind::Stop), episode(EpisodeKind::Move)],
        );
        u.add_trajectory(50, &[episode(EpisodeKind::Move)]);
        assert_eq!(u.gps_records, 150);
        assert_eq!(u.trajectories, 2);
        assert_eq!(u.stops, 1);
        assert_eq!(u.moves, 2);
    }
}
