//! # semitri-analytics — the Semantic Trajectory Analytics Layer
//!
//! Statistics over structured semantic trajectories (Fig. 2, top): the
//! distributions, classifications and compression measures behind every
//! aggregate figure of the paper's evaluation:
//!
//! * [`landuse`] — landuse category distributions over trajectories,
//!   moves and stops (Fig. 9) and per-user top-k categories (Fig. 14);
//! * [`distributions`] — episode length distributions (Fig. 12) and
//!   per-user episode counts (Fig. 13);
//! * [`classify`] — trajectory classification by dominant stop time,
//!   Equation 8 (Fig. 11);
//! * [`compression`] — storage compression of the semantic representation
//!   (the paper's 99.7% claim);
//! * [`latency`] — aggregation of per-layer pipeline latencies (Fig. 17);
//! * [`raster`] — city-scale density grids burned from annotated
//!   trajectories, split by mode, road class and landuse category.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cluster;
pub mod compression;
pub mod distributions;
pub mod flows;
pub mod landuse;
pub mod latency;
pub mod mobility;
pub mod patterns;
pub mod raster;
pub mod similarity;

pub use classify::{trajectory_category, CategoryShares};
pub use cluster::{dbscan_stops, DbscanParams, StopCluster};
pub use compression::CompressionStats;
pub use distributions::{LengthDistribution, UserEpisodeCounts};
pub use flows::OdMatrix;
pub use landuse::LanduseDistribution;
pub use latency::LatencySummary;
pub use mobility::{radius_of_gyration, MobilitySummary, ModeShares};
pub use patterns::{mine_sequences, symbols_of, SequencePattern, SymbolKind};
pub use raster::{burn_all, effective_workers, RasterConfig, RasterGrid, RasterLayer};
pub use similarity::{edit_distance, lcss_similarity, semantic_similarity};
