//! Origin–destination flows between meaningful places.
//!
//! The paper's related work builds on Alvares et al.'s "frequent moves
//! between stops", and its Analytics Layer computes "frequent stops,
//! trajectory patterns". Given the stop clusters of [`crate::cluster`],
//! this module counts the moves between them across a corpus of
//! trajectories — the OD matrix of a mover or a fleet.

use std::collections::HashMap;

/// An OD matrix over place (cluster) ids, plus noise flows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OdMatrix {
    flows: HashMap<(usize, usize), usize>,
    total: usize,
}

impl OdMatrix {
    /// Builds the matrix from per-trajectory stop→cluster assignments
    /// (each inner slice is one trajectory's stops in temporal order;
    /// `None` = noise stop, which breaks the chain).
    pub fn from_assignments(trajectories: &[Vec<Option<usize>>]) -> Self {
        let mut m = OdMatrix::default();
        for stops in trajectories {
            for w in stops.windows(2) {
                if let (Some(a), Some(b)) = (w[0], w[1]) {
                    m.add(a, b);
                }
            }
        }
        m
    }

    /// Records one move from cluster `from` to cluster `to`.
    pub fn add(&mut self, from: usize, to: usize) {
        *self.flows.entry((from, to)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count of moves from `from` to `to`.
    pub fn count(&self, from: usize, to: usize) -> usize {
        self.flows.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total recorded moves.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The `k` heaviest flows, descending; ties by (from, to) for
    /// determinism. Self-loops (re-visits of the same place) included.
    pub fn top_k(&self, k: usize) -> Vec<(usize, usize, usize)> {
        let mut rows: Vec<(usize, usize, usize)> =
            self.flows.iter().map(|(&(a, b), &n)| (a, b, n)).collect();
        rows.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
        rows.truncate(k);
        rows
    }

    /// Flows that occur at least `min_support` times — Alvares et al.'s
    /// frequent moves.
    pub fn frequent(&self, min_support: usize) -> Vec<(usize, usize, usize)> {
        let mut rows: Vec<(usize, usize, usize)> = self
            .flows
            .iter()
            .filter(|(_, &n)| n >= min_support)
            .map(|(&(a, b), &n)| (a, b, n))
            .collect();
        rows.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_assignments_and_breaks_on_noise() {
        // two commute days home(0) → office(1) → home(0); one with a noise
        // stop in between that breaks the chain
        let days = vec![
            vec![Some(0), Some(1), Some(0)],
            vec![Some(0), None, Some(1), Some(0)],
        ];
        let m = OdMatrix::from_assignments(&days);
        assert_eq!(m.count(0, 1), 1); // broken by the noise stop on day 2
        assert_eq!(m.count(1, 0), 2);
        assert_eq!(m.count(0, 0), 0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn top_k_and_frequent() {
        let mut m = OdMatrix::default();
        for _ in 0..5 {
            m.add(0, 1);
        }
        for _ in 0..3 {
            m.add(1, 0);
        }
        m.add(2, 0);
        let top = m.top_k(2);
        assert_eq!(top, vec![(0, 1, 5), (1, 0, 3)]);
        assert_eq!(m.frequent(3), vec![(0, 1, 5), (1, 0, 3)]);
        assert_eq!(m.frequent(10), vec![]);
    }

    #[test]
    fn empty_matrix() {
        let m = OdMatrix::from_assignments(&[]);
        assert_eq!(m.total(), 0);
        assert!(m.top_k(5).is_empty());
    }

    #[test]
    fn self_loops_counted() {
        // repeated stops at the same mall
        let m = OdMatrix::from_assignments(&[vec![Some(3), Some(3), Some(3)]]);
        assert_eq!(m.count(3, 3), 2);
    }
}
