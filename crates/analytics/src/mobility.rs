//! Mobility statistics over annotated trajectories.
//!
//! The paper's intro cites González et al.'s human-mobility work and the
//! Analytics Layer computes "mobility analysis/statistics". This module
//! provides the standard aggregates: radius of gyration, travel distance,
//! and per-mode time/distance shares.

use semitri_core::line::RouteEntry;
use semitri_data::{RawTrajectory, TransportMode};
use semitri_geo::Point;
use std::collections::HashMap;

/// Radius of gyration of a set of positions, in meters: the RMS distance
/// from the center of mass — the classical measure of how far a mover
/// roams. Returns `0.0` for fewer than two positions.
pub fn radius_of_gyration(positions: &[Point]) -> f64 {
    if positions.len() < 2 {
        return 0.0;
    }
    let inv = 1.0 / positions.len() as f64;
    let cx: f64 = positions.iter().map(|p| p.x).sum::<f64>() * inv;
    let cy: f64 = positions.iter().map(|p| p.y).sum::<f64>() * inv;
    let com = Point::new(cx, cy);
    let mean_sq: f64 = positions.iter().map(|p| p.distance_sq(com)).sum::<f64>() * inv;
    mean_sq.sqrt()
}

/// Per-mode aggregates of one or more annotated move episodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModeShares {
    seconds: HashMap<TransportMode, f64>,
    total_seconds: f64,
}

impl ModeShares {
    /// Accumulates the mode legs of one move episode's route entries.
    pub fn add_route(&mut self, entries: &[RouteEntry]) {
        for e in entries {
            let Some(mode) = e.mode else { continue };
            let d = e.span.duration();
            *self.seconds.entry(mode).or_insert(0.0) += d;
            self.total_seconds += d;
        }
    }

    /// Time share of a mode in `[0, 1]`.
    pub fn share(&self, mode: TransportMode) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            self.seconds.get(&mode).copied().unwrap_or(0.0) / self.total_seconds
        }
    }

    /// Seconds spent in a mode.
    pub fn seconds(&self, mode: TransportMode) -> f64 {
        self.seconds.get(&mode).copied().unwrap_or(0.0)
    }

    /// Total annotated move seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// The dominant mode, if any time was recorded.
    pub fn dominant(&self) -> Option<TransportMode> {
        self.seconds
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(&m, _)| m)
    }
}

/// Summary mobility statistics of one mover across days.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MobilitySummary {
    /// All recorded positions (for the gyration radius).
    positions: Vec<Point>,
    /// Total traveled distance in meters.
    pub total_distance_m: f64,
    /// Number of trajectories accumulated.
    pub trajectories: usize,
}

impl MobilitySummary {
    /// Accumulates one raw trajectory.
    pub fn add_trajectory(&mut self, traj: &RawTrajectory) {
        self.positions
            .extend(traj.records().iter().map(|r| r.point));
        self.total_distance_m += traj.path_length();
        self.trajectories += 1;
    }

    /// Radius of gyration over every recorded position.
    pub fn radius_of_gyration(&self) -> f64 {
        radius_of_gyration(&self.positions)
    }

    /// Mean traveled distance per trajectory.
    pub fn mean_distance_m(&self) -> f64 {
        if self.trajectories == 0 {
            0.0
        } else {
            self.total_distance_m / self.trajectories as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::GpsRecord;
    use semitri_geo::{TimeSpan, Timestamp};

    #[test]
    fn gyration_of_symmetric_square() {
        let pts = vec![
            Point::new(-1.0, -1.0),
            Point::new(1.0, -1.0),
            Point::new(1.0, 1.0),
            Point::new(-1.0, 1.0),
        ];
        assert!((radius_of_gyration(&pts) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gyration_degenerate() {
        assert_eq!(radius_of_gyration(&[]), 0.0);
        assert_eq!(radius_of_gyration(&[Point::new(5.0, 5.0)]), 0.0);
        assert_eq!(
            radius_of_gyration(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)]),
            0.0
        );
    }

    fn entry(mode: TransportMode, t0: f64, t1: f64) -> RouteEntry {
        RouteEntry {
            segment: 0,
            span: TimeSpan::new(Timestamp(t0), Timestamp(t1)),
            start: 0,
            end: 1,
            mode: Some(mode),
        }
    }

    #[test]
    fn mode_shares_accumulate() {
        let mut s = ModeShares::default();
        s.add_route(&[
            entry(TransportMode::Walk, 0.0, 300.0),
            entry(TransportMode::Metro, 300.0, 900.0),
            entry(TransportMode::Walk, 900.0, 1_000.0),
        ]);
        assert_eq!(s.total_seconds(), 1_000.0);
        assert!((s.share(TransportMode::Walk) - 0.4).abs() < 1e-12);
        assert!((s.share(TransportMode::Metro) - 0.6).abs() < 1e-12);
        assert_eq!(s.share(TransportMode::Bus), 0.0);
        assert_eq!(s.dominant(), Some(TransportMode::Metro));
    }

    #[test]
    fn mode_shares_empty() {
        let s = ModeShares::default();
        assert_eq!(s.share(TransportMode::Walk), 0.0);
        assert_eq!(s.dominant(), None);
    }

    #[test]
    fn mobility_summary() {
        let mut m = MobilitySummary::default();
        let traj = RawTrajectory::new(
            1,
            1,
            vec![
                GpsRecord::new(Point::new(0.0, 0.0), Timestamp(0.0)),
                GpsRecord::new(Point::new(1_000.0, 0.0), Timestamp(100.0)),
            ],
        );
        m.add_trajectory(&traj);
        m.add_trajectory(&traj);
        assert_eq!(m.trajectories, 2);
        assert_eq!(m.total_distance_m, 2_000.0);
        assert_eq!(m.mean_distance_m(), 1_000.0);
        assert!((m.radius_of_gyration() - 500.0).abs() < 1e-9);
    }
}
