//! Sequential pattern mining over structured semantic trajectories.
//!
//! The Analytics Layer of Fig. 2 lists *sequential mining*: once
//! trajectories are semantic sequences like `home → road(bus) → office`,
//! frequent sub-sequences are behavioral patterns ("this user commutes by
//! bus on weekdays"). This module mines frequent contiguous k-grams of
//! episode labels across a corpus of semantic trajectories, with minimum
//! support counting *per trajectory* (a pattern repeating within one day
//! counts once — the standard sequence-support definition).

use semitri_core::model::{AnnotationValue, StructuredSemanticTrajectory};
use std::collections::HashMap;

/// A mined sequential pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencePattern {
    /// The label sequence (place label, optionally suffixed with mode).
    pub labels: Vec<String>,
    /// Number of trajectories containing the pattern.
    pub support: usize,
}

/// How episode tuples are rendered into pattern symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// Use the place label ("Rue R4", "market district 3").
    Place,
    /// Use the transport mode / activity annotation when present, falling
    /// back to the place label ("walk", "item sale").
    Semantic,
}

/// Renders one trajectory into its symbol sequence.
pub fn symbols_of(sst: &StructuredSemanticTrajectory, kind: SymbolKind) -> Vec<String> {
    sst.tuples
        .iter()
        .map(|t| {
            if kind == SymbolKind::Semantic {
                for a in &t.annotations {
                    match &a.value {
                        AnnotationValue::Mode(m) => return format!("move({})", m.label()),
                        AnnotationValue::Activity(c) => return format!("stop({})", c.label()),
                        _ => {}
                    }
                }
            }
            t.place
                .as_ref()
                .map(|p| p.label.clone())
                .unwrap_or_else(|| "?".to_string())
        })
        .collect()
}

/// Mines frequent contiguous k-grams (`k in min_len..=max_len`) with
/// per-trajectory support ≥ `min_support`. Results are sorted by
/// descending support, then longer patterns first, then lexicographically.
pub fn mine_sequences(
    ssts: &[StructuredSemanticTrajectory],
    kind: SymbolKind,
    min_len: usize,
    max_len: usize,
    min_support: usize,
) -> Vec<SequencePattern> {
    assert!(min_len >= 1 && max_len >= min_len, "invalid length range");
    let mut support: HashMap<Vec<String>, usize> = HashMap::new();
    for sst in ssts {
        let symbols = symbols_of(sst, kind);
        let mut seen: std::collections::HashSet<Vec<String>> = std::collections::HashSet::new();
        for k in min_len..=max_len.min(symbols.len()) {
            for window in symbols.windows(k) {
                seen.insert(window.to_vec());
            }
        }
        for gram in seen {
            *support.entry(gram).or_insert(0) += 1;
        }
    }
    let mut out: Vec<SequencePattern> = support
        .into_iter()
        .filter(|&(_, s)| s >= min_support)
        .map(|(labels, support)| SequencePattern { labels, support })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.labels.len().cmp(&a.labels.len()))
            .then(a.labels.cmp(&b.labels))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_core::model::{Annotation, PlaceKind, PlaceRef, SemanticTuple};
    use semitri_data::{PoiCategory, TransportMode};
    use semitri_geo::{TimeSpan, Timestamp};

    fn tuple(label: &str, mode: Option<TransportMode>, act: Option<PoiCategory>) -> SemanticTuple {
        let mut annotations = Vec::new();
        if let Some(m) = mode {
            annotations.push(Annotation::mode(m));
        }
        if let Some(c) = act {
            annotations.push(Annotation::activity(c));
        }
        SemanticTuple {
            place: Some(PlaceRef::new(PlaceKind::Region, 0, label)),
            span: TimeSpan::new(Timestamp(0.0), Timestamp(1.0)),
            annotations,
        }
    }

    fn day(
        seq: &[(&str, Option<TransportMode>, Option<PoiCategory>)],
    ) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: 0,
            tuples: seq.iter().map(|(l, m, a)| tuple(l, *m, *a)).collect(),
        }
    }

    fn commute_day() -> StructuredSemanticTrajectory {
        day(&[
            ("home", None, None),
            ("road", Some(TransportMode::Bus), None),
            ("office", None, Some(PoiCategory::Services)),
            ("road", Some(TransportMode::Bus), None),
            ("home", None, None),
        ])
    }

    #[test]
    fn symbols_place_and_semantic() {
        let sst = commute_day();
        assert_eq!(
            symbols_of(&sst, SymbolKind::Place),
            vec!["home", "road", "office", "road", "home"]
        );
        assert_eq!(
            symbols_of(&sst, SymbolKind::Semantic),
            vec!["home", "move(bus)", "stop(services)", "move(bus)", "home"]
        );
    }

    #[test]
    fn frequent_commute_pattern_found() {
        let ssts: Vec<_> = (0..5).map(|_| commute_day()).collect();
        let patterns = mine_sequences(&ssts, SymbolKind::Place, 2, 3, 4);
        assert!(!patterns.is_empty());
        // the home→road→office trigram must appear with support 5
        let p = patterns
            .iter()
            .find(|p| p.labels == ["home", "road", "office"])
            .expect("commute pattern present");
        assert_eq!(p.support, 5);
        // sorted by support descending
        for w in patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn support_counts_per_trajectory_not_per_occurrence() {
        // "road" appears twice in one day but contributes support 1
        let ssts = vec![commute_day()];
        let patterns = mine_sequences(&ssts, SymbolKind::Place, 1, 1, 1);
        let road = patterns.iter().find(|p| p.labels == ["road"]).unwrap();
        assert_eq!(road.support, 1);
    }

    #[test]
    fn min_support_filters() {
        let mut ssts: Vec<_> = (0..3).map(|_| commute_day()).collect();
        ssts.push(day(&[("gym", None, Some(PoiCategory::PersonLife))]));
        let patterns = mine_sequences(&ssts, SymbolKind::Place, 1, 2, 2);
        assert!(patterns.iter().all(|p| p.support >= 2));
        assert!(!patterns.iter().any(|p| p.labels == ["gym"]));
    }

    #[test]
    fn empty_corpus() {
        assert!(mine_sequences(&[], SymbolKind::Place, 1, 3, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "length range")]
    fn rejects_bad_lengths() {
        mine_sequences(&[], SymbolKind::Place, 2, 1, 1);
    }
}
