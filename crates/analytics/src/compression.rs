//! Storage compression of the semantic representation.
//!
//! The paper reports that the region-annotated representation of the taxi
//! data achieves "almost 99.7% storage compression (3M GPS records can be
//! annotated with only 8,385 cells)". This module measures that ratio for
//! any raw-records → semantic-units reduction.

/// Compression accounting for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompressionStats {
    /// Total raw GPS records.
    pub raw_records: usize,
    /// Total semantic units (tuples, episodes or cells) they reduced to.
    pub semantic_units: usize,
}

impl CompressionStats {
    /// Accumulates one trajectory's reduction.
    pub fn add(&mut self, raw_records: usize, semantic_units: usize) {
        self.raw_records += raw_records;
        self.semantic_units += semantic_units;
    }

    /// Compression ratio in `[0, 1]` (0.997 = the paper's 99.7%). Zero
    /// when nothing was recorded or the representation grew.
    pub fn ratio(&self) -> f64 {
        if self.raw_records == 0 {
            return 0.0;
        }
        (1.0 - self.semantic_units as f64 / self.raw_records as f64).max(0.0)
    }

    /// Compression expressed as a percentage.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures() {
        let mut s = CompressionStats::default();
        s.add(3_064_248, 8_385);
        assert!((s.percent() - 99.7).abs() < 0.1, "{}", s.percent());
    }

    #[test]
    fn empty_and_inflating() {
        assert_eq!(CompressionStats::default().ratio(), 0.0);
        let mut s = CompressionStats::default();
        s.add(10, 20);
        assert_eq!(s.ratio(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut s = CompressionStats::default();
        s.add(100, 5);
        s.add(900, 5);
        assert!((s.ratio() - 0.99).abs() < 1e-12);
    }
}
