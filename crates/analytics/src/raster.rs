//! City-scale raster analytics: burning annotated trajectories into
//! per-category density grids.
//!
//! The paper's Analytics Layer aggregates structured semantic
//! trajectories into city-wide figures; this module adds the spatial
//! counterpart — a uniform grid over the city bounds whose cells count
//! how many annotated GPS fixes fell inside them, split by transport
//! mode (Line layer), matched road class (Line layer) and landuse
//! category (Region layer), plus an unconditional total layer.
//!
//! Burning is embarrassingly parallel: [`burn_all`] hands each worker
//! its own private [`RasterGrid`] tile accumulator and merges the tiles
//! at the end. Cell counts are `u64` sums, so the merged grid is
//! bit-identical no matter how the corpus was sharded — a one-thread and
//! a sixteen-thread burn of the same outputs produce equal grids.

use semitri_core::PipelineOutput;
use semitri_data::road::RoadClass;
use semitri_data::{LanduseCategory, RoadNetwork, TransportMode};
use semitri_geo::{Point, Rect};

/// Number of transport-mode layers (one per [`TransportMode::ALL`]).
pub const MODE_LAYERS: usize = TransportMode::ALL.len();
/// Number of road-class layers (one per [`RoadClass`] variant).
pub const CLASS_LAYERS: usize = 4;
/// Number of landuse layers (one per [`LanduseCategory::ALL`]).
pub const LANDUSE_LAYERS: usize = LanduseCategory::ALL.len();
/// Total layer count: the unconditional total plus every category layer.
pub const LAYERS: usize = 1 + MODE_LAYERS + CLASS_LAYERS + LANDUSE_LAYERS;

/// One plane of the raster stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasterLayer {
    /// Every cleaned GPS fix, regardless of annotation.
    Total,
    /// Fixes of move episodes whose route entry inferred this mode.
    Mode(TransportMode),
    /// Fixes of move episodes matched to a segment of this class.
    Class(RoadClass),
    /// Fixes covered by a region tuple of this landuse category.
    Landuse(LanduseCategory),
}

impl RasterLayer {
    /// Plane index in the grid's layer-major count arena.
    pub fn index(self) -> usize {
        match self {
            RasterLayer::Total => 0,
            RasterLayer::Mode(m) => {
                1 + TransportMode::ALL
                    .iter()
                    .position(|&x| x == m)
                    .expect("mode in ALL")
            }
            RasterLayer::Class(c) => {
                let idx = match c {
                    RoadClass::Highway => 0,
                    RoadClass::Street => 1,
                    RoadClass::Path => 2,
                    RoadClass::Rail => 3,
                };
                1 + MODE_LAYERS + idx
            }
            RasterLayer::Landuse(c) => 1 + MODE_LAYERS + CLASS_LAYERS + c.ordinal(),
        }
    }
}

/// Geometry of a raster grid: the covered bounds and the square cell side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RasterConfig {
    /// Area covered by the grid (typically the city bounds). Fixes outside
    /// are counted in [`RasterGrid::dropped`], never burned.
    pub bounds: Rect,
    /// Cell side in meters.
    pub cell_m: f64,
}

/// A stack of [`LAYERS`] density planes over a uniform grid.
///
/// Counts are plain `u64` sums, so [`RasterGrid::merge`] is commutative
/// and associative: per-thread tile accumulators can be combined in any
/// order without changing a single cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RasterGrid {
    bounds: Rect,
    cell_m: f64,
    nx: usize,
    ny: usize,
    /// Layer-major: `counts[layer * nx * ny + iy * nx + ix]`.
    counts: Vec<u64>,
    dropped: u64,
}

impl RasterGrid {
    /// Creates an empty grid.
    ///
    /// # Panics
    /// Panics when `cell_m` is not a positive finite number or the bounds
    /// are empty.
    pub fn new(config: RasterConfig) -> Self {
        assert!(
            config.cell_m.is_finite() && config.cell_m > 0.0,
            "raster cell size must be positive"
        );
        assert!(!config.bounds.is_empty(), "raster bounds must be non-empty");
        let nx = ((config.bounds.width() / config.cell_m).ceil() as usize).max(1);
        let ny = ((config.bounds.height() / config.cell_m).ceil() as usize).max(1);
        Self {
            bounds: config.bounds,
            cell_m: config.cell_m,
            nx,
            ny,
            counts: vec![0; LAYERS * nx * ny],
            dropped: 0,
        }
    }

    /// The geometry this grid was built with.
    pub fn config(&self) -> RasterConfig {
        RasterConfig {
            bounds: self.bounds,
            cell_m: self.cell_m,
        }
    }

    /// Grid dimensions `(nx, ny)` in cells.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Fixes that fell outside the bounds and were not burned.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cell coordinates of a point, or `None` outside the bounds. Points
    /// exactly on the max edge clamp into the last row/column, so the
    /// bounds are covered edge to edge.
    pub fn cell_of(&self, p: Point) -> Option<(usize, usize)> {
        if !self.bounds.contains_point(p) {
            return None;
        }
        let ix = (((p.x - self.bounds.min_x) / self.cell_m) as usize).min(self.nx - 1);
        let iy = (((p.y - self.bounds.min_y) / self.cell_m) as usize).min(self.ny - 1);
        Some((ix, iy))
    }

    /// Count of one layer at cell `(ix, iy)`.
    pub fn count(&self, layer: RasterLayer, ix: usize, iy: usize) -> u64 {
        assert!(ix < self.nx && iy < self.ny, "cell out of range");
        self.counts[layer.index() * self.nx * self.ny + iy * self.nx + ix]
    }

    /// Sum of one layer over every cell.
    pub fn layer_total(&self, layer: RasterLayer) -> u64 {
        self.plane(layer).iter().sum()
    }

    /// Number of cells with a non-zero count in one layer.
    pub fn nonzero_cells(&self, layer: RasterLayer) -> usize {
        self.plane(layer).iter().filter(|&&c| c > 0).count()
    }

    /// The `k` densest cells of a layer as `(ix, iy, count)`, heaviest
    /// first; ties break by `(iy, ix)` so the ranking is deterministic.
    pub fn top_cells(&self, layer: RasterLayer, k: usize) -> Vec<(usize, usize, u64)> {
        let mut rows: Vec<(usize, usize, u64)> = self
            .plane(layer)
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i % self.nx, i / self.nx, c))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then((a.1, a.0).cmp(&(b.1, b.0))));
        rows.truncate(k);
        rows
    }

    fn plane(&self, layer: RasterLayer) -> &[u64] {
        let n = self.nx * self.ny;
        let base = layer.index() * n;
        &self.counts[base..base + n]
    }

    #[inline]
    fn bump(&mut self, layer_idx: usize, ix: usize, iy: usize) {
        self.counts[layer_idx * self.nx * self.ny + iy * self.nx + ix] += 1;
    }

    /// Burns one annotated trajectory into the grid:
    ///
    /// * every cleaned fix increments [`RasterLayer::Total`];
    /// * every fix of a matched route entry increments the entry
    ///   segment's [`RasterLayer::Class`] plane and, when a mode was
    ///   inferred, the [`RasterLayer::Mode`] plane;
    /// * every fix of a categorized region tuple increments the
    ///   [`RasterLayer::Landuse`] plane.
    ///
    /// `net` must be the road network the trajectory was matched against
    /// (route entries carry segment ids into it).
    pub fn burn(&mut self, out: &PipelineOutput, net: &RoadNetwork) {
        let records = out.cleaned.records();
        for r in records {
            match self.cell_of(r.point) {
                Some((ix, iy)) => self.bump(RasterLayer::Total.index(), ix, iy),
                None => self.dropped += 1,
            }
        }
        for (ep_idx, entries) in &out.move_routes {
            let ep = &out.episodes[*ep_idx];
            let slice = &records[ep.start..ep.end];
            for e in entries {
                let class_idx = RasterLayer::Class(net.segment(e.segment).class).index();
                let mode_idx = e.mode.map(|m| RasterLayer::Mode(m).index());
                for r in &slice[e.start..e.end] {
                    let Some((ix, iy)) = self.cell_of(r.point) else {
                        continue;
                    };
                    self.bump(class_idx, ix, iy);
                    if let Some(mi) = mode_idx {
                        self.bump(mi, ix, iy);
                    }
                }
            }
        }
        for t in &out.region_tuples {
            let Some(cat) = t.category else { continue };
            let layer_idx = RasterLayer::Landuse(cat).index();
            for r in &records[t.start..t.end] {
                if let Some((ix, iy)) = self.cell_of(r.point) {
                    self.bump(layer_idx, ix, iy);
                }
            }
        }
    }

    /// Adds another tile accumulator into this one, cell by cell.
    ///
    /// # Panics
    /// Panics when the grids were built with different geometry.
    pub fn merge(&mut self, other: &RasterGrid) {
        assert!(
            self.config() == other.config(),
            "merging rasters of different geometry"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.dropped += other.dropped;
    }
}

/// Minimum cleaned fixes each worker must have to justify its spawn.
///
/// Burning a fix is tens of nanoseconds of arithmetic, while spawning a
/// thread plus merging its 27-plane tile costs tens of microseconds; on
/// a small corpus the tiled path loses to plain serial burning. Below
/// this per-worker load [`burn_all`] sheds workers (down to fully
/// serial) rather than paying overhead it cannot amortize.
pub const MIN_FIXES_PER_WORKER: usize = 50_000;

/// Workers [`burn_all`] will actually use for a corpus and a requested
/// thread count: capped by the trajectory count and by
/// [`MIN_FIXES_PER_WORKER`] cleaned fixes of load per worker.
pub fn effective_workers(outputs: &[PipelineOutput], threads: usize) -> usize {
    let fixes: usize = outputs.iter().map(|o| o.cleaned.len()).sum();
    threads
        .min(outputs.len())
        .min((fixes / MIN_FIXES_PER_WORKER).max(1))
        .max(1)
}

/// Burns a corpus of annotated trajectories on up to `threads` workers,
/// each filling a private tile accumulator, and merges the tiles.
///
/// The worker count is auto-capped by [`effective_workers`]: a corpus
/// too small to amortize thread spawns burns serially even when more
/// threads were offered. The result is bit-identical for every thread
/// count (merging is a sum of `u64` planes), so callers can scale the
/// worker pool to the machine without perturbing analytics output.
pub fn burn_all(
    config: RasterConfig,
    outputs: &[PipelineOutput],
    net: &RoadNetwork,
    threads: usize,
) -> RasterGrid {
    burn_exact(config, outputs, net, effective_workers(outputs, threads))
}

/// Burns with exactly `threads` workers, no load-based shedding —
/// the tiled machinery behind [`burn_all`].
fn burn_exact(
    config: RasterConfig,
    outputs: &[PipelineOutput],
    net: &RoadNetwork,
    threads: usize,
) -> RasterGrid {
    let threads = threads.clamp(1, outputs.len().max(1));
    if threads <= 1 {
        let mut g = RasterGrid::new(config);
        for out in outputs {
            g.burn(out, net);
        }
        return g;
    }
    let chunk = outputs.len().div_ceil(threads);
    let tiles: Vec<RasterGrid> = std::thread::scope(|s| {
        let handles: Vec<_> = outputs
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    let mut g = RasterGrid::new(config);
                    for out in c {
                        g.burn(out, net);
                    }
                    g
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("raster worker panicked"))
            .collect()
    });
    let mut merged = RasterGrid::new(config);
    for t in &tiles {
        merged.merge(t);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_core::line::RouteEntry;
    use semitri_core::model::{PlaceKind, PlaceRef};
    use semitri_core::{
        CleaningReport, LatencyProfile, PipelineConfig, RegionTuple, SeMiTri,
        StructuredSemanticTrajectory,
    };
    use semitri_data::sim::{SimConfig, TripSimulator};
    use semitri_data::{City, CityConfig, GpsRecord, RawTrajectory};
    use semitri_episodes::{Episode, EpisodeKind};
    use semitri_geo::{TimeSpan, Timestamp};

    fn grid_100() -> RasterGrid {
        RasterGrid::new(RasterConfig {
            bounds: Rect::new(0.0, 0.0, 100.0, 100.0),
            cell_m: 10.0,
        })
    }

    /// A hand-built output: 4 fixes on a straight line, one move episode
    /// covering all of them matched to segment 0, region tuples covering
    /// the first half as Building and leaving the rest uncategorized.
    fn tiny_output(net: &RoadNetwork) -> PipelineOutput {
        let recs: Vec<GpsRecord> = (0..4)
            .map(|i| GpsRecord::new(Point::new(5.0 + 10.0 * i as f64, 5.0), Timestamp(i as f64)))
            .collect();
        let span = TimeSpan::new(Timestamp(0.0), Timestamp(3.0));
        let bbox = Rect::covering(recs.iter().map(|r| r.point));
        let episode = Episode {
            kind: EpisodeKind::Move,
            start: 0,
            end: 4,
            span,
            bbox,
            center: bbox.center(),
        };
        let entry = RouteEntry {
            segment: 0,
            span,
            start: 0,
            end: 4,
            mode: Some(TransportMode::Car),
        };
        let tuple = RegionTuple {
            place: PlaceRef::new(PlaceKind::Region, 0, "cell"),
            category: Some(LanduseCategory::Building),
            span: TimeSpan::new(Timestamp(0.0), Timestamp(1.0)),
            start: 0,
            end: 2,
        };
        let _ = net; // geometry only matters through segment 0's class
        PipelineOutput {
            cleaned: RawTrajectory::new(1, 1, recs),
            episodes: vec![episode],
            region_tuples: vec![tuple],
            move_routes: vec![(0, vec![entry])],
            stop_annotations: vec![],
            sst: StructuredSemanticTrajectory::default(),
            latency: LatencyProfile::default(),
            cleaning: CleaningReport::default(),
        }
    }

    fn tiny_net() -> RoadNetwork {
        RoadNetwork::new(
            vec![Point::new(0.0, 5.0), Point::new(100.0, 5.0)],
            vec![(0, 1, RoadClass::Street, false, "main".to_string())],
        )
    }

    #[test]
    fn layer_indexes_are_dense_and_unique() {
        let mut seen = vec![false; LAYERS];
        let mut mark = |l: RasterLayer| {
            let i = l.index();
            assert!(!seen[i], "layer index {i} reused");
            seen[i] = true;
        };
        mark(RasterLayer::Total);
        for m in TransportMode::ALL {
            mark(RasterLayer::Mode(m));
        }
        for c in [
            RoadClass::Highway,
            RoadClass::Street,
            RoadClass::Path,
            RoadClass::Rail,
        ] {
            mark(RasterLayer::Class(c));
        }
        for c in LanduseCategory::ALL {
            mark(RasterLayer::Landuse(c));
        }
        assert!(seen.into_iter().all(|s| s), "layer index has holes");
    }

    #[test]
    fn burn_counts_every_layer_as_documented() {
        let net = tiny_net();
        let mut g = grid_100();
        g.burn(&tiny_output(&net), &net);
        assert_eq!(g.layer_total(RasterLayer::Total), 4);
        assert_eq!(g.layer_total(RasterLayer::Mode(TransportMode::Car)), 4);
        assert_eq!(g.layer_total(RasterLayer::Class(RoadClass::Street)), 4);
        assert_eq!(
            g.layer_total(RasterLayer::Landuse(LanduseCategory::Building)),
            2
        );
        assert_eq!(g.layer_total(RasterLayer::Mode(TransportMode::Walk)), 0);
        assert_eq!(g.dropped(), 0);
        // fixes at x = 5, 15, 25, 35 land in distinct 10 m columns of row 0
        for i in 0..4 {
            assert_eq!(g.count(RasterLayer::Total, i, 0), 1);
        }
        assert_eq!(g.nonzero_cells(RasterLayer::Total), 4);
        assert_eq!(
            g.top_cells(RasterLayer::Total, 2),
            vec![(0, 0, 1), (1, 0, 1)]
        );
    }

    #[test]
    fn out_of_bounds_fixes_are_dropped_not_burned() {
        let net = tiny_net();
        let mut g = RasterGrid::new(RasterConfig {
            bounds: Rect::new(0.0, 0.0, 20.0, 20.0),
            cell_m: 10.0,
        });
        // fixes at x = 5, 15 are in bounds; 25, 35 fall outside
        g.burn(&tiny_output(&net), &net);
        assert_eq!(g.layer_total(RasterLayer::Total), 2);
        assert_eq!(g.dropped(), 2);
        assert_eq!(g.layer_total(RasterLayer::Class(RoadClass::Street)), 2);
    }

    #[test]
    fn max_edge_points_clamp_into_the_last_cell() {
        let g = grid_100();
        assert_eq!(g.cell_of(Point::new(100.0, 100.0)), Some((9, 9)));
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), Some((0, 0)));
        assert_eq!(g.cell_of(Point::new(100.1, 50.0)), None);
        assert_eq!(g.cell_of(Point::new(-0.1, 50.0)), None);
    }

    #[test]
    fn merge_is_element_wise_addition() {
        let net = tiny_net();
        let out = tiny_output(&net);
        let mut a = grid_100();
        a.burn(&out, &net);
        let mut b = grid_100();
        b.burn(&out, &net);
        b.burn(&out, &net);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.layer_total(RasterLayer::Total), 12);
        assert_eq!(merged.count(RasterLayer::Total, 0, 0), 3);
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = grid_100();
        let b = RasterGrid::new(RasterConfig {
            bounds: Rect::new(0.0, 0.0, 100.0, 100.0),
            cell_m: 25.0,
        });
        a.merge(&b);
    }

    #[test]
    fn small_corpora_shed_workers_to_serial() {
        let net = tiny_net();
        let outputs: Vec<PipelineOutput> = (0..8).map(|_| tiny_output(&net)).collect();
        // 8 trajectories × 4 fixes is far below the per-worker threshold
        assert_eq!(effective_workers(&outputs, 8), 1);
        assert_eq!(effective_workers(&[], 4), 1);
        // a corpus with two workers' worth of fixes gets exactly two
        let big: Vec<PipelineOutput> = (0..4).map(|_| tiny_output(&net)).collect();
        let per_out = big[0].cleaned.len();
        let want = (4 * per_out) / MIN_FIXES_PER_WORKER; // 0 → clamped to 1
        assert_eq!(effective_workers(&big, 16), want.max(1));
        // dispatch shedding never changes the result
        let config = RasterConfig {
            bounds: Rect::new(0.0, 0.0, 100.0, 100.0),
            cell_m: 10.0,
        };
        assert_eq!(
            burn_all(config, &outputs, &net, 8),
            burn_all(config, &outputs, &net, 1)
        );
    }

    #[test]
    fn parallel_burn_is_bit_identical_to_serial() {
        let city = City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 4_000.0, 4_000.0),
            poi_count: 200,
            region_count: 3,
            seed: 11,
            ..CityConfig::default()
        });
        let semitri = SeMiTri::new(&city, PipelineConfig::default());
        let outputs: Vec<PipelineOutput> = (0..6)
            .map(|i| {
                let mut sim = TripSimulator::new(
                    &city.roads,
                    SimConfig {
                        sampling_interval: 5.0,
                        ..SimConfig::default()
                    },
                    100 + i,
                    Point::new(800.0 + 300.0 * i as f64, 900.0),
                    Timestamp(8.0 * 3_600.0),
                );
                sim.dwell(600.0, true, None);
                sim.travel_to(Point::new(3_200.0, 3_000.0), TransportMode::Car);
                sim.dwell(600.0, true, None);
                semitri.annotate(&sim.finish(i, i).to_raw())
            })
            .collect();
        let config = RasterConfig {
            bounds: city.bounds(),
            cell_m: 50.0,
        };
        // bypass load-based shedding so four workers genuinely spawn
        let serial = burn_exact(config, &outputs, &city.roads, 1);
        let parallel = burn_exact(config, &outputs, &city.roads, 4);
        assert_eq!(serial, parallel);
        // the corpus actually hit the grid: every cleaned fix of every
        // trajectory is inside the city bounds
        let fixes: u64 = outputs.iter().map(|o| o.cleaned.len() as u64).sum();
        assert_eq!(
            serial.layer_total(RasterLayer::Total) + serial.dropped(),
            fixes
        );
        assert!(serial.layer_total(RasterLayer::Total) > 0);
        assert!(serial.nonzero_cells(RasterLayer::Total) > 1);
    }
}
