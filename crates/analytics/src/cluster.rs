//! Density-based clustering of stop centers.
//!
//! The Semantic Trajectory Analytics Layer of Fig. 2 lists *clustering*
//! among its methodologies, and the paper's related work (Zhou et al.,
//! "Discovering Personally Meaningful Places") motivates it: recurring
//! stop locations of one mover — home, office, gym — emerge as dense
//! clusters of stop centers across days. This module implements DBSCAN
//! over stop centers with a grid-accelerated neighborhood query.

use semitri_geo::{Point, Rect};
use semitri_index::GridIndex;

/// A discovered place: a dense cluster of stop centers.
#[derive(Debug, Clone, PartialEq)]
pub struct StopCluster {
    /// Cluster id (0-based, ordered by discovery).
    pub id: usize,
    /// Mean position of the member stops.
    pub centroid: Point,
    /// Indexes of the member stops in the input slice.
    pub members: Vec<usize>,
}

impl StopCluster {
    /// Number of member stops.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the cluster has no members (never produced by the
    /// algorithm; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// Neighborhood radius ε in meters.
    pub eps_m: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self {
            eps_m: 100.0,
            min_pts: 3,
        }
    }
}

/// Runs DBSCAN over stop centers. Returns the clusters plus, aligned with
/// the input, each stop's cluster id (`None` = noise).
///
/// O(n · k) with a grid index, where `k` is the mean ε-neighborhood size.
pub fn dbscan_stops(
    centers: &[Point],
    params: DbscanParams,
) -> (Vec<StopCluster>, Vec<Option<usize>>) {
    assert!(params.eps_m > 0.0, "eps must be positive");
    assert!(params.min_pts >= 1, "min_pts must be >= 1");
    let n = centers.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }

    let bounds = Rect::covering(centers.iter().copied()).inflate(params.eps_m);
    let mut grid = GridIndex::new(bounds, params.eps_m.max(1.0));
    for (i, &c) in centers.iter().enumerate() {
        grid.insert(c, i);
    }
    let neighbors = |i: usize| -> Vec<usize> {
        let mut out = Vec::new();
        grid.for_each_within(centers[i], params.eps_m, |_, &j| out.push(j));
        out
    };

    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut clusters: Vec<StopCluster> = Vec::new();

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let seed = neighbors(i);
        if seed.len() < params.min_pts {
            continue; // noise (may later be absorbed as a border point)
        }
        let cluster_id = clusters.len();
        let mut members = Vec::new();
        let mut queue = seed;
        assignment[i] = Some(cluster_id);
        members.push(i);
        while let Some(j) = queue.pop() {
            if assignment[j].is_none() {
                assignment[j] = Some(cluster_id);
                members.push(j);
            }
            if !visited[j] {
                visited[j] = true;
                let nb = neighbors(j);
                if nb.len() >= params.min_pts {
                    queue.extend(nb);
                }
            }
        }
        members.sort_unstable();
        members.dedup();
        let inv = 1.0 / members.len() as f64;
        let cx: f64 = members.iter().map(|&m| centers[m].x).sum();
        let cy: f64 = members.iter().map(|&m| centers[m].y).sum();
        clusters.push(StopCluster {
            id: cluster_id,
            centroid: Point::new(cx * inv, cy * inv),
            members,
        });
    }
    (clusters, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399; // golden-angle spiral
                let r = spread * (i as f64 / n as f64).sqrt();
                Point::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 20, 40.0);
        pts.extend(blob(1_000.0, 0.0, 15, 40.0));
        let (clusters, assignment) = dbscan_stops(&pts, DbscanParams::default());
        assert_eq!(clusters.len(), 2);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 35);
        // assignments agree with membership
        for c in &clusters {
            for &m in &c.members {
                assert_eq!(assignment[m], Some(c.id));
            }
        }
        // centroids near the blob centers
        assert!(clusters[0].centroid.distance(Point::new(0.0, 0.0)) < 30.0);
        assert!(clusters[1].centroid.distance(Point::new(1_000.0, 0.0)) < 30.0);
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(0.0, 0.0, 10, 30.0);
        pts.push(Point::new(5_000.0, 5_000.0));
        pts.push(Point::new(-5_000.0, 3_000.0));
        let (clusters, assignment) = dbscan_stops(&pts, DbscanParams::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(assignment[10], None);
        assert_eq!(assignment[11], None);
    }

    #[test]
    fn empty_input() {
        let (clusters, assignment) = dbscan_stops(&[], DbscanParams::default());
        assert!(clusters.is_empty());
        assert!(assignment.is_empty());
    }

    #[test]
    fn all_same_point_is_one_cluster() {
        let pts = vec![Point::new(5.0, 5.0); 10];
        let (clusters, assignment) = dbscan_stops(&pts, DbscanParams::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 10);
        assert!(assignment.iter().all(|a| *a == Some(0)));
        assert_eq!(clusters[0].centroid, Point::new(5.0, 5.0));
    }

    #[test]
    fn min_pts_respected() {
        // a pair of points is noise with min_pts = 3
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let (clusters, _) = dbscan_stops(
            &pts,
            DbscanParams {
                eps_m: 100.0,
                min_pts: 3,
            },
        );
        assert!(clusters.is_empty());
        // but a cluster with min_pts = 2
        let (clusters, _) = dbscan_stops(
            &pts,
            DbscanParams {
                eps_m: 100.0,
                min_pts: 2,
            },
        );
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn chain_connectivity_links_through_cores() {
        // a chain of points each within eps of the next forms one cluster
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 50.0, 0.0)).collect();
        let (clusters, _) = dbscan_stops(
            &pts,
            DbscanParams {
                eps_m: 60.0,
                min_pts: 2,
            },
        );
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 20);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn rejects_bad_eps() {
        dbscan_stops(
            &[],
            DbscanParams {
                eps_m: 0.0,
                min_pts: 1,
            },
        );
    }
}
