//! The JSON-lines wire format.
//!
//! Hand-rolled for the same reason the store's binary codec is (see
//! `semitri-store`): the schema is small and fixed, crates.io is out of
//! reach, and keeping the format inspectable beats pulling a JSON stack.
//! One JSON object per line, flat scalar fields only on input.
//!
//! **Request body** (`POST /annotate`, `POST /session/{user}/push`):
//!
//! ```text
//! {"object_id":7,"trajectory_id":1}      <- optional header, first line
//! {"x":1200.0,"y":1400.0,"t":28800.0}    <- one line per GPS fix
//! ```
//!
//! Coordinates are meters in the city's local projection, `t` is unix
//! seconds — the same convention as the CSV reader in `semitri-data`.
//!
//! **Response body**: one `{"type":...}` object per line; `summary` +
//! `tuple` lines for a full annotation, `move`/`stop` event lines for
//! streaming pushes, `cleaning` + `end` for a flush. Everything the
//! server emits goes through [`encode_output`] / [`encode_events`] /
//! [`encode_flush`], and the CLI `annotate` subcommand prints through
//! the same functions — byte-identical output is a design invariant the
//! integration suite asserts, not an accident.

use semitri_core::streaming::StreamEvent;
use semitri_core::{Mutation, PipelineOutput};
use semitri_data::{GpsFeed, GpsRecord, LanduseCategory, PoiCategory, RegionKind, RoadClass};
use semitri_geo::{Point, Rect, Timestamp};
use semitri_obs::CleaningReport;
use std::fmt;

/// A malformed request body.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for WireError {}

fn err(line: usize, msg: impl Into<String>) -> WireError {
    WireError {
        line,
        msg: msg.into(),
    }
}

/// Splits one flat JSON object into `(key, raw value token)` pairs.
/// Accepts exactly the subset the wire format uses: string keys without
/// escapes, scalar values (numbers, `true`/`false`/`null`, escape-free
/// strings). Anything nested is a syntax error.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("expected a {...} object")?;
    let mut pairs = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // key
        rest = rest.strip_prefix('"').ok_or("expected a quoted key")?;
        let kq = rest.find('"').ok_or("unterminated key")?;
        let key = &rest[..kq];
        rest = rest[kq + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or("expected ':' after key")?;
        rest = rest.trim_start();
        // value token: a quoted string or a bare scalar up to ',' / end
        let value;
        if let Some(vr) = rest.strip_prefix('"') {
            let vq = vr.find('"').ok_or("unterminated string value")?;
            value = &vr[..vq];
            rest = vr[vq + 1..].trim_start();
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            value = rest[..end].trim();
            if value.is_empty() {
                return Err("empty value".to_string());
            }
            if value.contains(['{', '[', '"']) {
                return Err("nested values are not part of the wire format".to_string());
            }
            rest = &rest[end..];
        }
        pairs.push((key, value));
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            if rest.is_empty() {
                return Err("trailing comma".to_string());
            }
        } else if !rest.is_empty() {
            return Err("expected ',' between fields".to_string());
        }
    }
    Ok(pairs)
}

fn field_f64(pairs: &[(&str, &str)], key: &str) -> Option<Result<f64, String>> {
    pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| {
        v.parse::<f64>()
            .map_err(|_| format!("field '{key}' is not a number: {v:?}"))
    })
}

fn field_u64(pairs: &[(&str, &str)], key: &str) -> Option<Result<u64, String>> {
    pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| {
        v.parse::<u64>()
            .map_err(|_| format!("field '{key}' is not an unsigned integer: {v:?}"))
    })
}

fn parse_fix(pairs: &[(&str, &str)], line_no: usize) -> Result<GpsRecord, WireError> {
    let get = |key: &str| -> Result<f64, WireError> {
        field_f64(pairs, key)
            .ok_or_else(|| err(line_no, format!("fix is missing field '{key}'")))?
            .map_err(|m| err(line_no, m))
    };
    let x = get("x")?;
    let y = get("y")?;
    let t = get("t")?;
    Ok(GpsRecord::new(Point::new(x, y), Timestamp(t)))
}

/// Parses a feed body: an optional `object_id`/`trajectory_id` header
/// line followed by one fix per line. Blank lines are ignored.
pub fn parse_feed(body: &str) -> Result<GpsFeed, WireError> {
    let mut object_id = 0u64;
    let mut trajectory_id = 0u64;
    let mut records = Vec::new();
    let mut saw_any = false;
    for (i, raw) in body.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let pairs = parse_flat_object(raw).map_err(|m| err(line_no, m))?;
        let is_header = pairs
            .iter()
            .any(|(k, _)| *k == "object_id" || *k == "trajectory_id");
        if is_header {
            if saw_any {
                return Err(err(line_no, "header must be the first line"));
            }
            if let Some(v) = field_u64(&pairs, "object_id") {
                object_id = v.map_err(|m| err(line_no, m))?;
            }
            if let Some(v) = field_u64(&pairs, "trajectory_id") {
                trajectory_id = v.map_err(|m| err(line_no, m))?;
            }
            saw_any = true;
            continue;
        }
        records.push(parse_fix(&pairs, line_no)?);
        saw_any = true;
    }
    if !saw_any {
        return Err(err(1, "empty body"));
    }
    Ok(GpsFeed::new(object_id, trajectory_id, records))
}

/// Parses a push body: fixes only (a header line, if present, is
/// validated and ignored — the session identity lives in the URL).
pub fn parse_records(body: &str) -> Result<Vec<GpsRecord>, WireError> {
    Ok(parse_feed(body)?.records)
}

fn field_str<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn road_class(label: &str) -> Option<RoadClass> {
    [
        RoadClass::Highway,
        RoadClass::Street,
        RoadClass::Path,
        RoadClass::Rail,
    ]
    .into_iter()
    .find(|c| c.label() == label)
}

fn region_kind(label: &str) -> Option<RegionKind> {
    [
        RegionKind::Campus,
        RegionKind::Recreation,
        RegionKind::Market,
        RegionKind::Residential,
    ]
    .into_iter()
    .find(|k| k.label() == label)
}

/// Parses a `POST /admin/update` body: one mutation per line, each a
/// flat JSON object selected by its `op` field.
///
/// ```text
/// {"op":"add_road","x1":100,"y1":100,"x2":300,"y2":100,"class":"street","bus":false,"name":"New St"}
/// {"op":"add_poi","x":150,"y":150,"category":"feedings","name":"New Cafe"}
/// {"op":"set_landuse","x":50,"y":50,"category":"lake"}
/// {"op":"add_region","name":"New Campus","kind":"campus","min_x":0,"min_y":0,"max_x":500,"max_y":500}
/// ```
///
/// `class` defaults to `street`, `bus` to `false`, names to `""`;
/// category/kind labels are the same strings the annotation output uses.
pub fn parse_mutations(body: &str) -> Result<Vec<Mutation>, WireError> {
    let mut out = Vec::new();
    for (i, raw) in body.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let pairs = parse_flat_object(raw).map_err(|m| err(line_no, m))?;
        let get = |key: &str| -> Result<f64, WireError> {
            field_f64(&pairs, key)
                .ok_or_else(|| err(line_no, format!("mutation is missing field '{key}'")))?
                .map_err(|m| err(line_no, m))
        };
        let op = field_str(&pairs, "op")
            .ok_or_else(|| err(line_no, "mutation is missing field 'op'"))?;
        let mutation = match op {
            "add_road" => {
                let class_label = field_str(&pairs, "class").unwrap_or("street");
                let class = road_class(class_label)
                    .ok_or_else(|| err(line_no, format!("unknown road class {class_label:?}")))?;
                let bus_route = matches!(field_str(&pairs, "bus"), Some("true"));
                Mutation::AddRoad {
                    from: Point::new(get("x1")?, get("y1")?),
                    to: Point::new(get("x2")?, get("y2")?),
                    class,
                    bus_route,
                    name: field_str(&pairs, "name").unwrap_or("").to_string(),
                }
            }
            "add_poi" => {
                let label = field_str(&pairs, "category").unwrap_or("unknown");
                let category = PoiCategory::ALL
                    .into_iter()
                    .find(|c| c.label() == label)
                    .ok_or_else(|| err(line_no, format!("unknown poi category {label:?}")))?;
                Mutation::AddPoi {
                    point: Point::new(get("x")?, get("y")?),
                    category,
                    name: field_str(&pairs, "name").unwrap_or("").to_string(),
                }
            }
            "set_landuse" => {
                let label = field_str(&pairs, "category")
                    .ok_or_else(|| err(line_no, "mutation is missing field 'category'"))?;
                let category = LanduseCategory::ALL
                    .into_iter()
                    .find(|c| c.label() == label || c.code() == label)
                    .ok_or_else(|| err(line_no, format!("unknown landuse category {label:?}")))?;
                Mutation::SetLanduse {
                    at: Point::new(get("x")?, get("y")?),
                    category,
                }
            }
            "add_region" => {
                let kind_label = field_str(&pairs, "kind").unwrap_or("campus");
                let kind = region_kind(kind_label)
                    .ok_or_else(|| err(line_no, format!("unknown region kind {kind_label:?}")))?;
                Mutation::AddRegion {
                    name: field_str(&pairs, "name").unwrap_or("").to_string(),
                    kind,
                    bounds: Rect::new(get("min_x")?, get("min_y")?, get("max_x")?, get("max_y")?),
                }
            }
            other => return Err(err(line_no, format!("unknown mutation op {other:?}"))),
        };
        mutation.validate().map_err(|m| err(line_no, m))?;
        out.push(mutation);
    }
    if out.is_empty() {
        return Err(err(1, "empty update body"));
    }
    Ok(out)
}

/// Escapes a string for inclusion in a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON-safe float rendering (JSON has no Infinity/NaN literals; the
/// pipeline never emits them, but the encoder must not either).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn push_cleaning(out: &mut String, c: &CleaningReport) {
    out.push_str(&format!(
        "\"input\":{},\"kept\":{},\"dropped\":{},\"reordered\":{},\"deduped\":{}",
        c.input,
        c.kept,
        c.dropped(),
        c.reordered,
        c.deduped
    ));
}

/// Renders a full pipeline output (`POST /annotate` and the CLI
/// `annotate` subcommand) as JSON lines: one `summary` line, then one
/// `tuple` line per SST tuple.
pub fn encode_output(out: &PipelineOutput) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"type\":\"summary\",\"object_id\":{},\"trajectory_id\":{},",
        out.sst.object_id, out.sst.trajectory_id
    ));
    push_cleaning(&mut s, &out.cleaning);
    s.push_str(&format!(
        ",\"episodes\":{},\"tuples\":{}}}\n",
        out.episodes.len(),
        out.sst.len()
    ));
    for tuple in &out.sst.tuples {
        s.push_str("{\"type\":\"tuple\",\"place\":");
        match &tuple.place {
            Some(p) => {
                push_json_str(&mut s, &p.label);
                s.push_str(&format!(",\"place_kind\":\"{}\"", p.kind.label()));
                s.push_str(&format!(",\"place_id\":{}", p.id));
            }
            None => s.push_str("null,\"place_kind\":null,\"place_id\":null"),
        }
        s.push_str(&format!(
            ",\"t_in\":{},\"t_out\":{},\"annotations\":[",
            json_f64(tuple.span.start.0),
            json_f64(tuple.span.end.0)
        ));
        for (i, a) in tuple.annotations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"key\":");
            push_json_str(&mut s, &a.key);
            s.push_str(",\"value\":");
            match &a.value {
                semitri_core::AnnotationValue::Mode(m) => push_json_str(&mut s, m.label()),
                semitri_core::AnnotationValue::Activity(c) => push_json_str(&mut s, c.label()),
                semitri_core::AnnotationValue::Text(t) => push_json_str(&mut s, t),
                semitri_core::AnnotationValue::Number(n) => s.push_str(&json_f64(*n)),
            }
            s.push('}');
        }
        s.push_str("]}\n");
    }
    s
}

/// Renders streaming events (`POST /session/{user}/push` responses).
pub fn encode_events(events: &[StreamEvent]) -> String {
    let mut s = String::new();
    for e in events {
        match e {
            StreamEvent::Move { episode, route } => {
                s.push_str(&format!(
                    "{{\"type\":\"move\",\"start\":{},\"end\":{},\"t_in\":{},\"t_out\":{},\"entries\":{}}}\n",
                    episode.start,
                    episode.end,
                    json_f64(episode.span.start.0),
                    json_f64(episode.span.end.0),
                    route.len()
                ));
            }
            StreamEvent::Stop {
                episode,
                annotation,
                region,
            } => {
                s.push_str(&format!(
                    "{{\"type\":\"stop\",\"start\":{},\"end\":{},\"t_in\":{},\"t_out\":{},\"category\":",
                    episode.start,
                    episode.end,
                    json_f64(episode.span.start.0),
                    json_f64(episode.span.end.0)
                ));
                push_json_str(&mut s, annotation.category.label());
                s.push_str(",\"region\":");
                match region {
                    Some(r) => push_json_str(&mut s, &r.label),
                    None => s.push_str("null"),
                }
                s.push_str("}\n");
            }
        }
    }
    s
}

/// Renders a flush response: the final events, the session's cumulative
/// cleaning report, and a terminal `end` line.
pub fn encode_flush(events: &[StreamEvent], cleaning: &CleaningReport, records: usize) -> String {
    let mut s = encode_events(events);
    s.push_str("{\"type\":\"cleaning\",");
    push_cleaning(&mut s, cleaning);
    s.push_str("}\n");
    s.push_str(&format!("{{\"type\":\"end\",\"records\":{records}}}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_roundtrip_with_header() {
        let body = "{\"object_id\":7,\"trajectory_id\":3}\n\
                    {\"x\":1.5,\"y\":-2.25,\"t\":100}\n\
                    \n\
                    {\"x\":2.5, \"y\":0, \"t\":108.5}\n";
        let feed = parse_feed(body).unwrap();
        assert_eq!(feed.object_id, 7);
        assert_eq!(feed.trajectory_id, 3);
        assert_eq!(feed.records.len(), 2);
        assert_eq!(feed.records[0].point, Point::new(1.5, -2.25));
        assert_eq!(feed.records[1].t.0, 108.5);
    }

    #[test]
    fn feed_without_header_defaults_ids() {
        let feed = parse_feed("{\"x\":0,\"y\":0,\"t\":1}\n").unwrap();
        assert_eq!(feed.object_id, 0);
        assert_eq!(feed.trajectory_id, 0);
        assert_eq!(feed.records.len(), 1);
    }

    #[test]
    fn malformed_bodies_are_rejected_with_line_numbers() {
        for (body, want_line) in [
            ("", 1),
            ("not json", 1),
            ("{\"x\":0,\"y\":0,\"t\":1}\n{\"x\":}", 2),
            ("{\"x\":0,\"y\":0}\n", 1),                // missing t
            ("{\"x\":0,\"y\":0,\"t\":\"noon\"}\n", 1), // t not a number
            ("{\"x\":0,\"y\":0,\"t\":1}\n{\"object_id\":1}", 2), // late header
            ("{\"object_id\":-1}", 1),                 // negative id
            ("{\"x\":[1],\"y\":0,\"t\":1}", 1),        // nested value
            ("{\"x\":0,\"y\":0,\"t\":1,}", 1),         // trailing comma
        ] {
            let e = parse_feed(body).unwrap_err();
            assert_eq!(e.line, want_line, "{body:?} -> {e}");
        }
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn encoded_lines_are_json_objects() {
        use semitri_core::point::StopAnnotation;
        use semitri_core::streaming::StreamEvent;
        use semitri_data::PoiCategory;
        use semitri_episodes::{Episode, EpisodeKind};
        use semitri_geo::{Rect, TimeSpan};
        let episode = Episode {
            kind: EpisodeKind::Stop,
            start: 0,
            end: 4,
            span: TimeSpan::new(Timestamp(0.0), Timestamp(30.0)),
            bbox: Rect::new(0.0, 0.0, 1.0, 1.0),
            center: Point::new(0.5, 0.5),
        };
        let events = vec![StreamEvent::Stop {
            episode,
            annotation: StopAnnotation {
                category: PoiCategory::Services,
                poi: None,
            },
            region: None,
        }];
        let body = encode_flush(&events, &CleaningReport::default(), 4);
        assert_eq!(body.lines().count(), 3);
        for line in body.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(body.contains("\"type\":\"stop\""));
        assert!(body.contains("\"type\":\"cleaning\""));
        assert!(body.ends_with("{\"type\":\"end\",\"records\":4}\n"));
    }

    #[test]
    fn mutation_batches_parse_with_defaults() {
        let body = concat!(
            "{\"op\":\"add_road\",\"x1\":0,\"y1\":0,\"x2\":100,\"y2\":0}\n",
            "{\"op\":\"add_poi\",\"x\":5,\"y\":5,\"category\":\"item sale\",\"name\":\"kiosk\"}\n",
            "{\"op\":\"set_landuse\",\"x\":1,\"y\":1,\"category\":\"4.13\"}\n",
            "{\"op\":\"add_region\",\"name\":\"yard\",\"kind\":\"market\",",
            "\"min_x\":0,\"min_y\":0,\"max_x\":50,\"max_y\":50}\n",
        );
        let muts = parse_mutations(body).unwrap();
        assert_eq!(muts.len(), 4);
        assert!(matches!(
            &muts[0],
            Mutation::AddRoad {
                class: semitri_data::RoadClass::Street,
                bus_route: false,
                ..
            }
        ));
        assert!(matches!(
            &muts[1],
            Mutation::AddPoi {
                category: semitri_data::PoiCategory::ItemSale,
                ..
            }
        ));
        assert!(matches!(
            &muts[2],
            Mutation::SetLanduse {
                category: semitri_data::LanduseCategory::Lake,
                ..
            }
        ));
        assert!(matches!(
            &muts[3],
            Mutation::AddRegion {
                kind: semitri_data::RegionKind::Market,
                ..
            }
        ));
    }

    #[test]
    fn hostile_mutation_bodies_are_rejected_whole() {
        assert!(parse_mutations("").is_err());
        assert!(parse_mutations("{\"op\":\"drop_tables\"}\n").is_err());
        // a degenerate road fails validation at parse time
        assert!(
            parse_mutations("{\"op\":\"add_road\",\"x1\":1,\"y1\":1,\"x2\":1,\"y2\":1}\n").is_err()
        );
        // non-finite coordinates are rejected
        assert!(parse_mutations("{\"op\":\"add_poi\",\"x\":\"nan\",\"y\":0}\n").is_err());
        // one bad line poisons the batch even when others are fine
        let mixed = concat!(
            "{\"op\":\"add_poi\",\"x\":5,\"y\":5}\n",
            "{\"op\":\"set_landuse\",\"x\":1,\"y\":1,\"category\":\"no such\"}\n",
        );
        assert!(parse_mutations(mixed).is_err());
    }
}
