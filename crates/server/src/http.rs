//! A minimal, defensive HTTP/1.1 implementation over `std::net`.
//!
//! Hand-rolled because the build environment has no crates.io access and
//! the server's needs are narrow: request-line + headers + Content-Length
//! bodies, keep-alive, and hard limits everywhere a hostile or truncated
//! peer could otherwise pin a worker (oversized lines, absurd body
//! lengths, slow-loris reads are cut off by the socket read timeout the
//! caller installs). No chunked transfer, no TLS, no HTTP/2 — clients
//! are curl, the load harness and the integration suite.

use std::io::{self, BufRead, Read, Write};

/// Hard cap on the request line, per header line, and header count.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Maximum number of request headers accepted.
pub const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/session/alice/push`.
    pub path: String,
    /// Body bytes (empty unless Content-Length was given).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed (or timed out) before a full request arrived.
    Disconnected,
    /// The bytes received were not valid HTTP within our limits.
    BadRequest(&'static str),
    /// A syntactically valid request exceeded the configured body cap.
    PayloadTooLarge,
}

/// Outcome of waiting for the next request on a keep-alive connection.
#[derive(Debug)]
pub enum NextRequest {
    /// A complete request was parsed.
    Request(Request),
    /// Clean end of connection: EOF before the first byte of a request.
    Closed,
}

/// Reads one line (up to CRLF/LF), enforcing [`MAX_LINE_BYTES`]. Returns
/// `None` on immediate EOF.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take((MAX_LINE_BYTES + 1) as u64)
        .read_until(b'\n', &mut buf)
        .map_err(|_| HttpError::Disconnected)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        // either the line blew the cap or the peer died mid-line
        return Err(if n > MAX_LINE_BYTES {
            HttpError::BadRequest("line too long")
        } else {
            HttpError::Disconnected
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 header bytes"))
}

/// Reads and parses the next request off a keep-alive connection.
///
/// `max_body` bounds the accepted Content-Length; bigger requests get
/// [`HttpError::PayloadTooLarge`] *without* reading the body (the caller
/// answers 413 and closes — draining an attacker-sized body would be the
/// denial of service we are avoiding).
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<NextRequest, HttpError> {
    let request_line = match read_line(reader)? {
        None => return Ok(NextRequest::Closed),
        Some(l) if l.is_empty() => return Err(HttpError::BadRequest("empty request line")),
        Some(l) => l,
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest("request target must be absolute"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut headers = 0usize;
    loop {
        let line = read_line(reader)?.ok_or(HttpError::Disconnected)?;
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("malformed header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| HttpError::BadRequest("unparseable Content-Length"))?;
            }
            "transfer-encoding" => {
                return Err(HttpError::BadRequest("chunked bodies are not supported"));
            }
            "connection" if value.eq_ignore_ascii_case("close") => {
                keep_alive = false;
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body).map_err(|_| HttpError::Disconnected)?;
    Ok(NextRequest::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    }))
}

/// Canonical reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response (status line, minimal headers, body).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<NextRequest, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let raw = b"POST /annotate HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        match parse(raw).unwrap() {
            NextRequest::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/annotate");
                assert_eq!(r.body, b"hello");
                assert!(r.keep_alive);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse(raw).unwrap() {
            NextRequest::Request(r) => assert!(!r.keep_alive),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_before_request_is_a_clean_close() {
        assert!(matches!(parse(b"").unwrap(), NextRequest::Closed));
    }

    #[test]
    fn garbage_and_truncation_are_distinguished() {
        assert!(matches!(
            parse(b"NOT A REQUEST\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"post /x HTTP/1.1\r\n\r\n"), // lowercase method
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x SMTP/1.0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // mid-body disconnect: Content-Length promises more than arrives
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::Disconnected)
        ));
        // mid-headers disconnect
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: y"),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn oversized_declarations_are_refused() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(HttpError::PayloadTooLarge)
        ));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(
            parse(long.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "application/json", b"{}", true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n{}"));
    }
}
