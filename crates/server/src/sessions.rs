//! Sharded per-user streaming sessions with LRU eviction and bounded
//! queues.
//!
//! Sessions are partitioned across shards by a hash of the user id, so
//! concurrent pushes for different users contend only within a shard
//! while the spatial indexes stay shared (one `SeMiTri` serves every
//! session by reference). Each shard is a plain mutex-guarded map: the
//! work done under the lock is the incremental annotation of one push,
//! which is exactly the work that must be serialized per user anyway.

use semitri_core::streaming::{StreamEvent, StreamingAnnotator};
use semitri_data::GpsRecord;
use semitri_obs::CleaningReport;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity and backpressure bounds for the session table.
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Shard count (sessions hash-partition across these).
    pub shards: usize,
    /// Maximum live sessions across all shards; beyond it the
    /// least-recently-used session *in the new session's shard* is
    /// evicted.
    pub max_sessions: usize,
    /// Maximum fixes accepted in a single push request.
    pub max_push_records: usize,
    /// Maximum fixes a session may accumulate before it must flush
    /// (bounds the per-session record buffer — the server's backpressure
    /// signal, surfaced as HTTP 429).
    pub max_session_records: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        Self {
            shards: 16,
            max_sessions: 4_096,
            max_push_records: 20_000,
            max_session_records: 200_000,
        }
    }
}

struct Session<'c> {
    annotator: StreamingAnnotator<'c>,
    /// Monotonic touch tick for LRU ordering.
    last_used: u64,
    /// Fixes pushed into this session so far (accepted or not — this
    /// bounds buffered work, so it counts what arrived).
    pushed: usize,
}

struct Shard<'c> {
    sessions: HashMap<String, Session<'c>>,
}

/// Why a push was refused (the server answers HTTP 429 for both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejected {
    /// A single push exceeded [`SessionLimits::max_push_records`].
    PushTooLarge,
    /// Accepting the push would exceed
    /// [`SessionLimits::max_session_records`]; the session must flush.
    SessionFull,
}

/// A session closed by LRU pressure rather than an explicit flush. The
/// in-flight episode state is *not* dropped: the annotator's terminal
/// flush runs at eviction (outside the shard lock), so the open episode
/// is annotated and accounted for exactly as an explicit flush would.
pub struct EvictedSession {
    /// The evicted user id.
    pub user: String,
    /// Final events from the terminal flush of the evicted session.
    pub events: Vec<StreamEvent>,
    /// The evicted session's cumulative cleaning report.
    pub cleaning: CleaningReport,
    /// Accepted records over the evicted session's lifetime.
    pub records: usize,
}

/// What a push did.
pub struct PushResult {
    /// Events emitted by the annotator for these fixes.
    pub events: Vec<StreamEvent>,
    /// Whether this push created the session.
    pub created: bool,
    /// Sessions evicted to make room (LRU within the shard), with the
    /// results of their terminal flushes.
    pub evicted: Vec<EvictedSession>,
}

/// What a flush returned.
pub struct FlushResult {
    /// Final events (the open episode closing, usually).
    pub events: Vec<StreamEvent>,
    /// The session's cumulative cleaning report.
    pub cleaning: CleaningReport,
    /// Accepted records over the session's lifetime.
    pub records: usize,
}

/// The sharded session table.
pub struct SessionTable<'c> {
    shards: Vec<Mutex<Shard<'c>>>,
    limits: SessionLimits,
    /// Sessions a shard may hold before evicting (global cap spread
    /// evenly; at least 1).
    per_shard_cap: usize,
    tick: AtomicU64,
}

impl<'c> SessionTable<'c> {
    /// An empty table with the given bounds.
    pub fn new(limits: SessionLimits) -> Self {
        let shards = limits.shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        sessions: HashMap::new(),
                    })
                })
                .collect(),
            per_shard_cap: (limits.max_sessions / shards).max(1),
            limits,
            tick: AtomicU64::new(0),
        }
    }

    /// The configured bounds.
    pub fn limits(&self) -> &SessionLimits {
        &self.limits
    }

    /// Shard index for a user id (stable across calls).
    pub fn shard_of(&self, user: &str) -> usize {
        let mut h = DefaultHasher::new();
        user.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Live session count (sums shard sizes; momentarily stale under
    /// concurrent churn, exact when quiesced).
    pub fn live(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).sessions.len())
            .sum()
    }

    /// Pushes `records` into `user`'s session, creating it with `make`
    /// if absent. Returns [`PushRejected`] when a queue bound is exceeded
    /// — the fixes are *not* ingested and the session is untouched
    /// (including not created).
    pub fn push(
        &self,
        user: &str,
        records: &[GpsRecord],
        make: impl FnOnce() -> StreamingAnnotator<'c>,
    ) -> Result<PushResult, PushRejected> {
        if records.len() > self.limits.max_push_records {
            return Err(PushRejected::PushTooLarge);
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[self.shard_of(user)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(session) = shard.sessions.get(user) {
            if session.pushed + records.len() > self.limits.max_session_records {
                return Err(PushRejected::SessionFull);
            }
        } else if records.len() > self.limits.max_session_records {
            return Err(PushRejected::SessionFull);
        }
        let created = !shard.sessions.contains_key(user);
        let session = shard
            .sessions
            .entry(user.to_string())
            .or_insert_with(|| Session {
                annotator: make(),
                last_used: tick,
                pushed: 0,
            });
        session.last_used = tick;
        session.pushed += records.len();
        let mut events = Vec::new();
        for &r in records {
            events.extend(session.annotator.push(r));
        }
        let mut victims: Vec<(String, Session<'c>)> = Vec::new();
        while shard.sessions.len() > self.per_shard_cap {
            // evict the least-recently-used session that is not the one
            // just touched; O(shard size), and shards are small by cap
            let victim = shard
                .sessions
                .iter()
                .filter(|(k, _)| k.as_str() != user)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let session = shard.sessions.remove(&k).expect("victim chosen from map");
                    victims.push((k, session));
                }
                None => break,
            }
        }
        // terminal-flush the victims *outside* the shard lock: closing an
        // open episode runs real annotation work (map matching, HMM), and
        // an eviction must neither stall the shard nor silently drop the
        // episode state the victim had in flight
        drop(shard);
        let evicted = victims
            .into_iter()
            .map(|(user, mut session)| {
                let events = session.annotator.flush();
                EvictedSession {
                    user,
                    events,
                    cleaning: *session.annotator.cleaning_report(),
                    records: session.annotator.record_count(),
                }
            })
            .collect();
        Ok(PushResult {
            events,
            created,
            evicted,
        })
    }

    /// Flushes and removes `user`'s session. `None` if it does not exist
    /// (never created, already flushed, or evicted). The streaming
    /// annotator's flush is terminal, so removal *is* the natural
    /// lifecycle: a later push for the same user starts a fresh session.
    pub fn flush(&self, user: &str) -> Option<FlushResult> {
        let mut shard = self.shards[self.shard_of(user)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut session = shard.sessions.remove(user)?;
        drop(shard); // annotate the final episode outside the shard lock
        let events = session.annotator.flush();
        Some(FlushResult {
            events,
            cleaning: *session.annotator.cleaning_report(),
            records: session.annotator.record_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_core::{PipelineConfig, SeMiTri};
    use semitri_data::{City, CityConfig};
    use semitri_episodes::VelocityPolicy;
    use semitri_geo::{Point, Rect, Timestamp};

    fn small_city() -> City {
        City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 2_000.0, 2_000.0),
            poi_count: 50,
            region_count: 2,
            seed: 5,
            ..CityConfig::default()
        })
    }

    fn fix(i: usize) -> GpsRecord {
        GpsRecord::new(
            Point::new(100.0 + i as f64, 100.0),
            Timestamp(i as f64 * 8.0),
        )
    }

    #[test]
    fn lru_eviction_is_per_shard_and_bounded() {
        let city = small_city();
        let pipeline = SeMiTri::new(&city, PipelineConfig::default());
        let table = SessionTable::new(SessionLimits {
            shards: 2,
            max_sessions: 4,
            ..SessionLimits::default()
        });
        let mut live = 0usize;
        let mut evicted_total = 0usize;
        for u in 0..20 {
            let user = format!("user-{u}");
            let r = table
                .push(&user, &[fix(0), fix(1)], || {
                    StreamingAnnotator::over(&pipeline, VelocityPolicy::default())
                })
                .unwrap();
            assert!(r.created);
            live += 1;
            live -= r.evicted.len();
            evicted_total += r.evicted.len();
        }
        assert_eq!(table.live(), live);
        assert!(table.live() <= 4);
        assert_eq!(live + evicted_total, 20);
    }

    #[test]
    fn push_bounds_reject_without_side_effects() {
        let city = small_city();
        let pipeline = SeMiTri::new(&city, PipelineConfig::default());
        let table = SessionTable::new(SessionLimits {
            shards: 1,
            max_sessions: 8,
            max_push_records: 4,
            max_session_records: 6,
        });
        let mk = || StreamingAnnotator::over(&pipeline, VelocityPolicy::default());
        // oversized single push: rejected, session not created
        let big: Vec<GpsRecord> = (0..5).map(fix).collect();
        assert!(table.push("a", &big, mk).is_err());
        assert_eq!(table.live(), 0);
        // cumulative bound: 4 then 3 would exceed 6
        assert!(table.push("a", &big[..4], mk).is_ok());
        assert!(table.push("a", &big[..3], mk).is_err());
        assert_eq!(table.live(), 1);
        // a flush drains it, and a fresh session is allowed again
        assert!(table.flush("a").is_some());
        assert!(table.flush("a").is_none());
        assert_eq!(table.live(), 0);
        assert!(table.push("a", &big[..3], mk).is_ok());
    }

    #[test]
    fn eviction_flushes_state_and_recreation_pins_the_current_generation() {
        use semitri_core::{GenerationId, LiveSeMiTri, Mutation};

        let live = LiveSeMiTri::new(small_city(), PipelineConfig::default, None);
        let table = SessionTable::new(SessionLimits {
            shards: 1,
            max_sessions: 1,
            ..SessionLimits::default()
        });
        let mk = || live.streaming(VelocityPolicy::default());
        let fixes: Vec<GpsRecord> = (0..6).map(fix).collect();

        // user a opens a session on generation 0, then b's arrival evicts
        // it: the in-flight episode state must be terminal-flushed, not
        // silently dropped
        table.push("a", &fixes, mk).unwrap();
        let r = table.push("b", &fixes, mk).unwrap();
        assert_eq!(r.evicted.len(), 1);
        assert_eq!(r.evicted[0].user, "a");
        assert_eq!(r.evicted[0].records, 6, "evicted episode state dropped");
        assert_eq!(r.evicted[0].cleaning.kept, 6);

        // a publish lands between the eviction and a's return
        live.submit(Mutation::AddPoi {
            point: Point::new(110.0, 105.0),
            category: semitri_data::PoiCategory::Feedings,
            name: "mid-churn poi".into(),
        })
        .unwrap();
        assert_eq!(live.publish().generation, GenerationId(1));

        // a's next push recreates the session; it must pin the current
        // generation, not resurrect the evicted session's stale pin —
        // its output must agree byte for byte with a fresh annotator
        // built after the publish and fed identically
        let r = table.push("a", &fixes, mk).unwrap();
        assert!(r.created, "evicted session resurrected instead of fresh");
        let flushed = table.flush("a").unwrap();

        let mut fresh = live.streaming(VelocityPolicy::default());
        assert_eq!(fresh.generation_id(), Some(GenerationId(1)));
        let mut fresh_events = Vec::new();
        for &f in &fixes {
            fresh_events.extend(fresh.push(f));
        }
        fresh_events.extend(fresh.flush());

        let mut got = crate::wire::encode_events(&r.events);
        got.push_str(&crate::wire::encode_events(&flushed.events));
        assert_eq!(got, crate::wire::encode_events(&fresh_events));
        assert_eq!(flushed.records, 6);
    }
}
