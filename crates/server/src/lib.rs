//! # semitri-server — the sharded annotation server
//!
//! ROADMAP item 1: "millions of users means a resident process". This
//! crate turns the batch/CLI-only SeMiTri pipeline into a long-running
//! HTTP/1.1 + JSON-lines service over `std::net::TcpListener` — hand
//! rolled because crates.io (and therefore tokio) is unreachable from
//! the build environment. The design follows the read-mostly shape of
//! transit backends like Catenary's birch server: an immutable snapshot
//! pipeline (frozen spatial indexes, `&`-shareable) behind a pool of
//! blocking worker threads, with the mutable state sharded or swapped:
//! per-user streaming sessions hash-partition behind per-shard locks,
//! and map updates go through a [`LiveSeMiTri`] generation swap — a
//! rebuild freezes generation `N+1` off to the side while every reader
//! keeps annotating on its pinned generation `N`.
//!
//! ## Endpoints
//!
//! | Endpoint | Body | Meaning |
//! |---|---|---|
//! | `POST /annotate` | JSON-lines feed | full-trajectory annotation, pinned to one generation |
//! | `POST /session/{user}/push` | JSON-lines fixes | incremental annotation in `{user}`'s streaming session |
//! | `POST /session/{user}/flush` | empty | close the session: final events + cleaning report |
//! | `POST /admin/update` | JSON-lines mutations | publish map edits as the next snapshot generation |
//! | `GET /metrics` | — | `semitri-obs` registry snapshot as JSON lines (includes `server.generation`) |
//! | `GET /healthz` | — | liveness probe (`ok gen=<generation>`) |
//!
//! ## Fault containment
//!
//! Every request body is parsed under hard limits (see [`http`]); a
//! panic while handling a request is caught at the request boundary,
//! answered with a 500 and counted in `server.responses_5xx` — a
//! poisoned trajectory must not take the worker (or any other user's
//! session) down with it. Backpressure is a bounded per-session queue:
//! pushes beyond [`SessionLimits::max_session_records`] get HTTP 429
//! until the session flushes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod sessions;
pub mod wire;

use http::{HttpError, NextRequest, Request};
use semitri_core::{LiveSeMiTri, PipelineConfig};
use semitri_data::City;
use semitri_episodes::VelocityPolicy;
use semitri_obs::{MetricsRegistry, ServerMetrics, StoreMetrics};
use semitri_store::SemanticTrajectoryStore;
use sessions::{SessionLimits, SessionTable};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads (each runs its own accept loop on a cloned
    /// listener handle; the kernel load-balances `accept`).
    pub workers: usize,
    /// Session sharding and backpressure bounds.
    pub sessions: SessionLimits,
    /// Hard cap on request bodies, bytes.
    pub max_body_bytes: usize,
    /// Socket read timeout — bounds how long a slow or dead peer can pin
    /// a worker between bytes.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            sessions: SessionLimits::default(),
            max_body_bytes: 16 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One response, before serialization.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn error(status: u16, msg: &str) -> Self {
        let mut body = String::from("{\"type\":\"error\",\"status\":");
        body.push_str(&status.to_string());
        body.push_str(",\"message\":");
        // reuse the wire escaper so error bodies are valid JSON too
        body.push_str(&wire_escape(msg));
        body.push_str("}\n");
        Self::json(status, body)
    }
}

fn wire_escape(s: &str) -> String {
    let mut out = String::new();
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The annotation server: a live (generation-swapped) pipeline plus
/// request handling state.
pub struct Server {
    live: LiveSeMiTri,
    policy: VelocityPolicy,
    registry: Arc<MetricsRegistry>,
    metrics: ServerMetrics,
    config: ServeConfig,
    store: Option<(Arc<SemanticTrajectoryStore>, StoreMetrics)>,
}

impl Server {
    /// Builds a server around a city and a pipeline-config factory (the
    /// config holds a boxed segmentation policy and is not `Clone`, so
    /// generation rebuilds need a factory, not a value). Every
    /// generation's pipeline gets a [`semitri_obs::MetricsObserver`]
    /// installed into the server's registry, so `/metrics` exposes the
    /// per-layer `stage.*` schema next to the `server.*` schema across
    /// generation swaps.
    pub fn new(
        city: City,
        make_config: impl Fn() -> PipelineConfig + Send + Sync + 'static,
        policy: VelocityPolicy,
        config: ServeConfig,
    ) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let observer = Arc::new(semitri_obs::MetricsObserver::new(registry.clone()));
        let live = LiveSeMiTri::new(city, make_config, Some(observer));
        let metrics = ServerMetrics::new(&registry);
        metrics.generation.set(live.current_id().0 as i64);
        Self {
            live,
            policy,
            registry,
            metrics,
            config,
            store: None,
        }
    }

    /// Attaches a write-through trajectory store: every successful
    /// `POST /annotate` is also persisted end to end (compressed fixes,
    /// episode ranges, SST with derived layer rows), and `/metrics`
    /// grows the `store.*` schema published from the store's counters.
    /// Store write latency is recorded in `store.query_secs`.
    pub fn with_store(mut self, store: Arc<SemanticTrajectoryStore>) -> Self {
        let metrics = StoreMetrics::new(&self.registry);
        store.publish_metrics(&metrics);
        self.store = Some((store, metrics));
        self
    }

    /// The attached write-through store, if any.
    pub fn store(&self) -> Option<&Arc<SemanticTrajectoryStore>> {
        self.store.as_ref().map(|(s, _)| s)
    }

    /// The live pipeline handle (for tests and embedding callers that
    /// want to publish updates without going through HTTP).
    pub fn live(&self) -> &LiveSeMiTri {
        &self.live
    }

    /// The metrics registry `/metrics` snapshots.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves `listener` until `shutdown` turns true, blocking the
    /// calling thread. Workers block in `accept`, so after setting the
    /// flag call [`wake_workers`] (or connect once per worker) to
    /// unblock them.
    pub fn run(&self, listener: TcpListener, shutdown: &AtomicBool) -> std::io::Result<()> {
        let sessions = SessionTable::new(self.config.sessions);
        let workers = self.config.workers.max(1);
        let result = crossbeam::scope(|scope| -> std::io::Result<()> {
            for _ in 0..workers {
                let listener = listener.try_clone()?;
                let sessions = &sessions;
                scope.spawn(move |_| {
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if shutdown.load(Ordering::Relaxed) {
                                    break;
                                }
                                self.metrics.connections.inc();
                                self.handle_connection(stream, sessions);
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
            Ok(())
        })
        .expect("server worker panicked outside the request boundary");
        result
    }

    /// Serves one connection: a keep-alive loop of request → response.
    fn handle_connection(&self, stream: TcpStream, sessions: &SessionTable<'static>) {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_write_timeout(Some(self.config.read_timeout));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        loop {
            let request = match http::read_request(&mut reader, self.config.max_body_bytes) {
                Ok(NextRequest::Closed) => return,
                Ok(NextRequest::Request(r)) => r,
                Err(HttpError::Disconnected) => return,
                Err(HttpError::BadRequest(msg)) => {
                    // un-parseable connection state: answer and close
                    self.metrics.requests.inc();
                    self.metrics.count_response(400);
                    let resp = Response::error(400, msg);
                    let _ = http::write_response(
                        &mut writer,
                        resp.status,
                        resp.content_type,
                        &resp.body,
                        false,
                    );
                    return;
                }
                Err(HttpError::PayloadTooLarge) => {
                    self.metrics.requests.inc();
                    self.metrics.count_response(413);
                    let resp = Response::error(413, "request body exceeds the configured cap");
                    let _ = http::write_response(
                        &mut writer,
                        resp.status,
                        resp.content_type,
                        &resp.body,
                        false,
                    );
                    return;
                }
            };
            self.metrics.requests.inc();
            let t0 = Instant::now();
            // the request boundary is the fault domain: a panic in the
            // pipeline answers 500 and closes this connection, the worker
            // and every other session live on
            let outcome =
                catch_unwind(AssertUnwindSafe(|| self.handle_request(&request, sessions)));
            let (response, keep_alive) = match outcome {
                Ok(r) => (r, request.keep_alive),
                Err(_) => (
                    Response::error(500, "internal error while annotating this request"),
                    false,
                ),
            };
            self.metrics.request_secs.record(t0.elapsed().as_secs_f64());
            self.metrics.count_response(response.status);
            if http::write_response(
                &mut writer,
                response.status,
                response.content_type,
                &response.body,
                keep_alive,
            )
            .is_err()
                || !keep_alive
            {
                return;
            }
        }
    }

    /// Routes one parsed request.
    fn handle_request(&self, req: &Request, sessions: &SessionTable<'static>) -> Response {
        let segments: Vec<&str> = req.path.trim_start_matches('/').split('/').collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Response {
                status: 200,
                content_type: "text/plain",
                body: format!("ok gen={}\n", self.live.current_id()).into_bytes(),
            },
            ("GET", ["metrics"]) => {
                // refresh the store.* gauges so the scrape sees current
                // compression and block-skip state
                if let Some((store, m)) = &self.store {
                    store.publish_metrics(m);
                }
                Response::json(200, self.registry.snapshot().to_json_lines())
            }
            ("POST", ["annotate"]) => self.annotate(&req.body),
            ("POST", ["admin", "update"]) => self.admin_update(&req.body),
            (method, ["session", user, action @ ("push" | "flush")]) if !user.is_empty() => {
                if method != "POST" {
                    return Response::error(405, "session endpoints are POST-only");
                }
                match *action {
                    "push" => self.session_push(user, &req.body, sessions),
                    _ => self.session_flush(user, sessions),
                }
            }
            (_, ["healthz" | "metrics" | "annotate"]) | (_, ["admin", "update"]) => {
                Response::error(405, "method not allowed on this resource")
            }
            _ => Response::error(404, "no such resource"),
        }
    }

    /// `POST /admin/update`: queues map mutations and publishes them as
    /// the next snapshot generation. The rebuild happens on this request
    /// thread; annotation on the other workers keeps reading the old
    /// generation until the final pointer swap.
    fn admin_update(&self, body: &[u8]) -> Response {
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::error(422, "body is not UTF-8");
        };
        let mutations = match wire::parse_mutations(text) {
            Ok(m) => m,
            Err(e) => return Response::error(422, &e.to_string()),
        };
        for m in mutations {
            if let Err(msg) = self.live.submit(m) {
                return Response::error(422, &msg);
            }
        }
        let outcome = self.live.publish();
        self.metrics.generation.set(outcome.generation.0 as i64);
        self.metrics.updates_applied.add(outcome.applied as u64);
        Response::json(
            200,
            format!(
                "{{\"type\":\"update\",\"generation\":{},\"applied\":{}}}\n",
                outcome.generation, outcome.applied
            ),
        )
    }

    /// `POST /annotate`: one-shot full-trajectory annotation.
    fn annotate(&self, body: &[u8]) -> Response {
        let t0 = Instant::now();
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::error(422, "body is not UTF-8");
        };
        let feed = match wire::parse_feed(text) {
            Ok(f) => f,
            Err(e) => return Response::error(422, &e.to_string()),
        };
        // pin once so annotation and the write-through store ingest see
        // the same generation's road network
        let pin = self.live.pin();
        let out = match pin.snapshot().try_annotate_feed(&feed) {
            Ok(o) => o,
            Err(e) => return Response::error(422, &e.to_string()),
        };
        if let Some((store, m)) = &self.store {
            let t_store = Instant::now();
            if let Err(e) = store.put_annotated(&out, &pin.snapshot().city().roads) {
                return Response::error(500, &format!("store write failed: {e}"));
            }
            m.query_secs.record(t_store.elapsed().as_secs_f64());
        }
        let body = wire::encode_output(&out);
        self.metrics
            .annotate_secs
            .record(t0.elapsed().as_secs_f64());
        Response::json(200, body)
    }

    /// `POST /session/{user}/push`.
    fn session_push(&self, user: &str, body: &[u8], sessions: &SessionTable<'static>) -> Response {
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::error(422, "body is not UTF-8");
        };
        let records = match wire::parse_records(text) {
            Ok(r) => r,
            Err(e) => return Response::error(422, &e.to_string()),
        };
        match sessions.push(user, &records, || self.live.streaming(self.policy)) {
            Ok(result) => {
                if result.created {
                    self.metrics.sessions.add(1);
                    self.metrics.sessions_opened.inc();
                }
                if !result.evicted.is_empty() {
                    self.metrics.sessions.add(-(result.evicted.len() as i64));
                    self.metrics
                        .sessions_evicted
                        .add(result.evicted.len() as u64);
                    self.metrics
                        .evicted_records
                        .add(result.evicted.iter().map(|e| e.records as u64).sum());
                }
                Response::json(200, wire::encode_events(&result.events))
            }
            Err(_rejected) => {
                self.metrics.backpressure_rejections.inc();
                Response::error(
                    429,
                    "session queue bound exceeded; flush the session or push less per request",
                )
            }
        }
    }

    /// `POST /session/{user}/flush`.
    fn session_flush(&self, user: &str, sessions: &SessionTable<'static>) -> Response {
        match sessions.flush(user) {
            Some(result) => {
                self.metrics.sessions.add(-1);
                self.metrics.sessions_flushed.inc();
                Response::json(
                    200,
                    wire::encode_flush(&result.events, &result.cleaning, result.records),
                )
            }
            None => Response::error(
                404,
                "no such session (never pushed, already flushed, or evicted)",
            ),
        }
    }
}

/// Unblocks up to `workers` threads parked in `accept` after a shutdown
/// flag flip, by opening (and immediately dropping) that many
/// connections. Connection errors are ignored — a worker that already
/// exited needs no wake.
pub fn wake_workers(addr: SocketAddr, workers: usize) {
    for _ in 0..workers {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    }
}
