//! `semitri-cli` — the Application Interface of the SeMiTri architecture.
//!
//! The paper exposes its Semantic Trajectory Store through a web interface
//! for "trajectory querying and visualization" \[31\]. This CLI is the
//! library equivalent: it builds an annotated store from a dataset preset
//! and answers queries against it.
//!
//! ```text
//! semitri-cli generate <taxis|milan|phones> <store.stlog> [seed] [days] [--threads N] [--metrics] [--faults SPEC] [--dynamic-index]
//! semitri-cli raster <taxis|milan|phones> [seed] [days] [--cell M] [--threads N] [--top K]
//! semitri-cli serve <taxis|milan|phones> [addr] [seed] [--workers N] [--store <store.stlog>]
//! semitri-cli annotate <taxis|milan|phones> [seed]       (feed JSON lines on stdin)
//! semitri-cli info <store.stlog>
//! semitri-cli objects <store.stlog>
//! semitri-cli show <store.stlog> <trajectory_id>
//! semitri-cli query-mode <store.stlog> <walk|bicycle|bus|metro|car>
//! semitri-cli query-activity <store.stlog> <services|feedings|item-sale|person-life|unknown>
//! semitri-cli stats <store.stlog>
//! semitri-cli olap <store.stlog> [top]
//! semitri-cli export-kml <store.stlog> <trajectory_id> <out.kml>
//! semitri-cli compact <store.stlog>
//! ```
//!
//! `serve` and `annotate` share one pipeline construction per preset, so
//! an HTTP `POST /annotate` response is byte-identical to `annotate` on
//! the same feed — the server integration suite asserts exactly that.

use semitri::prelude::*;
use semitri::server::{wire, ServeConfig, Server};
use semitri::store::export::{kml_document, sst_kml};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  semitri-cli generate <taxis|milan|phones> <store.stlog> [seed] [days] [--threads N] [--metrics] [--faults SPEC] [--dynamic-index] [--no-oracle]\n    \
         (SPEC: comma-separated faults, e.g. dropout=0.1,noise=25,teleport=3,dup=0.05,conflict=0.02,swap=0.05,stuck=0.03,nan=0.01,resample=5;\n     \
         --dynamic-index queries the pointer-based R*-trees instead of the frozen snapshots — same output, oracle/debug use;\n     \
         --no-oracle skips the precomputed per-cell candidate slabs and walks the trees per query — same output, saves the arena memory)\n  \
         semitri-cli raster <taxis|milan|phones> [seed] [days] [--cell M] [--threads N] [--top K]\n    \
         (annotates the preset fleet and burns it into per-mode / per-road-class / per-landuse density grids)\n  \
         semitri-cli serve <taxis|milan|phones> [addr] [seed] [--workers N] [--no-oracle] [--store <store.stlog>]\n  \
         semitri-cli annotate <taxis|milan|phones> [seed]   (feed JSON lines on stdin)\n  \
         semitri-cli info <store.stlog>\n  semitri-cli objects <store.stlog>\n  \
         semitri-cli show <store.stlog> <trajectory_id>\n  \
         semitri-cli query-mode <store.stlog> <mode>\n  \
         semitri-cli query-activity <store.stlog> <category>\n  \
         semitri-cli stats <store.stlog>\n  \
         semitri-cli olap <store.stlog> [top]   (warehouse aggregates over the compressed columns)\n  \
         semitri-cli export-kml <store.stlog> <trajectory_id> <out.kml>\n  \
         semitri-cli compact <store.stlog>"
    );
    ExitCode::from(2)
}

fn open(path: &str) -> Result<SemanticTrajectoryStore, ExitCode> {
    SemanticTrajectoryStore::open_durable(path).map_err(|e| {
        eprintln!("cannot open store {path}: {e}");
        ExitCode::FAILURE
    })
}

fn parse_mode(s: &str) -> Option<TransportMode> {
    TransportMode::ALL.into_iter().find(|m| m.label() == s)
}

fn parse_category(s: &str) -> Option<PoiCategory> {
    let norm = s.replace('-', " ");
    PoiCategory::ALL.into_iter().find(|c| c.label() == norm)
}

/// Prints the per-layer latency/count breakdown (paper Fig. 17) followed by
/// the raw metric snapshot as JSON lines.
fn print_metrics(summary: &BatchSummary) {
    let m = &summary.metrics;
    if m.counter("stage.preprocess.calls") > 0 {
        println!(
            "preprocessing: {} fixes in, {} kept, {} dropped, {} reordered, {} deduped",
            m.counter("stage.preprocess.records"),
            m.counter("stage.preprocess.kept"),
            m.counter("stage.preprocess.dropped"),
            m.counter("stage.preprocess.reordered"),
            m.counter("stage.preprocess.deduped"),
        );
    }
    println!("per-layer breakdown (latencies in ms):");
    println!(
        "  {:<10} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "layer", "calls", "records", "min", "mean", "p50", "p95", "p99", "max", "records/s"
    );
    for (stage, s) in summary.stages() {
        // per-layer throughput over the stage's own busy time (sum of
        // span latencies), the same normalization the hotpath bench uses
        let busy_secs = s.count as f64 * s.mean;
        let rate = if busy_secs > 0.0 {
            s.records as f64 / busy_secs
        } else {
            0.0
        };
        println!(
            "  {:<10} {:>7} {:>10} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>12.0}",
            stage.id(),
            s.count,
            s.records,
            s.min * 1e3,
            s.mean * 1e3,
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.p99 * 1e3,
            s.max * 1e3,
            rate,
        );
    }
    println!("metrics (json lines):");
    print!("{}", summary.metrics.to_json_lines());
}

/// Builds the city and streaming policy of a dataset preset, plus the
/// vehicle flag that parameterizes the pipeline configuration.
fn preset_city(preset: &str, seed: u64) -> Result<(City, bool, VelocityPolicy), ExitCode> {
    let (dataset, vehicle) = match preset {
        "taxis" => (lausanne_taxis(1, seed), true),
        "milan" => (milan_cars(20, 1, seed), true),
        "phones" => (smartphone_users(6, 1, seed), false),
        _ => {
            eprintln!("unknown preset {preset:?} (taxis|milan|phones)");
            return Err(ExitCode::from(2));
        }
    };
    let policy = if vehicle {
        VelocityPolicy::vehicles()
    } else {
        VelocityPolicy::default()
    };
    Ok((dataset.city, vehicle, policy))
}

/// The pipeline configuration of a preset. `serve` hands this to the
/// server as a *factory* (generation rebuilds construct a fresh config
/// per publish — the boxed segmentation policy is not `Clone`), and
/// `annotate` calls it once; both paths produce identical configs, so a
/// served `/annotate` response is byte-identical to the CLI output.
fn preset_config(vehicle: bool, oracle_mode: OracleMode) -> PipelineConfig {
    let mut config = if vehicle {
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig::default()
    };
    // the oracle is a pure query-plan change — `/annotate` responses stay
    // byte-identical to `semitri-cli annotate` either way
    config.oracle_mode = oracle_mode;
    config
}

/// `semitri-cli serve`: stand up the annotation server and block.
fn serve(
    preset: &str,
    addr: &str,
    seed: u64,
    workers: Option<usize>,
    oracle_mode: OracleMode,
    store_path: Option<&str>,
) -> Result<(), ExitCode> {
    let (city, vehicle, policy) = preset_city(preset, seed)?;
    let mut serve_config = ServeConfig::default();
    if let Some(n) = workers {
        serve_config.workers = n;
    }
    let mut server = Server::new(
        city,
        move || preset_config(vehicle, oracle_mode),
        policy,
        serve_config,
    );
    if let Some(path) = store_path {
        // write-through: every annotated feed is persisted columnar and
        // the store.* schema joins /metrics
        let store = open(path)?;
        server = server.with_store(std::sync::Arc::new(store));
        println!("write-through store: {path}");
    }
    let listener = std::net::TcpListener::bind(addr).map_err(|e| {
        eprintln!("cannot bind {addr}: {e}");
        ExitCode::FAILURE
    })?;
    let bound = listener.local_addr().map_err(|e| {
        eprintln!("cannot resolve bound address: {e}");
        ExitCode::FAILURE
    })?;
    // scripts (CI smoke, load tests) wait for this line before curling
    println!("semitri-server listening on http://{bound} (preset {preset}, seed {seed})");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let shutdown = AtomicBool::new(false);
    server.run(listener, &shutdown).map_err(|e| {
        eprintln!("server error: {e}");
        ExitCode::FAILURE
    })
}

/// `semitri-cli annotate`: the offline twin of `POST /annotate`. Reads a
/// JSON-lines feed from stdin and writes exactly the server's response
/// body to stdout — nothing else touches stdout, byte identity depends
/// on it.
fn annotate(preset: &str, seed: u64) -> Result<(), ExitCode> {
    let (city, vehicle, _) = preset_city(preset, seed)?;
    let pipeline = SeMiTri::new(city, preset_config(vehicle, OracleMode::default()));
    let mut body = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut body).map_err(|e| {
        eprintln!("cannot read stdin: {e}");
        ExitCode::FAILURE
    })?;
    let feed = wire::parse_feed(&body).map_err(|e| {
        eprintln!("bad feed: {e}");
        ExitCode::from(2)
    })?;
    let out = pipeline.try_annotate_feed(&feed).map_err(|e| {
        eprintln!("annotation failed: {e}");
        ExitCode::FAILURE
    })?;
    print!("{}", wire::encode_output(&out));
    Ok(())
}

/// Flags of the `generate` subcommand that tune how the fleet is
/// annotated rather than what is generated.
struct GenerateOptions<'a> {
    threads: Option<usize>,
    metrics: bool,
    faults: Option<&'a str>,
    index_mode: IndexMode,
    oracle_mode: OracleMode,
}

fn generate(
    preset: &str,
    path: &str,
    seed: u64,
    days: usize,
    opts: &GenerateOptions,
) -> Result<(), ExitCode> {
    let GenerateOptions {
        threads,
        metrics,
        faults,
        index_mode,
        oracle_mode,
    } = *opts;
    let (dataset, vehicle) = match preset {
        "taxis" => (lausanne_taxis(days, seed), true),
        "milan" => (milan_cars(20, days, seed), true),
        "phones" => (smartphone_users(6, days, seed), false),
        _ => {
            eprintln!("unknown preset {preset:?} (taxis|milan|phones)");
            return Err(ExitCode::from(2));
        }
    };
    println!(
        "generated '{}': {} trajectories, {} GPS records",
        dataset.name,
        dataset.tracks.len(),
        dataset.total_records()
    );
    let config = if vehicle {
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            index_mode,
            oracle_mode,
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig {
            index_mode,
            oracle_mode,
            ..PipelineConfig::default()
        }
    };
    let semitri = SeMiTri::new(&dataset.city, config);
    let store = open(path)?;

    // annotate the whole fleet over a shared worker pool
    let mut annotator = BatchAnnotator::new(&semitri);
    if let Some(n) = threads {
        annotator = annotator.with_threads(n);
    }
    let batch = match faults {
        Some(spec) => {
            // degrade each track with the seeded injector, then annotate
            // through the untrusted-feed path (preprocessing + per-slot
            // failure isolation)
            let injector = FaultInjector::from_spec(seed, spec).map_err(|e| {
                eprintln!("bad --faults spec: {e}");
                ExitCode::from(2)
            })?;
            let feeds: Vec<GpsFeed> = dataset
                .tracks
                .iter()
                .map(|t| {
                    GpsFeed::new(
                        t.object_id,
                        t.trajectory_id,
                        injector.apply_stream(t.trajectory_id, &t.records),
                    )
                })
                .collect();
            let degraded: usize = feeds.iter().map(|f| f.records.len()).sum();
            println!(
                "injected faults [{spec}]: {} fixes after degradation",
                degraded
            );
            annotator.annotate_feeds(&feeds)
        }
        None => {
            let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
            annotator.annotate_all(&raws)
        }
    };
    println!(
        "annotated with {} worker(s): {} records in {:.2}s ({:.0} records/s)",
        batch.summary.threads,
        batch.summary.records,
        batch.summary.wall_secs,
        batch.summary.records_per_sec
    );
    for err in batch.errors() {
        eprintln!("warning: {err}");
    }
    if metrics {
        print_metrics(&batch.summary);
    }

    for result in &batch.results {
        let Ok(out) = result else { continue };
        // end-to-end columnar ingest: metadata, compressed fixes,
        // episode ranges, and the SST with derived layer rows
        store.put_annotated(out, &dataset.city.roads).map_err(|e| {
            eprintln!("store write failed: {e}");
            ExitCode::FAILURE
        })?;
    }
    let (t, e, s) = store.counts();
    let m = store.metrics();
    println!("stored {t} trajectories, {e} episodes, {s} semantic trajectories → {path}");
    println!(
        "  fix columns: {} fixes in {} blocks, {:.2} bytes/fix ({} → {} bytes)",
        m.fix_count,
        m.fix_blocks,
        m.bytes_per_fix(),
        m.fix_raw_bytes,
        m.fix_compressed_bytes
    );
    Ok(())
}

/// `raster`: generate a preset fleet, annotate it on the shared worker
/// pool, and burn the annotated corpus into per-mode / per-road-class /
/// per-landuse-category density grids over the city bounds. Burning uses
/// one private tile accumulator per worker, merged at the end — the grid
/// is bit-identical for every worker count.
fn raster(
    preset: &str,
    seed: u64,
    days: usize,
    cell_m: f64,
    threads: Option<usize>,
    top: usize,
) -> Result<(), ExitCode> {
    let (dataset, vehicle) = match preset {
        "taxis" => (lausanne_taxis(days, seed), true),
        "milan" => (milan_cars(20, days, seed), true),
        "phones" => (smartphone_users(6, days, seed), false),
        _ => {
            eprintln!("unknown preset {preset:?} (taxis|milan|phones)");
            return Err(ExitCode::from(2));
        }
    };
    let config = if vehicle {
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig::default()
    };
    let semitri = SeMiTri::new(&dataset.city, config);
    let mut annotator = BatchAnnotator::new(&semitri);
    if let Some(n) = threads {
        annotator = annotator.with_threads(n);
    }
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let batch = annotator.annotate_all(&raws);
    println!(
        "annotated '{}' with {} worker(s): {} records in {:.2}s ({:.0} records/s)",
        dataset.name,
        batch.summary.threads,
        batch.summary.records,
        batch.summary.wall_secs,
        batch.summary.records_per_sec
    );
    for err in batch.errors() {
        eprintln!("warning: {err}");
    }
    let workers = threads.unwrap_or(batch.summary.threads).max(1);
    let outputs: Vec<PipelineOutput> = batch.results.into_iter().filter_map(Result::ok).collect();
    let grid_config = RasterConfig {
        bounds: dataset.city.bounds(),
        cell_m,
    };
    let t0 = std::time::Instant::now();
    let grid = burn_all(grid_config, &outputs, &dataset.city.roads, workers);
    let secs = t0.elapsed().as_secs_f64();
    let (nx, ny) = grid.dims();
    let burned = grid.layer_total(RasterLayer::Total);
    let rate = if secs > 0.0 {
        burned as f64 / secs
    } else {
        0.0
    };
    println!(
        "raster {nx}x{ny} cells of {cell_m} m: burned {burned} fixes ({} out of bounds) on {workers} worker(s) in {secs:.3}s ({rate:.0} fixes/s)",
        grid.dropped()
    );
    println!("  {:<32} {:>10} {:>8}", "layer", "fixes", "cells");
    let row = |name: String, layer: RasterLayer| {
        let total = grid.layer_total(layer);
        if total > 0 {
            println!(
                "  {:<32} {:>10} {:>8}",
                name,
                total,
                grid.nonzero_cells(layer)
            );
        }
    };
    row("total".to_string(), RasterLayer::Total);
    for m in TransportMode::ALL {
        row(format!("mode/{}", m.label()), RasterLayer::Mode(m));
    }
    for c in [
        RoadClass::Highway,
        RoadClass::Street,
        RoadClass::Path,
        RoadClass::Rail,
    ] {
        row(format!("class/{}", c.label()), RasterLayer::Class(c));
    }
    for c in LanduseCategory::ALL {
        row(format!("landuse/{}", c.label()), RasterLayer::Landuse(c));
    }
    if top > 0 {
        println!("top {top} cells (total layer):");
        for (ix, iy, n) in grid.top_cells(RasterLayer::Total, top) {
            println!("  ({ix:>4},{iy:>4}) {n}");
        }
    }
    Ok(())
}

fn run() -> Result<(), ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("generate") => {
            let (Some(preset), Some(path)) = (it.next(), it.next()) else {
                return Err(usage());
            };
            // remaining args: optional positional [seed] [days] plus
            // optional --threads N / --metrics flags anywhere among them
            let mut threads = None;
            let mut metrics = false;
            let mut faults = None;
            let mut index_mode = IndexMode::Frozen;
            let mut oracle_mode = OracleMode::default();
            let mut positional = Vec::new();
            let mut rest = it;
            while let Some(arg) = rest.next() {
                if arg == "--metrics" {
                    metrics = true;
                } else if arg == "--dynamic-index" {
                    index_mode = IndexMode::Dynamic;
                } else if arg == "--no-oracle" {
                    oracle_mode = OracleMode::Disabled;
                } else if arg == "--faults" {
                    let Some(spec) = rest.next() else {
                        eprintln!("--faults needs a spec (e.g. dropout=0.1,stuck=0.03)");
                        return Err(ExitCode::from(2));
                    };
                    faults = Some(spec);
                } else if arg == "--threads" {
                    let Some(n) = rest.next().and_then(|s| s.parse::<usize>().ok()) else {
                        eprintln!("--threads needs a positive integer");
                        return Err(ExitCode::from(2));
                    };
                    if n == 0 {
                        eprintln!("--threads needs a positive integer");
                        return Err(ExitCode::from(2));
                    }
                    threads = Some(n);
                } else {
                    positional.push(arg);
                }
            }
            let seed = positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let days = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            generate(
                preset,
                path,
                seed,
                days,
                &GenerateOptions {
                    threads,
                    metrics,
                    faults,
                    index_mode,
                    oracle_mode,
                },
            )
        }
        Some("raster") => {
            let Some(preset) = it.next() else {
                return Err(usage());
            };
            let mut threads = None;
            let mut cell_m = 50.0;
            let mut top = 5usize;
            let mut positional = Vec::new();
            let mut rest = it;
            while let Some(arg) = rest.next() {
                if arg == "--threads" {
                    let Some(n) = rest.next().and_then(|s| s.parse::<usize>().ok()) else {
                        eprintln!("--threads needs a positive integer");
                        return Err(ExitCode::from(2));
                    };
                    if n == 0 {
                        eprintln!("--threads needs a positive integer");
                        return Err(ExitCode::from(2));
                    }
                    threads = Some(n);
                } else if arg == "--cell" {
                    let Some(v) = rest.next().and_then(|s| s.parse::<f64>().ok()) else {
                        eprintln!("--cell needs a size in meters");
                        return Err(ExitCode::from(2));
                    };
                    if !(v.is_finite() && v > 0.0) {
                        eprintln!("--cell needs a positive size in meters");
                        return Err(ExitCode::from(2));
                    }
                    cell_m = v;
                } else if arg == "--top" {
                    let Some(k) = rest.next().and_then(|s| s.parse::<usize>().ok()) else {
                        eprintln!("--top needs a cell count");
                        return Err(ExitCode::from(2));
                    };
                    top = k;
                } else {
                    positional.push(arg);
                }
            }
            let seed = positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let days = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            raster(preset, seed, days, cell_m, threads, top)
        }
        Some("serve") => {
            let Some(preset) = it.next() else {
                return Err(usage());
            };
            let mut workers = None;
            let mut oracle_mode = OracleMode::default();
            let mut store_path = None;
            let mut positional = Vec::new();
            let mut rest = it;
            while let Some(arg) = rest.next() {
                if arg == "--workers" {
                    let Some(n) = rest.next().and_then(|s| s.parse::<usize>().ok()) else {
                        eprintln!("--workers needs a positive integer");
                        return Err(ExitCode::from(2));
                    };
                    if n == 0 {
                        eprintln!("--workers needs a positive integer");
                        return Err(ExitCode::from(2));
                    }
                    workers = Some(n);
                } else if arg == "--no-oracle" {
                    oracle_mode = OracleMode::Disabled;
                } else if arg == "--store" {
                    let Some(path) = rest.next() else {
                        eprintln!("--store needs a log path");
                        return Err(ExitCode::from(2));
                    };
                    store_path = Some(path);
                } else {
                    positional.push(arg);
                }
            }
            let addr = positional.first().copied().unwrap_or("127.0.0.1:8355");
            let seed = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
            serve(preset, addr, seed, workers, oracle_mode, store_path)
        }
        Some("annotate") => {
            let Some(preset) = it.next() else {
                return Err(usage());
            };
            let seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42);
            annotate(preset, seed)
        }
        Some("info") => {
            let Some(path) = it.next() else {
                return Err(usage());
            };
            let store = open(path)?;
            let (t, e, s) = store.counts();
            println!("store {path}");
            println!("  trajectories: {t}");
            println!("  episodes:     {e}");
            println!("  semantic trajectories: {s}");
            if let Some(size) = store.log_size() {
                println!("  log size: {size} bytes");
            }
            Ok(())
        }
        Some("objects") => {
            let Some(path) = it.next() else {
                return Err(usage());
            };
            let store = open(path)?;
            let mut seen = std::collections::BTreeMap::new();
            for meta in store.trajectory_metas() {
                *seen.entry(meta.object_id).or_insert(0usize) += 1;
            }
            for (object, count) in seen {
                println!("object {object}: {count} trajectories");
            }
            Ok(())
        }
        Some("show") => {
            let (Some(path), Some(id)) = (it.next(), it.next()) else {
                return Err(usage());
            };
            let id: u64 = id.parse().map_err(|_| usage())?;
            let store = open(path)?;
            match store.get_sst(id) {
                Some(sst) => {
                    println!("{}", sst.render());
                    Ok(())
                }
                None => {
                    eprintln!("no semantic trajectory {id}");
                    Err(ExitCode::FAILURE)
                }
            }
        }
        Some("query-mode") => {
            let (Some(path), Some(mode)) = (it.next(), it.next()) else {
                return Err(usage());
            };
            let Some(mode) = parse_mode(mode) else {
                eprintln!("unknown mode");
                return Err(ExitCode::from(2));
            };
            let store = open(path)?;
            for id in store.ssts_with_mode(mode) {
                println!("{id}");
            }
            Ok(())
        }
        Some("query-activity") => {
            let (Some(path), Some(cat)) = (it.next(), it.next()) else {
                return Err(usage());
            };
            let Some(cat) = parse_category(cat) else {
                eprintln!("unknown category");
                return Err(ExitCode::from(2));
            };
            let store = open(path)?;
            for id in store.ssts_with_activity(cat) {
                println!("{id}");
            }
            Ok(())
        }
        Some("stats") => {
            let Some(path) = it.next() else {
                return Err(usage());
            };
            let store = open(path)?;
            let stats = store.annotation_statistics();
            println!("mode tuples:");
            for m in TransportMode::ALL {
                println!("  {:<8} {}", m.label(), stats.mode(m));
            }
            println!("activity tuples:");
            for c in PoiCategory::ALL {
                println!("  {:<12} {}", c.label(), stats.activity(c));
            }
            Ok(())
        }
        Some("olap") => {
            let Some(path) = it.next() else {
                return Err(usage());
            };
            let top = it.next().and_then(|s| s.parse().ok()).unwrap_or(5);
            let store = open(path)?;
            // warehouse aggregates, scanned over the compressed columns
            let stops = store.stops_per_landuse_hour();
            println!("stops per landuse category (hourly total):");
            for c in LanduseCategory::ALL {
                let total: u64 = (0..24).map(|h| stops.get(c, h)).sum();
                if total > 0 {
                    let peak = (0..24).max_by_key(|&h| stops.get(c, h)).unwrap_or(0);
                    println!("  {:<16} {total:>6} (peak hour {peak:02})", c.label());
                }
            }
            let share = store.mode_share_by_road_class();
            println!("mode share by road class (record-weighted):");
            for class in RoadClass::ALL {
                let row: u64 = TransportMode::ALL
                    .iter()
                    .map(|&m| share.get(class, m))
                    .sum();
                if row == 0 {
                    continue;
                }
                print!("  {:<8}", class.label());
                for m in TransportMode::ALL {
                    let pct = 100.0 * share.get(class, m) as f64 / row as f64;
                    print!(" {}={pct:.0}%", m.label());
                }
                println!();
            }
            println!("top {top} POIs by stop visits:");
            for v in store.top_poi_visits(top) {
                println!(
                    "  {:<24} {} visits (place {})",
                    v.label, v.visits, v.place_id
                );
            }
            let m = store.metrics();
            println!(
                "scan stats: {} fixes at {:.2} bytes/fix, {} live tuples, block-skip rate {:.0}%",
                m.fix_count,
                m.bytes_per_fix(),
                m.live_tuples,
                100.0 * m.block_skip_rate()
            );
            Ok(())
        }
        Some("export-kml") => {
            let (Some(path), Some(id), Some(out)) = (it.next(), it.next(), it.next()) else {
                return Err(usage());
            };
            let id: u64 = id.parse().map_err(|_| usage())?;
            let store = open(path)?;
            let Some(sst) = store.get_sst(id) else {
                eprintln!("no semantic trajectory {id}");
                return Err(ExitCode::FAILURE);
            };
            let doc = kml_document(&format!("semitri trajectory {id}"), &[sst_kml(&sst)]);
            std::fs::write(out, doc).map_err(|e| {
                eprintln!("cannot write {out}: {e}");
                ExitCode::FAILURE
            })?;
            println!("wrote {out}");
            Ok(())
        }
        Some("compact") => {
            let Some(path) = it.next() else {
                return Err(usage());
            };
            let store = open(path)?;
            let before = store.log_size().unwrap_or(0);
            store.compact().map_err(|e| {
                eprintln!("compaction failed: {e}");
                ExitCode::FAILURE
            })?;
            let after = store.log_size().unwrap_or(0);
            println!("compacted: {before} → {after} bytes");
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}
