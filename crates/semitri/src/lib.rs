//! # SeMiTri — semantic annotation of heterogeneous trajectories
//!
//! A from-scratch Rust implementation of *SeMiTri: A Framework for
//! Semantic Annotation of Heterogeneous Trajectories* (Yan, Chakraborty,
//! Parent, Spaccapietra, Aberer — EDBT 2011).
//!
//! This facade crate re-exports the whole workspace under stable module
//! names. Most applications only need [`prelude`]:
//!
//! ```
//! use semitri::prelude::*;
//!
//! // generate a city and one commuter day
//! let city = City::generate(CityConfig::default());
//! let mut sim = TripSimulator::new(
//!     &city.roads, SimConfig::default(), 7,
//!     Point::new(2_000.0, 2_000.0), Timestamp(8.0 * 3_600.0),
//! );
//! sim.dwell(600.0, true, None);
//! sim.travel_to(Point::new(7_000.0, 6_500.0), TransportMode::Metro);
//! sim.dwell(1_200.0, true, None);
//! let track = sim.finish(1, 1);
//!
//! // annotate it end to end
//! let semitri = SeMiTri::new(&city, PipelineConfig::default());
//! let out = semitri.annotate(&track.to_raw());
//! assert!(!out.sst.is_empty());
//! println!("{}", out.sst.render());
//! ```
//!
//! The sub-crates, in dependency order:
//!
//! * [`geo`] — geometry kernel (points, rects, segments, polygons,
//!   projections, time);
//! * [`index`] — R\*-tree and grid spatial indexes;
//! * [`data`] — synthetic geographic sources, GPS simulator and dataset
//!   presets mirroring the paper's Tables 1–2;
//! * [`episodes`] — cleaning, trajectory identification, stop/move
//!   segmentation;
//! * [`core`] — the three annotation layers (regions / lines / points)
//!   and the pipeline;
//! * [`obs`] — dependency-free observability substrate: metrics registry,
//!   latency histograms and the [`PipelineObserver`](obs::PipelineObserver)
//!   stage-tracing hooks shared by every annotation path;
//! * [`analytics`] — the Semantic Trajectory Analytics Layer;
//! * [`store`] — the embedded Semantic Trajectory Store and KML export;
//! * [`server`] — the sharded HTTP/1.1 + JSON-lines annotation server
//!   (`semitri-cli serve`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use semitri_analytics as analytics;
pub use semitri_core as core;
pub use semitri_data as data;
pub use semitri_episodes as episodes;
pub use semitri_geo as geo;
pub use semitri_index as index;
pub use semitri_obs as obs;
pub use semitri_server as server;
pub use semitri_store as store;

/// One-stop imports for typical use of the framework.
pub mod prelude {
    pub use semitri_analytics::{
        burn_all, dbscan_stops, effective_workers, mine_sequences, radius_of_gyration, symbols_of,
        trajectory_category, CategoryShares, CompressionStats, DbscanParams, LanduseDistribution,
        LatencySummary, LengthDistribution, MobilitySummary, ModeShares, RasterConfig, RasterGrid,
        RasterLayer, SequencePattern, StopCluster, SymbolKind, UserEpisodeCounts,
    };
    pub use semitri_core::{
        Annotation, AnnotationValue, BatchAnnotator, BatchOutput, BatchSummary, GlobalMapMatcher,
        LatencyProfile, LiveSeMiTri, MatchParams, MatchScratch, ModeInferencer, Mutation,
        PipelineConfig, PipelineError, PipelineErrorKind, PipelineOutput, PlaceKind, PlaceRef,
        PointAnnotator, Preprocessor, PublishOutcome, RegionAnnotator, SeMiTri, SemanticTuple,
        SemitriError, StageSummary, StructuredSemanticTrajectory,
    };
    pub use semitri_index::{
        CellOracle, FrozenNearestScratch, FrozenRStarTree, FrozenRangeScratch, Generation,
        GenerationHandle, GenerationId, GridIndex, IndexMode, NearestScratch, OracleMode,
        RStarParams, RStarTree, RangeScratch, SnapshotSet, DEFAULT_ORACLE_MARGIN_M,
    };
    pub use semitri_obs::{
        CleaningReport, Counter, Gauge, Histogram, HistogramSnapshot, MetricsObserver,
        MetricsRegistry, MetricsSnapshot, NullObserver, PipelineObserver, Stage,
    };

    pub use semitri_data::presets::{
        lausanne_taxis, milan_cars, milan_cars_with_pois, seattle_drive, smartphone_users, Dataset,
    };
    pub use semitri_data::sim::{SimConfig, SimulatedTrack, TripSimulator, TruthPoint};
    pub use semitri_data::{
        City, CityConfig, Fault, FaultInjector, FeedError, GpsFeed, GpsRecord, LanduseCategory,
        LanduseGrid, LanduseGroup, NamedRegion, Poi, PoiCategory, PoiSet, RawTrajectory,
        RegionKind, RoadClass, RoadNetwork, RoadSegment, TransportMode,
    };
    pub use semitri_episodes::{
        DensityPolicy, Episode, EpisodeKind, EpisodeStats, SegmentationPolicy,
        TrajectoryIdentifier, VelocityPolicy,
    };
    pub use semitri_geo::{
        GeoPoint, LocalProjection, Point, Polygon, Polyline, Rect, Segment, TimeSpan, Timestamp,
    };
    pub use semitri_store::{SemanticTrajectoryStore, StoredEpisode, TrajectoryMeta};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.x, 1.0);
        let _ = TransportMode::Metro.label();
        let _ = PoiCategory::ALL.len();
    }
}
