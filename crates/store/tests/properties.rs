//! Property-based tests: the store's binary codec and durable replay must
//! round-trip arbitrary structured semantic trajectories.

use proptest::prelude::*;
use semitri_core::model::{
    Annotation, AnnotationValue, PlaceKind, PlaceRef, SemanticTuple, StructuredSemanticTrajectory,
};
use semitri_data::{PoiCategory, TransportMode};
use semitri_geo::{TimeSpan, Timestamp};
use semitri_store::{SemanticTrajectoryStore, TrajectoryMeta};

fn annotation_strategy() -> impl Strategy<Value = Annotation> {
    let value = prop_oneof![
        (0usize..5).prop_map(|i| AnnotationValue::Mode(TransportMode::ALL[i])),
        (0usize..5).prop_map(|i| AnnotationValue::Activity(PoiCategory::ALL[i])),
        "[a-zA-Z0-9 àéü]{0,30}".prop_map(AnnotationValue::Text),
        (-1e9..1e9f64).prop_map(AnnotationValue::Number),
    ];
    ("[a-z_]{1,12}", value).prop_map(|(k, v)| Annotation::new(k, v))
}

fn place_strategy() -> impl Strategy<Value = Option<PlaceRef>> {
    proptest::option::of(
        (
            prop_oneof![
                Just(PlaceKind::Region),
                Just(PlaceKind::Line),
                Just(PlaceKind::Point)
            ],
            0u64..1_000_000,
            "[\\PC]{0,40}", // printable unicode labels
        )
            .prop_map(|(kind, id, label)| PlaceRef::new(kind, id, label)),
    )
}

fn tuple_strategy() -> impl Strategy<Value = SemanticTuple> {
    (
        place_strategy(),
        0.0..1e6f64,
        0.0..1e4f64,
        proptest::collection::vec(annotation_strategy(), 0..4),
    )
        .prop_map(|(place, start, dur, annotations)| SemanticTuple {
            place,
            span: TimeSpan::new(Timestamp(start), Timestamp(start + dur)),
            annotations,
        })
}

fn sst_strategy() -> impl Strategy<Value = StructuredSemanticTrajectory> {
    (
        0u64..1_000,
        0u64..1_000,
        proptest::collection::vec(tuple_strategy(), 0..10),
    )
        .prop_map(
            |(object_id, trajectory_id, tuples)| StructuredSemanticTrajectory {
                object_id,
                trajectory_id,
                tuples,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn durable_store_roundtrips_arbitrary_ssts(ssts in proptest::collection::vec(sst_strategy(), 1..6)) {
        let dir = std::env::temp_dir().join(format!("semitri-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // unique file per case to avoid cross-case contamination
        let path = dir.join(format!(
            "case-{}-{}.stlog",
            ssts.len(),
            ssts.first().map(|s| s.trajectory_id).unwrap_or(0)
        ));
        let _ = std::fs::remove_file(&path);

        // deduplicate trajectory ids (the store keys SSTs by id)
        let mut by_id = std::collections::HashMap::new();
        {
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            for sst in &ssts {
                store
                    .put_trajectory(TrajectoryMeta {
                        trajectory_id: sst.trajectory_id,
                        object_id: sst.object_id,
                        record_count: sst.tuples.len() as u64,
                    })
                    .unwrap();
                store.put_sst(sst).unwrap();
                by_id.insert(sst.trajectory_id, sst.clone());
            }
        }
        let reopened = SemanticTrajectoryStore::open_durable(&path).unwrap();
        for (id, expected) in &by_id {
            let got = reopened.get_sst(*id).expect("sst replayed");
            prop_assert_eq!(&got, expected);
        }
        let (metas, _, n_ssts) = reopened.counts();
        prop_assert_eq!(metas, by_id.len());
        prop_assert_eq!(n_ssts, by_id.len());
        std::fs::remove_file(&path).unwrap();
    }
}
