//! Property tests for the columnar engine: fix columns must round-trip
//! (timestamps bit-exact, positions to within half a quantum), the
//! compressed semantic matrix must agree with the retained row-walk
//! oracle on every warehouse aggregate, and v1 logs must keep replaying
//! (and migrate to v2 through compaction) under the current codec.

use proptest::prelude::*;
use semitri_core::model::{
    Annotation, AnnotationValue, PlaceKind, PlaceRef, SemanticTuple, StructuredSemanticTrajectory,
};
use semitri_data::{GpsRecord, LanduseCategory, RoadClass, TransportMode};
use semitri_episodes::EpisodeKind;
use semitri_geo::{Point, TimeSpan, Timestamp};
use semitri_store::fixcol::{FixBlock, POSITION_QUANTUM};
use semitri_store::{RowStore, SemanticTrajectoryStore, TrajectoryMeta, TupleLayers};

/// Half a position quantum plus float slack: the fix-column accuracy bound.
const POS_TOL: f64 = POSITION_QUANTUM / 2.0 + 1e-9;

fn unique_path(stem: &str, salt: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("semitri-columnar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{stem}-{salt}.stlog"));
    let _ = std::fs::remove_file(&path);
    path
}

// ---------------------------------------------------------------------
// fix-column round-trips
// ---------------------------------------------------------------------

/// Smooth trajectories: regular sampling with jitter, random-walk
/// positions — the shape the delta codecs are built for.
fn smooth_fixes() -> impl Strategy<Value = Vec<GpsRecord>> {
    (
        0.0..4e9f64,  // start epoch
        0.5..30.0f64, // sampling period
        proptest::collection::vec((-0.01..0.01f64, -25.0..25.0f64, -25.0..25.0f64), 0..600),
    )
        .prop_map(|(t0, period, steps)| {
            let (mut t, mut x, mut y) = (t0, 1000.0, 2000.0);
            steps
                .into_iter()
                .map(|(jitter, dx, dy)| {
                    t += period + jitter;
                    x += dx;
                    y += dy;
                    GpsRecord {
                        point: Point::new(x, y),
                        t: Timestamp(t),
                    }
                })
                .collect()
        })
}

/// Hostile trajectories: arbitrary finite coordinates and out-of-order
/// timestamps, forcing the raw-fallback paths.
fn hostile_fixes() -> impl Strategy<Value = Vec<GpsRecord>> {
    proptest::collection::vec((-1e7..1e7f64, -1e7..1e7f64, -1e9..4e9f64), 0..520).prop_map(|rows| {
        rows.into_iter()
            .map(|(x, y, t)| GpsRecord {
                point: Point::new(x, y),
                t: Timestamp(t),
            })
            .collect()
    })
}

fn assert_fixes_close(got: &[GpsRecord], want: &[GpsRecord]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        // timestamps are bit-exact by contract, positions within tolerance
        assert_eq!(g.t.0.to_bits(), w.t.0.to_bits(), "timestamp drifted");
        assert!((g.point.x - w.point.x).abs() <= POS_TOL, "x drifted");
        assert!((g.point.y - w.point.y).abs() <= POS_TOL, "y drifted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fix_blocks_roundtrip_smooth(fixes in smooth_fixes()) {
        // blocks hold at most BLOCK_LEN fixes; chunk like put_fixes does
        for chunk in fixes.chunks(semitri_store::fixcol::BLOCK_LEN) {
            let block = FixBlock::encode(chunk);
            let mut out = Vec::new();
            block.decode(&mut out).unwrap();
            assert_fixes_close(&out, chunk);
            // the wire form is what replay sees: it must decode identically
            let revived = FixBlock::from_bytes(block.bytes.clone()).unwrap();
            let mut out2 = Vec::new();
            revived.decode(&mut out2).unwrap();
            assert_fixes_close(&out2, chunk);
        }
    }

    #[test]
    fn fix_blocks_roundtrip_hostile(fixes in hostile_fixes()) {
        for chunk in fixes.chunks(semitri_store::fixcol::BLOCK_LEN) {
            let block = FixBlock::encode(chunk);
            let mut out = Vec::new();
            block.decode(&mut out).unwrap();
            assert_fixes_close(&out, chunk);
        }
    }

    #[test]
    fn durable_fix_columns_roundtrip(fixes in smooth_fixes(), salt in 0u64..1_000_000) {
        let path = unique_path("fixes", salt);
        {
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: 1,
                    object_id: 1,
                    record_count: fixes.len() as u64,
                })
                .unwrap();
            store.put_fixes(1, &fixes).unwrap();
            assert_fixes_close(&store.get_fixes(1).unwrap(), &fixes);
        }
        let reopened = SemanticTrajectoryStore::open_durable(&path).unwrap();
        assert_fixes_close(&reopened.get_fixes(1).unwrap(), &fixes);
        std::fs::remove_file(&path).unwrap();
    }
}

// ---------------------------------------------------------------------
// compressed aggregates vs the row-walk oracle
// ---------------------------------------------------------------------

fn layered_tuple() -> impl Strategy<Value = (SemanticTuple, TupleLayers)> {
    let labels = (
        prop_oneof![Just(false), Just(true)],   // stop or move
        0usize..LanduseCategory::ALL.len() + 1, // len() = "no landuse"
        0usize..RoadClass::ALL.len() + 1,       // len() = "no class"
        0usize..TransportMode::ALL.len(),
        prop_oneof![Just(false), Just(true)], // carry a mode annotation?
    );
    let shape = (
        proptest::option::of((0u64..40, 0usize..6)), // point POI (id, label pool)
        0.0..4e5f64,
        0.0..9e3f64,
        0u32..2_000,
    );
    (labels, shape).prop_map(
        |((is_stop, landuse, class, mode, has_mode), (poi, start, dur, records))| {
            let kind = if is_stop {
                EpisodeKind::Stop
            } else {
                EpisodeKind::Move
            };
            let mut annotations = Vec::new();
            if has_mode {
                annotations.push(Annotation::new(
                    "mode",
                    AnnotationValue::Mode(TransportMode::ALL[mode]),
                ));
            }
            let place =
                poi.map(|(id, label)| PlaceRef::new(PlaceKind::Point, id, format!("poi-{label}")));
            let tuple = SemanticTuple {
                place,
                span: TimeSpan::new(Timestamp(start), Timestamp(start + dur)),
                annotations,
            };
            let layers = TupleLayers {
                kind,
                road_class: RoadClass::ALL.get(class).copied(),
                landuse: LanduseCategory::ALL.get(landuse).copied(),
                records,
            };
            (tuple, layers)
        },
    )
}

fn layered_sst() -> impl Strategy<Value = (StructuredSemanticTrajectory, Vec<TupleLayers>)> {
    (
        0u64..64,
        0u64..64,
        proptest::collection::vec(layered_tuple(), 0..12),
    )
        .prop_map(|(trajectory_id, object_id, rows)| {
            let (tuples, layers): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
            (
                StructuredSemanticTrajectory {
                    object_id,
                    trajectory_id,
                    tuples,
                },
                layers,
            )
        })
}

/// Tie-stable ordering so matrix and oracle rankings compare as sets.
fn sorted_visits(mut v: Vec<semitri_store::PoiVisit>) -> Vec<semitri_store::PoiVisit> {
    v.sort_by(|a, b| {
        b.visits
            .cmp(&a.visits)
            .then(a.place_id.cmp(&b.place_id))
            .then(a.label.cmp(&b.label))
    });
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compressed_aggregates_match_row_walk(
        ssts in proptest::collection::vec(layered_sst(), 1..8)
    ) {
        let store = SemanticTrajectoryStore::in_memory();
        let mut oracle = RowStore::new();
        for (sst, layers) in &ssts {
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: sst.trajectory_id,
                    object_id: sst.object_id,
                    record_count: sst.tuples.len() as u64,
                })
                .unwrap();
            store.put_sst_with_layers(sst, layers).unwrap();
            oracle.insert(sst.clone(), layers.clone());
        }

        let stops = store.stops_per_landuse_hour();
        let stops_row = oracle.stops_per_landuse_hour();
        for cat in LanduseCategory::ALL {
            for hour in 0..24 {
                prop_assert_eq!(stops.get(cat, hour), stops_row.get(cat, hour));
            }
        }

        let share = store.mode_share_by_road_class();
        let share_row = oracle.mode_share_by_road_class();
        for class in RoadClass::ALL {
            for mode in TransportMode::ALL {
                prop_assert_eq!(share.get(class, mode), share_row.get(class, mode));
            }
        }

        // compare full rankings under a total order: rank_poi_visits only
        // tie-breaks on id, so equal (visits, id) pairs with different
        // labels may legally swap
        let ranked = sorted_visits(store.top_poi_visits(usize::MAX));
        let ranked_row = sorted_visits(oracle.top_poi_visits(usize::MAX));
        prop_assert_eq!(ranked, ranked_row);
    }

    #[test]
    fn matrix_reconstructs_ssts_and_labels_exactly(
        ssts in proptest::collection::vec(layered_sst(), 1..6),
        salt in 0u64..1_000_000
    ) {
        let path = unique_path("matrix", salt);
        let mut by_id = std::collections::HashMap::new();
        {
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            for (sst, layers) in &ssts {
                store
                    .put_trajectory(TrajectoryMeta {
                        trajectory_id: sst.trajectory_id,
                        object_id: sst.object_id,
                        record_count: sst.tuples.len() as u64,
                    })
                    .unwrap();
                store.put_sst_with_layers(sst, layers).unwrap();
                by_id.insert(sst.trajectory_id, (sst.clone(), layers.clone()));
            }
        }
        let reopened = SemanticTrajectoryStore::open_durable(&path).unwrap();
        for (id, (sst, _)) in &by_id {
            prop_assert_eq!(&reopened.get_sst(*id).expect("sst replayed"), sst);
        }
        // replay must restore the layer labels, not just the tuples:
        // aggregates over the reopened store match the oracle
        let mut oracle = RowStore::new();
        for (sst, layers) in by_id.values() {
            oracle.insert(sst.clone(), layers.clone());
        }
        let stops = reopened.stops_per_landuse_hour();
        let stops_row = oracle.stops_per_landuse_hour();
        prop_assert_eq!(stops.total(), stops_row.total());
        let share = reopened.mode_share_by_road_class();
        let share_row = oracle.mode_share_by_road_class();
        prop_assert_eq!(share.total(), share_row.total());
        std::fs::remove_file(&path).unwrap();
    }
}

// ---------------------------------------------------------------------
// v1 log migration
// ---------------------------------------------------------------------

/// Writes a version-1 log byte-for-byte as the pre-columnar store did:
/// header, REC_META (1), per-episode REC_EPISODE (2) rows without record
/// ranges, and a REC_SST (3) body.
fn write_v1_log(path: &std::path::Path) {
    use semitri_store::codec::Encoder;
    let file = std::fs::File::create(path).unwrap();
    let mut enc = Encoder::new(std::io::BufWriter::new(file));
    enc.u32(0x5357_5254).unwrap(); // MAGIC
    enc.u8(1).unwrap(); // version 1

    // REC_META: trajectory 7, object 3, 2 records
    enc.u8(1).unwrap();
    enc.u64(7).unwrap();
    enc.u64(3).unwrap();
    enc.u64(2).unwrap();

    // REC_EPISODE: stop at [100, 200] in a unit box
    enc.u8(2).unwrap();
    enc.u64(7).unwrap();
    enc.u32(0).unwrap();
    enc.u8(0).unwrap(); // Stop
    enc.f64(100.0).unwrap();
    enc.f64(200.0).unwrap();
    for v in [10.0, 20.0, 11.0, 21.0] {
        enc.f64(v).unwrap();
    }

    // REC_EPISODE: move at [200, 400]
    enc.u8(2).unwrap();
    enc.u64(7).unwrap();
    enc.u32(1).unwrap();
    enc.u8(1).unwrap(); // Move
    enc.f64(200.0).unwrap();
    enc.f64(400.0).unwrap();
    for v in [10.0, 20.0, 90.0, 80.0] {
        enc.f64(v).unwrap();
    }

    // REC_SST: stop tuple on a landuse region, move tuple with a mode
    enc.u8(3).unwrap();
    enc.u64(7).unwrap(); // trajectory_id
    enc.u64(3).unwrap(); // object_id
    enc.seq_len(2).unwrap();
    // tuple 0: region place labeled with a real landuse category
    enc.u8(1).unwrap(); // Some(place)
    enc.u8(0).unwrap(); // Region
    enc.u64(501).unwrap();
    enc.string(LanduseCategory::ALL[0].label()).unwrap();
    enc.f64(100.0).unwrap();
    enc.f64(200.0).unwrap();
    enc.seq_len(0).unwrap();
    // tuple 1: no place, one Mode annotation
    enc.u8(0).unwrap();
    enc.f64(200.0).unwrap();
    enc.f64(400.0).unwrap();
    enc.seq_len(1).unwrap();
    enc.string("mode").unwrap();
    enc.u8(0).unwrap(); // Mode tag
    enc.u8(TransportMode::ALL
        .iter()
        .position(|&m| m == TransportMode::Walk)
        .unwrap() as u8)
        .unwrap();
}

#[test]
fn v1_logs_replay_and_migrate_to_v2() {
    let path = unique_path("v1-migration", 0);
    write_v1_log(&path);

    // a v1 log replays into the columnar engine
    let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
    let meta = store.get_trajectory(7).expect("meta replayed");
    assert_eq!(meta.object_id, 3);
    let (metas, episodes, ssts) = store.counts();
    assert_eq!((metas, episodes, ssts), (1, 2, 1));
    let sst = store.get_sst(7).expect("sst replayed");
    assert_eq!(sst.tuples.len(), 2);
    assert_eq!(sst.tuples[0].place.as_ref().unwrap().id, 501);

    // default layer derivation kicks in for v1 tuples: the region stop
    // lands in the landuse cube, the mode move in the mode filter
    let stops = store.stops_per_landuse_hour();
    assert_eq!(stops.get(LanduseCategory::ALL[0], 0), 1);
    assert_eq!(store.ssts_with_mode(TransportMode::Walk), vec![7]);

    // v1 episode rows never stored record ranges, but block summaries
    // still index them for time queries
    let hits = store.episodes_in_time(TimeSpan::new(Timestamp(150.0), Timestamp(250.0)));
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].kind, EpisodeKind::Stop);

    // new-style writes append to the v1 file without rewriting it
    let fixes: Vec<GpsRecord> = (0..300)
        .map(|i| GpsRecord {
            point: Point::new(10.0 + i as f64, 20.0),
            t: Timestamp(100.0 + i as f64),
        })
        .collect();
    store
        .put_trajectory(TrajectoryMeta {
            trajectory_id: 8,
            object_id: 4,
            record_count: fixes.len() as u64,
        })
        .unwrap();
    store.put_fixes(8, &fixes).unwrap();
    drop(store);

    let mixed = SemanticTrajectoryStore::open_durable(&path).unwrap();
    assert_eq!(mixed.counts().0, 2);
    assert_fixes_close(&mixed.get_fixes(8).unwrap(), &fixes);
    assert_eq!(mixed.get_sst(7).expect("v1 sst survives").tuples.len(), 2);

    // compaction rewrites the mixed log as pure v2; everything survives
    mixed.compact().unwrap();
    drop(mixed);
    let migrated = SemanticTrajectoryStore::open_durable(&path).unwrap();
    assert_eq!(migrated.counts(), (2, 2, 1));
    assert_fixes_close(&migrated.get_fixes(8).unwrap(), &fixes);
    assert_eq!(
        migrated
            .stops_per_landuse_hour()
            .get(LanduseCategory::ALL[0], 0),
        1
    );
    assert_eq!(migrated.ssts_with_mode(TransportMode::Walk), vec![7]);
    std::fs::remove_file(&path).unwrap();
}
