//! The compressed semantic matrix: episode annotation layers as
//! bitpacked per-layer label streams (after "Semantrix: A Compressed
//! Semantic Matrix", see PAPERS.md).
//!
//! Each annotation layer has a fixed dictionary — transport mode, road
//! class, landuse category, POI activity, episode kind, place kind —
//! and stores one label per semantic tuple at `⌈log₂(|dict|+1)⌉` bits
//! (code 0 = "no label") in a contiguous [`PackedVec`] stream. Spans,
//! record counts and place ids ride along as plain columns aligned with
//! the streams; place labels are dictionary-encoded store-wide.
//!
//! Trajectories append as contiguous *segments* of the streams. An SST
//! overwrite appends a fresh segment and tombstones the old one (the
//! durable log is append-only for the same reason); scans skip dead
//! segments. Tuples whose annotation list carries more labels of one
//! layer than the stream can hold (e.g. two transport modes on one
//! tuple) keep the extras in a per-segment overflow list so annotation
//! queries stay *exactly* equal to a row walk, even on degenerate
//! inputs.

use crate::column::PackedVec;
use crate::olap::{hour_of, rank_poi_visits, LanduseHourCounts, ModeShareByClass, PoiVisit};
use crate::AnnotationStats;
use semitri_core::model::{
    AnnotationValue, PlaceKind, SemanticTuple, StructuredSemanticTrajectory,
};
use semitri_data::{LanduseCategory, RoadClass, TransportMode};
use semitri_episodes::EpisodeKind;
use std::collections::HashMap;

/// Bits per mode label (dictionary: none + 5 modes).
pub const MODE_BITS: u32 = 3;
/// Bits per road-class label (none + 4 classes).
pub const CLASS_BITS: u32 = 3;
/// Bits per landuse label (none + 17 categories).
pub const LANDUSE_BITS: u32 = 5;
/// Bits per activity label (none + 5 categories).
pub const ACTIVITY_BITS: u32 = 3;
/// Bits per episode-kind label (stop/move).
pub const KIND_BITS: u32 = 1;
/// Bits per place-kind label (none/region/line/point).
pub const PLACE_KIND_BITS: u32 = 2;

/// Label bits per tuple across all layers.
pub const LABEL_BITS_PER_TUPLE: u32 =
    MODE_BITS + CLASS_BITS + LANDUSE_BITS + ACTIVITY_BITS + KIND_BITS + PLACE_KIND_BITS;

/// Number of annotation layers the matrix stacks.
pub const LAYER_COUNT: usize = 6;

const LABEL_NONE: u32 = u32::MAX;

/// Per-tuple layer row: the labels that come from outside the SST
/// itself (episode kind, matched road class, dominant landuse) plus the
/// tuple's GPS record count for record-weighted aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleLayers {
    /// Stop or move (the episode the tuple annotates).
    pub kind: EpisodeKind,
    /// Road class of the matched segment (move tuples).
    pub road_class: Option<RoadClass>,
    /// Dominant landuse category under the tuple.
    pub landuse: Option<LanduseCategory>,
    /// GPS records covered by the tuple (0 = unknown).
    pub records: u32,
}

impl TupleLayers {
    /// Derives layer labels from the tuple alone — used when an SST is
    /// stored without pipeline context (`put_sst`, v1-log replay). The
    /// row-walk oracle uses the same derivation, so compressed and row
    /// aggregates agree by construction.
    pub fn derive_default(tuple: &SemanticTuple) -> Self {
        let has_mode = tuple
            .annotations
            .iter()
            .any(|a| matches!(a.value, AnnotationValue::Mode(_)));
        let place_kind = tuple.place.as_ref().map(|p| p.kind);
        let kind = if has_mode || place_kind == Some(PlaceKind::Line) {
            EpisodeKind::Move
        } else {
            EpisodeKind::Stop
        };
        let landuse = match &tuple.place {
            Some(p) if p.kind == PlaceKind::Region => LanduseCategory::ALL
                .iter()
                .copied()
                .find(|c| c.label() == p.label),
            _ => None,
        };
        Self {
            kind,
            road_class: None,
            landuse,
            records: 0,
        }
    }
}

fn mode_code(m: TransportMode) -> u64 {
    TransportMode::ALL
        .iter()
        .position(|&x| x == m)
        .expect("mode in ALL") as u64
        + 1
}

/// One stored trajectory: a contiguous range of the label streams.
#[derive(Debug)]
struct Segment {
    trajectory_id: u64,
    offset: usize,
    len: usize,
    alive: bool,
    /// Extra (layer, code) labels beyond the one slot per layer:
    /// `(tuple index within segment, layer tag, dictionary code)`.
    overflow: Vec<(u32, u8, u8)>,
    /// Codec-encoded SST body for exact reconstruction.
    blob: Vec<u8>,
}

const OVERFLOW_MODE: u8 = 0;
const OVERFLOW_ACTIVITY: u8 = 1;

/// Multiplicative hasher for the fixed-width `(place_id, label_code)`
/// POI keys. The visit-rank scan increments a hot map entry per stop
/// tuple; SipHash on a 12-byte key costs more than the whole bitpacked
/// filter, and these keys need no DoS resistance.
#[derive(Default)]
struct PlaceHasher(u64);

impl std::hash::Hasher for PlaceHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

type BuildPlaceHasher = std::hash::BuildHasherDefault<PlaceHasher>;

/// The compressed semantic matrix.
#[derive(Debug)]
pub struct SemanticMatrix {
    kind: PackedVec,
    mode: PackedVec,
    class: PackedVec,
    landuse: PackedVec,
    activity: PackedVec,
    place_kind: PackedVec,
    span_start: Vec<f64>,
    span_end: Vec<f64>,
    records: Vec<u32>,
    place_id: Vec<u64>,
    place_label: Vec<u32>,
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    segments: Vec<Segment>,
    by_traj: HashMap<u64, usize>,
    live_tuples: usize,
    dead_tuples: usize,
}

impl Default for SemanticMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl SemanticMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self {
            kind: PackedVec::new(KIND_BITS),
            mode: PackedVec::new(MODE_BITS),
            class: PackedVec::new(CLASS_BITS),
            landuse: PackedVec::new(LANDUSE_BITS),
            activity: PackedVec::new(ACTIVITY_BITS),
            place_kind: PackedVec::new(PLACE_KIND_BITS),
            span_start: Vec::new(),
            span_end: Vec::new(),
            records: Vec::new(),
            place_id: Vec::new(),
            place_label: Vec::new(),
            labels: Vec::new(),
            label_ids: HashMap::new(),
            segments: Vec::new(),
            by_traj: HashMap::new(),
            live_tuples: 0,
            dead_tuples: 0,
        }
    }

    fn label_id(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_ids.insert(label.to_string(), id);
        id
    }

    /// Inserts (or replaces) a trajectory's tuples, taking the aligned
    /// layer rows and the codec-encoded SST body for reconstruction.
    ///
    /// # Panics
    /// Panics when `layers` is not aligned with `sst.tuples`.
    pub fn insert(
        &mut self,
        sst: &StructuredSemanticTrajectory,
        layers: &[TupleLayers],
        blob: Vec<u8>,
    ) {
        assert_eq!(sst.tuples.len(), layers.len(), "layer rows must align");
        if let Some(&old) = self.by_traj.get(&sst.trajectory_id) {
            let seg = &mut self.segments[old];
            seg.alive = false;
            seg.blob = Vec::new();
            self.live_tuples -= seg.len;
            self.dead_tuples += seg.len;
        }
        let offset = self.kind.len();
        let mut overflow = Vec::new();
        for (i, (t, l)) in sst.tuples.iter().zip(layers).enumerate() {
            self.kind.push(match l.kind {
                EpisodeKind::Stop => 0,
                EpisodeKind::Move => 1,
            });
            // primary label per layer; extras overflow
            let mut mode = 0u64;
            let mut activity = 0u64;
            for a in &t.annotations {
                match a.value {
                    AnnotationValue::Mode(m) => {
                        let code = mode_code(m);
                        if mode == 0 {
                            mode = code;
                        } else {
                            overflow.push((i as u32, OVERFLOW_MODE, code as u8));
                        }
                    }
                    AnnotationValue::Activity(c) => {
                        let code = c.ordinal() as u64 + 1;
                        if activity == 0 {
                            activity = code;
                        } else {
                            overflow.push((i as u32, OVERFLOW_ACTIVITY, code as u8));
                        }
                    }
                    _ => {}
                }
            }
            self.mode.push(mode);
            self.activity.push(activity);
            self.class
                .push(l.road_class.map_or(0, |c| c.ordinal() as u64 + 1));
            self.landuse
                .push(l.landuse.map_or(0, |c| c.ordinal() as u64 + 1));
            self.span_start.push(t.span.start.0);
            self.span_end.push(t.span.end.0);
            self.records.push(l.records);
            match &t.place {
                None => {
                    self.place_kind.push(0);
                    self.place_id.push(0);
                    self.place_label.push(LABEL_NONE);
                }
                Some(p) => {
                    self.place_kind.push(match p.kind {
                        PlaceKind::Region => 1,
                        PlaceKind::Line => 2,
                        PlaceKind::Point => 3,
                    });
                    self.place_id.push(p.id);
                    let id = self.label_id(&p.label);
                    self.place_label.push(id);
                }
            }
        }
        let idx = self.segments.len();
        self.segments.push(Segment {
            trajectory_id: sst.trajectory_id,
            offset,
            len: sst.tuples.len(),
            alive: true,
            overflow,
            blob,
        });
        self.by_traj.insert(sst.trajectory_id, idx);
        self.live_tuples += sst.tuples.len();
    }

    /// Patches the externally-derived layers of an already-inserted
    /// trajectory (durable replay: a `REC_LAYERS` record following the
    /// trajectory's SST record). Returns `false` when the trajectory is
    /// unknown or the row count does not match.
    pub fn patch_layers(&mut self, trajectory_id: u64, layers: &[TupleLayers]) -> bool {
        let Some(&idx) = self.by_traj.get(&trajectory_id) else {
            return false;
        };
        let seg = &self.segments[idx];
        if !seg.alive || seg.len != layers.len() {
            return false;
        }
        let offset = seg.offset;
        for (i, l) in layers.iter().enumerate() {
            self.kind.set(
                offset + i,
                match l.kind {
                    EpisodeKind::Stop => 0,
                    EpisodeKind::Move => 1,
                },
            );
            self.class.set(
                offset + i,
                l.road_class.map_or(0, |c| c.ordinal() as u64 + 1),
            );
            self.landuse
                .set(offset + i, l.landuse.map_or(0, |c| c.ordinal() as u64 + 1));
            self.records[offset + i] = l.records;
        }
        true
    }

    /// The stored codec body for a trajectory's SST, when present.
    pub fn blob_of(&self, trajectory_id: u64) -> Option<&[u8]> {
        let &idx = self.by_traj.get(&trajectory_id)?;
        let seg = &self.segments[idx];
        seg.alive.then_some(seg.blob.as_slice())
    }

    /// The layer rows of a stored trajectory (for log compaction).
    pub fn layers_of(&self, trajectory_id: u64) -> Option<Vec<TupleLayers>> {
        let &idx = self.by_traj.get(&trajectory_id)?;
        let seg = &self.segments[idx];
        if !seg.alive {
            return None;
        }
        let mut out = Vec::with_capacity(seg.len);
        for i in seg.offset..seg.offset + seg.len {
            out.push(TupleLayers {
                kind: if self.kind.get(i) == 0 {
                    EpisodeKind::Stop
                } else {
                    EpisodeKind::Move
                },
                road_class: match self.class.get(i) {
                    0 => None,
                    c => Some(RoadClass::ALL[(c - 1) as usize]),
                },
                landuse: match self.landuse.get(i) {
                    0 => None,
                    c => Some(LanduseCategory::ALL[(c - 1) as usize]),
                },
                records: self.records[i],
            });
        }
        Some(out)
    }

    /// Stored (alive) trajectory count.
    pub fn sst_count(&self) -> usize {
        self.by_traj.len()
    }

    /// Alive trajectory ids, unsorted.
    pub fn trajectory_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.by_traj.keys().copied()
    }

    /// Alive tuple count.
    pub fn live_tuples(&self) -> usize {
        self.live_tuples
    }

    /// Tombstoned tuple count (reclaimed by log compaction + reload).
    pub fn dead_tuples(&self) -> usize {
        self.dead_tuples
    }

    /// Total bits held by the six label streams (including dead
    /// segments, which is what the streams physically occupy).
    pub fn label_bits(&self) -> u64 {
        self.kind.bits()
            + self.mode.bits()
            + self.class.bits()
            + self.landuse.bits()
            + self.activity.bits()
            + self.place_kind.bits()
    }

    /// Trajectory ids with at least one tuple carrying `mode`, sorted.
    pub fn ssts_with_mode(&self, mode: TransportMode) -> Vec<u64> {
        let code = mode_code(mode);
        let mut ids = Vec::new();
        for seg in self.segments.iter().filter(|s| s.alive) {
            let mut hit = self.mode.iter_range(seg.offset, seg.len).any(|m| m == code);
            if !hit {
                hit = seg
                    .overflow
                    .iter()
                    .any(|&(_, layer, c)| layer == OVERFLOW_MODE && u64::from(c) == code);
            }
            if hit {
                ids.push(seg.trajectory_id);
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Trajectory ids with at least one tuple carrying the activity,
    /// sorted.
    pub fn ssts_with_activity(&self, cat: semitri_data::PoiCategory) -> Vec<u64> {
        let code = cat.ordinal() as u64 + 1;
        let mut ids = Vec::new();
        for seg in self.segments.iter().filter(|s| s.alive) {
            let mut hit = self
                .activity
                .iter_range(seg.offset, seg.len)
                .any(|a| a == code);
            if !hit {
                hit = seg
                    .overflow
                    .iter()
                    .any(|&(_, layer, c)| layer == OVERFLOW_ACTIVITY && u64::from(c) == code);
            }
            if hit {
                ids.push(seg.trajectory_id);
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Per-mode / per-activity annotation counts over the streams plus
    /// overflow — exactly the row walk's numbers.
    pub fn annotation_statistics(&self) -> AnnotationStats {
        let mut stats = AnnotationStats::default();
        for (offset, len) in self.live_runs() {
            let modes = self.mode.iter_range(offset, len);
            let activities = self.activity.iter_range(offset, len);
            for (m, a) in modes.zip(activities) {
                if m != 0 {
                    stats.mode_tuples[(m - 1) as usize] += 1;
                }
                if a != 0 {
                    stats.activity_tuples[(a - 1) as usize] += 1;
                }
            }
        }
        for seg in self.segments.iter().filter(|s| s.alive) {
            for &(_, layer, code) in &seg.overflow {
                match layer {
                    OVERFLOW_MODE => stats.mode_tuples[(code - 1) as usize] += 1,
                    _ => stats.activity_tuples[(code - 1) as usize] += 1,
                }
            }
        }
        stats
    }

    /// Live segments coalesced into maximal contiguous `(offset, len)`
    /// runs. Segments are a handful of tuples each, so scanning them one
    /// by one pays iterator setup per segment; aggregate scans that do
    /// not need per-trajectory attribution stream whole runs instead.
    fn live_runs(&self) -> Vec<(usize, usize)> {
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for seg in self.segments.iter().filter(|s| s.alive) {
            match runs.last_mut() {
                Some((off, len)) if *off + *len == seg.offset => *len += seg.len,
                _ => runs.push((seg.offset, seg.len)),
            }
        }
        runs
    }

    /// Compressed scan: stop tuples per landuse category per hour.
    pub fn stops_per_landuse_hour(&self) -> LanduseHourCounts {
        let mut out = LanduseHourCounts::default();
        for (offset, len) in self.live_runs() {
            let kinds = self.kind.iter_range(offset, len);
            let landuses = self.landuse.iter_range(offset, len);
            for (i, (kind, lu)) in kinds.zip(landuses).enumerate() {
                if kind != 0 || lu == 0 {
                    continue;
                }
                let start = self.span_start[offset + i];
                let hour = hour_of(semitri_geo::Timestamp(start));
                out.counts[(lu - 1) as usize][hour] += 1;
            }
        }
        out
    }

    /// Compressed scan: record-weighted mode share per road class.
    pub fn mode_share_by_road_class(&self) -> ModeShareByClass {
        let mut out = ModeShareByClass::default();
        for (offset, len) in self.live_runs() {
            let classes = self.class.iter_range(offset, len);
            let modes = self.mode.iter_range(offset, len);
            for (i, (c, m)) in classes.zip(modes).enumerate() {
                if c == 0 || m == 0 {
                    continue;
                }
                let recs = self.records[offset + i];
                out.records[(c - 1) as usize][(m - 1) as usize] += u64::from(recs).max(1);
            }
        }
        out
    }

    /// Compressed scan: top-`n` POIs by stop-tuple visits.
    pub fn top_poi_visits(&self, n: usize) -> Vec<PoiVisit> {
        let mut visits: HashMap<(u64, u32), u64, BuildPlaceHasher> = HashMap::default();
        for (offset, len) in self.live_runs() {
            let kinds = self.kind.iter_range(offset, len);
            let place_kinds = self.place_kind.iter_range(offset, len);
            for (i, (kind, pk)) in kinds.zip(place_kinds).enumerate() {
                if kind != 0 || pk != 3 {
                    continue;
                }
                let idx = offset + i;
                *visits
                    .entry((self.place_id[idx], self.place_label[idx]))
                    .or_insert(0) += 1;
            }
        }
        rank_poi_visits(visits, &self.labels, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_core::model::{Annotation, PlaceRef};
    use semitri_geo::{TimeSpan, Timestamp};

    fn tuple(place: Option<PlaceRef>, t0: f64, anns: Vec<Annotation>) -> SemanticTuple {
        SemanticTuple {
            place,
            span: TimeSpan::new(Timestamp(t0), Timestamp(t0 + 10.0)),
            annotations: anns,
        }
    }

    fn sst(id: u64, tuples: Vec<SemanticTuple>) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: id,
            tuples,
        }
    }

    #[test]
    fn insert_and_scan() {
        let mut m = SemanticMatrix::new();
        let s = sst(
            1,
            vec![
                tuple(
                    Some(PlaceRef::new(PlaceKind::Point, 42, "cafe")),
                    0.0,
                    vec![Annotation::activity(semitri_data::PoiCategory::Feedings)],
                ),
                tuple(
                    Some(PlaceRef::new(PlaceKind::Line, 7, "Rue R1")),
                    10.0,
                    vec![Annotation::mode(TransportMode::Bus)],
                ),
            ],
        );
        let layers = vec![
            TupleLayers {
                kind: EpisodeKind::Stop,
                road_class: None,
                landuse: Some(LanduseCategory::ALL[0]),
                records: 30,
            },
            TupleLayers {
                kind: EpisodeKind::Move,
                road_class: Some(RoadClass::Street),
                landuse: None,
                records: 60,
            },
        ];
        m.insert(&s, &layers, vec![1, 2, 3]);
        assert_eq!(m.sst_count(), 1);
        assert_eq!(m.live_tuples(), 2);
        assert_eq!(m.ssts_with_mode(TransportMode::Bus), vec![1]);
        assert!(m.ssts_with_mode(TransportMode::Car).is_empty());
        let share = m.mode_share_by_road_class();
        assert_eq!(share.get(RoadClass::Street, TransportMode::Bus), 60);
        let stops = m.stops_per_landuse_hour();
        assert_eq!(stops.get(LanduseCategory::ALL[0], 0), 1);
        let pois = m.top_poi_visits(10);
        assert_eq!(pois.len(), 1);
        assert_eq!(pois[0].label, "cafe");
        assert_eq!(m.blob_of(1).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn overwrite_tombstones_old_segment() {
        let mut m = SemanticMatrix::new();
        let s1 = sst(
            5,
            vec![tuple(None, 0.0, vec![Annotation::mode(TransportMode::Car)])],
        );
        let layers1 = vec![TupleLayers::derive_default(&s1.tuples[0])];
        m.insert(&s1, &layers1, vec![1]);
        let s2 = sst(
            5,
            vec![tuple(
                None,
                0.0,
                vec![Annotation::mode(TransportMode::Walk)],
            )],
        );
        let layers2 = vec![TupleLayers::derive_default(&s2.tuples[0])];
        m.insert(&s2, &layers2, vec![2]);
        assert_eq!(m.sst_count(), 1);
        assert_eq!(m.live_tuples(), 1);
        assert_eq!(m.dead_tuples(), 1);
        assert!(m.ssts_with_mode(TransportMode::Car).is_empty());
        assert_eq!(m.ssts_with_mode(TransportMode::Walk), vec![5]);
        assert_eq!(m.blob_of(5).unwrap(), &[2]);
        let stats = m.annotation_statistics();
        assert_eq!(stats.mode(TransportMode::Car), 0);
        assert_eq!(stats.mode(TransportMode::Walk), 1);
    }

    #[test]
    fn duplicate_layer_labels_overflow_exactly() {
        // two modes + two activities on one tuple: stream holds one,
        // overflow keeps the rest, stats count all four
        let mut m = SemanticMatrix::new();
        let s = sst(
            9,
            vec![tuple(
                None,
                0.0,
                vec![
                    Annotation::mode(TransportMode::Walk),
                    Annotation::mode(TransportMode::Metro),
                    Annotation::activity(semitri_data::PoiCategory::ItemSale),
                    Annotation::activity(semitri_data::PoiCategory::ItemSale),
                ],
            )],
        );
        let layers = vec![TupleLayers::derive_default(&s.tuples[0])];
        m.insert(&s, &layers, Vec::new());
        let stats = m.annotation_statistics();
        assert_eq!(stats.mode(TransportMode::Walk), 1);
        assert_eq!(stats.mode(TransportMode::Metro), 1);
        assert_eq!(stats.activity(semitri_data::PoiCategory::ItemSale), 2);
        assert_eq!(m.ssts_with_mode(TransportMode::Metro), vec![9]);
        assert_eq!(
            m.ssts_with_activity(semitri_data::PoiCategory::ItemSale),
            vec![9]
        );
    }

    #[test]
    fn patch_layers_upgrades_labels() {
        let mut m = SemanticMatrix::new();
        let s = sst(3, vec![tuple(None, 3_600.0, vec![])]);
        m.insert(&s, &[TupleLayers::derive_default(&s.tuples[0])], Vec::new());
        assert_eq!(m.stops_per_landuse_hour().total(), 0);
        let patched = m.patch_layers(
            3,
            &[TupleLayers {
                kind: EpisodeKind::Stop,
                road_class: None,
                landuse: Some(LanduseCategory::ALL[2]),
                records: 12,
            }],
        );
        assert!(patched);
        let counts = m.stops_per_landuse_hour();
        assert_eq!(counts.get(LanduseCategory::ALL[2], 1), 1);
        assert!(!m.patch_layers(3, &[]), "length mismatch rejected");
        assert!(!m.patch_layers(99, &[]), "unknown trajectory rejected");
    }

    #[test]
    fn label_bits_are_small() {
        let mut m = SemanticMatrix::new();
        for id in 0..50u64 {
            let s = sst(
                id,
                (0..20)
                    .map(|i| tuple(None, i as f64, vec![Annotation::mode(TransportMode::Car)]))
                    .collect(),
            );
            let layers: Vec<TupleLayers> =
                s.tuples.iter().map(TupleLayers::derive_default).collect();
            m.insert(&s, &layers, Vec::new());
        }
        // 17 bits per tuple across six layers
        assert_eq!(m.label_bits(), 1_000 * u64::from(LABEL_BITS_PER_TUPLE));
        assert!(m.label_bits() / 8 < 1_000 * 3, "≈2.1 B/tuple of labels");
    }
}
