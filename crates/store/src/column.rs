//! Bit-level column primitives: zigzag mapping, LEB128 varints, a
//! fixed-width packed vector for the semantic-matrix label streams, and a
//! bit writer/reader pair for the PFOR-style fix blocks.
//!
//! Everything here is allocation-light and dependency-free; the formats
//! built on top ([`crate::fixcol`], [`crate::matrix`]) own the framing.

use std::io::{self, Read};

/// Maps a signed value onto an unsigned one with small magnitudes staying
/// small (`0, -1, 1, -2, … → 0, 1, 2, 3, …`).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint to `out`, returning the encoded byte count.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 0;
    loop {
        n += 1;
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_varint`] would emit for `v`.
#[inline]
pub fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Reads a LEB128 varint from `src`.
///
/// # Errors
/// Fails on EOF or a varint longer than 10 bytes.
pub fn read_varint(src: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        src.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= u64::from(b[0] & 0x7f) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Bits needed to represent `v` (0 for `v == 0`).
#[inline]
pub fn bit_width(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// A vector of unsigned values packed at a fixed bit width.
///
/// This is the Semantrix label-stream container: `width` is
/// `⌈log₂|dict|⌉` for the layer's dictionary and every label costs
/// exactly `width` bits. Supports random-access `get`/`set` so a layer
/// can be patched in place (e.g. when a later log record upgrades a
/// trajectory's road-class/landuse labels).
#[derive(Debug, Clone, Default)]
pub struct PackedVec {
    width: u32,
    len: usize,
    words: Vec<u64>,
}

impl PackedVec {
    /// Creates an empty packed vector with the given bit width (≤ 32).
    pub fn new(width: u32) -> Self {
        assert!(width <= 32, "packed width must be ≤ 32 bits");
        Self {
            width,
            len: 0,
            words: Vec::new(),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per element.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total bits occupied by the packed payload.
    pub fn bits(&self) -> u64 {
        self.len as u64 * u64::from(self.width)
    }

    /// Heap bytes backing the stream.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Appends a value (truncated to the stream width).
    pub fn push(&mut self, v: u64) {
        let idx = self.len;
        self.len += 1;
        let need = ((self.len as u64 * u64::from(self.width)) as usize).div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
        self.set(idx, v);
    }

    /// Reads the value at `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        assert!(idx < self.len, "PackedVec index out of bounds");
        if self.width == 0 {
            return 0;
        }
        let bit = idx as u64 * u64::from(self.width);
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = mask(self.width);
        let lo = self.words[word] >> off;
        if off + self.width <= 64 {
            lo & mask
        } else {
            let hi = self.words[word + 1] << (64 - off);
            (lo | hi) & mask
        }
    }

    /// Overwrites the value at `idx` (truncated to the stream width).
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn set(&mut self, idx: usize, v: u64) {
        assert!(idx < self.len, "PackedVec index out of bounds");
        if self.width == 0 {
            return;
        }
        let v = v & mask(self.width);
        let bit = idx as u64 * u64::from(self.width);
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let m = mask(self.width);
        self.words[word] &= !(m << off);
        self.words[word] |= v << off;
        if off + self.width > 64 {
            let spill = 64 - off;
            self.words[word + 1] &= !(m >> spill);
            self.words[word + 1] |= v >> spill;
        }
    }

    /// Streaming cursor over `start .. start + len`: one bounds check up
    /// front, then sequential shift-and-mask decode with the bit cursor
    /// carried across elements — the scan path, where per-element
    /// [`PackedVec::get`] arithmetic would dominate the aggregate.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn iter_range(&self, start: usize, len: usize) -> PackedIter<'_> {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "PackedVec range out of bounds"
        );
        let bit = start as u64 * u64::from(self.width);
        let skip = (bit >> 6) as usize;
        let off = (bit & 63) as u32;
        // Prime the accumulator with the tail of the word the range starts
        // in; the slice iterator then feeds whole words with no per-element
        // bounds checks.
        let mut words = self.words[skip.min(self.words.len())..].iter();
        let acc = u128::from(words.next().copied().unwrap_or(0) >> off);
        PackedIter {
            words,
            acc,
            acc_bits: 64 - off,
            width: self.width,
            mask: mask(self.width),
            remaining: len,
        }
    }
}

/// Sequential decoder returned by [`PackedVec::iter_range`].
///
/// Keeps a 128-bit shift accumulator refilled one whole word at a time
/// from a slice iterator, so the per-element cost is a shift, a mask and
/// a counter decrement — the refill branch only fires every
/// `64 / width` elements and the slice iterator never bounds-checks.
#[derive(Debug)]
pub struct PackedIter<'a> {
    words: std::slice::Iter<'a, u64>,
    acc: u128,
    acc_bits: u32,
    width: u32,
    mask: u64,
    remaining: usize,
}

impl Iterator for PackedIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.width == 0 {
            return Some(0);
        }
        if self.acc_bits < self.width {
            let word = self.words.next().copied().unwrap_or(0);
            self.acc |= u128::from(word) << self.acc_bits;
            self.acc_bits += 64;
        }
        let v = self.acc as u64 & self.mask;
        self.acc >>= self.width;
        self.acc_bits -= self.width;
        Some(v)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PackedIter<'_> {}

#[inline]
fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Streams values at arbitrary bit widths into a byte buffer (LSB-first).
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    filled: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `v`.
    pub fn put(&mut self, v: u64, width: u32) {
        debug_assert!(width <= 57, "BitWriter width must be ≤ 57");
        self.acc |= (v & mask(width)) << self.filled;
        self.filled += width;
        while self.filled >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.filled -= 8;
        }
    }

    /// Flushes the partial byte and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

/// Reads back a [`BitWriter`] stream.
pub struct BitReader<'a> {
    src: &'a [u8],
    pos: usize,
    acc: u64,
    filled: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice produced by [`BitWriter::finish`].
    pub fn new(src: &'a [u8]) -> Self {
        Self {
            src,
            pos: 0,
            acc: 0,
            filled: 0,
        }
    }

    /// Reads `width` bits; missing bytes read as zero (the writer's final
    /// partial byte is zero-padded).
    pub fn get(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 57, "BitReader width must be ≤ 57");
        while self.filled < width {
            let byte = if self.pos < self.src.len() {
                let b = self.src[self.pos];
                self.pos += 1;
                b
            } else {
                0
            };
            self.acc |= u64::from(byte) << self.filled;
            self.filled += 8;
        }
        let v = self.acc & mask(width);
        self.acc >>= width;
        self.filled -= width;
        v
    }

    /// Bytes consumed so far (rounded up to whole bytes).
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

/// Writes `values` with a PFOR-style layout: a base bit width chosen to
/// minimize total size, all values packed at that width, and the few that
/// overflow it patched from an exception list of `(index, value)` varint
/// pairs. Returns the encoded bytes.
///
/// Layout: `width u8 · n_exceptions varint · packed payload bytes varint
/// length + bytes · exceptions (index varint, value varint)*`.
pub fn pfor_encode(values: &[u64]) -> Vec<u8> {
    // histogram of required widths
    let mut hist = [0usize; 65];
    for &v in values {
        hist[bit_width(v) as usize] += 1;
    }
    // pick the width minimizing packed bits + exception bytes
    let mut best_w = 0u32;
    let mut best_cost = u64::MAX;
    for w in 0..=57u32 {
        let mut cost = values.len() as u64 * u64::from(w);
        let mut exceptions = 0u64;
        for (width, &count) in hist.iter().enumerate() {
            if width as u32 > w {
                exceptions += count as u64;
            }
        }
        // an exception costs roughly index varint (1–2 B) + value varint
        cost += exceptions * 8 * 4;
        if cost < best_cost {
            best_cost = cost;
            best_w = w;
        }
        if exceptions == 0 {
            break; // larger widths only cost more
        }
    }
    let mut writer = BitWriter::new();
    let mut exceptions: Vec<(usize, u64)> = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if bit_width(v) > best_w {
            exceptions.push((i, v));
            writer.put(0, best_w);
        } else {
            writer.put(v, best_w);
        }
    }
    let packed = writer.finish();
    let mut out = Vec::with_capacity(packed.len() + 8);
    out.push(best_w as u8);
    write_varint(&mut out, exceptions.len() as u64);
    write_varint(&mut out, packed.len() as u64);
    out.extend_from_slice(&packed);
    for (i, v) in exceptions {
        write_varint(&mut out, i as u64);
        write_varint(&mut out, v);
    }
    out
}

/// Decodes `count` values written by [`pfor_encode`] from `src`.
///
/// # Errors
/// Fails on truncation or malformed framing.
pub fn pfor_decode(src: &mut impl Read, count: usize, out: &mut Vec<u64>) -> io::Result<()> {
    let mut w = [0u8; 1];
    src.read_exact(&mut w)?;
    let width = u32::from(w[0]);
    if width > 57 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "pfor width out of range",
        ));
    }
    let n_exc = read_varint(src)? as usize;
    let packed_len = read_varint(src)? as usize;
    let expected = ((count as u64 * u64::from(width)) as usize).div_ceil(8);
    if packed_len != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "pfor payload length mismatch",
        ));
    }
    let mut packed = vec![0u8; packed_len];
    src.read_exact(&mut packed)?;
    let base = out.len();
    let mut reader = BitReader::new(&packed);
    for _ in 0..count {
        out.push(reader.get(width));
    }
    for _ in 0..n_exc {
        let idx = read_varint(src)? as usize;
        let v = read_varint(src)?;
        if idx >= count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pfor exception index out of range",
            ));
        }
        out[base + idx] = v;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            2,
            -2,
            i64::MAX,
            i64::MIN,
            123456789,
            -987654321,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let n = write_varint(&mut buf, v);
            assert_eq!(n, varint_len(v));
        }
        let mut src = buf.as_slice();
        for &v in &values {
            assert_eq!(read_varint(&mut src).unwrap(), v);
        }
    }

    #[test]
    fn packed_vec_get_set_across_words() {
        for width in [1u32, 3, 5, 7, 13, 17, 31] {
            let mut pv = PackedVec::new(width);
            let n = 200;
            for i in 0..n {
                pv.push((i as u64 * 2_654_435_761) & ((1 << width) - 1));
            }
            for i in 0..n {
                assert_eq!(pv.get(i), (i as u64 * 2_654_435_761) & ((1 << width) - 1));
            }
            pv.set(63, 1);
            pv.set(64, (1 << width) - 1);
            assert_eq!(pv.get(63), 1);
            assert_eq!(pv.get(64), (1 << width) - 1);
            assert_eq!(pv.get(65), (65u64 * 2_654_435_761) & ((1 << width) - 1));
        }
    }

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        let widths = [0u32, 1, 3, 11, 23, 33, 57];
        for (i, &width) in widths.iter().cycle().take(500).enumerate() {
            w.put(i as u64, width);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (i, &width) in widths.iter().cycle().take(500).enumerate() {
            assert_eq!(r.get(width), (i as u64) & ((1u64 << width) - 1));
        }
    }

    #[test]
    fn pfor_roundtrip_with_outliers() {
        let mut values: Vec<u64> = (0..300).map(|i| (i * 7) % 900).collect();
        values[13] = u64::from(u32::MAX); // spike must become an exception
        values[255] = 1 << 40;
        let bytes = pfor_encode(&values);
        // the spikes must not inflate the base width to 40 bits
        assert!(bytes[0] <= 16, "base width {} too wide", bytes[0]);
        let mut out = Vec::new();
        pfor_decode(&mut bytes.as_slice(), values.len(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn pfor_empty_and_constant() {
        let bytes = pfor_encode(&[]);
        let mut out = Vec::new();
        pfor_decode(&mut bytes.as_slice(), 0, &mut out).unwrap();
        assert!(out.is_empty());

        let zeros = vec![0u64; 1000];
        let bytes = pfor_encode(&zeros);
        assert!(bytes.len() < 16, "all-zero column must be ~free");
        let mut out = Vec::new();
        pfor_decode(&mut bytes.as_slice(), zeros.len(), &mut out).unwrap();
        assert_eq!(out, zeros);
    }

    #[test]
    fn pfor_truncation_detected() {
        let values: Vec<u64> = (0..100).collect();
        let bytes = pfor_encode(&values);
        let mut out = Vec::new();
        assert!(pfor_decode(&mut &bytes[..bytes.len() - 2], 100, &mut out).is_err());
    }
}
