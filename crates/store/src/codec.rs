//! A minimal length-prefixed binary codec.
//!
//! Hand-rolled rather than pulling `serde` + a format crate: the store's
//! row set is small and fixed, the wire format stays inspectable and
//! versioned by us, and the crate keeps zero serialization dependencies.
//! All integers are little-endian; strings and sequences carry a `u32`
//! length prefix.

use std::io::{self, Read, Write};

/// Writes primitive values to any [`Write`] sink.
pub struct Encoder<W: Write> {
    sink: W,
}

impl<W: Write> Encoder<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        Self { sink }
    }

    /// Consumes the encoder, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> io::Result<()> {
        self.sink.write_all(&[v])
    }

    /// Writes a `u32` (LE).
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.sink.write_all(&v.to_le_bytes())
    }

    /// Writes a `u64` (LE).
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.sink.write_all(&v.to_le_bytes())
    }

    /// Writes an `f64` (LE bit pattern).
    pub fn f64(&mut self, v: f64) -> io::Result<()> {
        self.sink.write_all(&v.to_le_bytes())
    }

    /// Writes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Fails with [`io::ErrorKind::InvalidInput`] for strings longer than
    /// `u32::MAX` bytes.
    pub fn string(&mut self, v: &str) -> io::Result<()> {
        let len: u32 = v
            .len()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "string too long"))?;
        self.u32(len)?;
        self.sink.write_all(v.as_bytes())
    }

    /// Writes a length-prefixed byte blob.
    ///
    /// # Errors
    /// Fails with [`io::ErrorKind::InvalidInput`] for blobs longer than
    /// `u32::MAX` bytes.
    pub fn bytes(&mut self, v: &[u8]) -> io::Result<()> {
        let len: u32 = v
            .len()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "blob too long"))?;
        self.u32(len)?;
        self.sink.write_all(v)
    }

    /// Writes bytes verbatim, with no framing — for payloads that carry
    /// their own (e.g. a pre-encoded record body).
    pub fn raw(&mut self, v: &[u8]) -> io::Result<()> {
        self.sink.write_all(v)
    }

    /// Writes a sequence length prefix.
    pub fn seq_len(&mut self, len: usize) -> io::Result<()> {
        let len: u32 = len
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "sequence too long"))?;
        self.u32(len)
    }
}

/// Reads primitive values from any [`Read`] source.
pub struct Decoder<R: Read> {
    source: R,
}

/// Upper bound accepted for any decoded length prefix; guards against
/// declaring gigabytes on a corrupt file.
const MAX_LEN: u32 = 256 * 1024 * 1024;

/// Upper bound on what a decoder *pre-allocates* from an untrusted
/// length prefix. A prefix under [`MAX_LEN`] is well-formed, but the
/// bytes it promises may simply not exist (truncated or corrupt input),
/// so allocation beyond this bound must be earned by data actually read.
const MAX_PREALLOC_BYTES: usize = 64 * 1024;

/// Initial capacity to reserve for a decoded sequence whose length
/// prefix claims `len` elements of roughly `elem_size` bytes each.
///
/// The prefix is untrusted: reserving `len * elem_size` up front would
/// let a 5-byte corrupt file demand a multi-gigabyte allocation. The
/// returned capacity is capped at [`MAX_PREALLOC_BYTES`]; a genuinely
/// long sequence grows the vector organically as elements decode (and
/// each element decode consumes input, so memory stays proportional to
/// real data).
pub fn seq_capacity(len: usize, elem_size: usize) -> usize {
    len.min(MAX_PREALLOC_BYTES / elem_size.max(1))
}

impl<R: Read> Decoder<R> {
    /// Wraps a source.
    pub fn new(source: R) -> Self {
        Self { source }
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.source.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.source.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.source.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.source.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// The length prefix is untrusted, so at most [`MAX_PREALLOC_BYTES`]
    /// are pre-allocated up front; the rest of the buffer grows only as
    /// bytes actually arrive. A prefix promising more bytes than the
    /// source holds fails with [`io::ErrorKind::UnexpectedEof`] after
    /// reading (and allocating) only what was really there.
    ///
    /// # Errors
    /// Fails with [`io::ErrorKind::InvalidData`] on oversized prefixes or
    /// invalid UTF-8, [`io::ErrorKind::UnexpectedEof`] on truncation.
    pub fn string(&mut self) -> io::Result<String> {
        let len = self.u32()?;
        if len > MAX_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "string length prefix too large",
            ));
        }
        let mut buf = Vec::with_capacity((len as usize).min(MAX_PREALLOC_BYTES));
        let read = self
            .source
            .by_ref()
            .take(u64::from(len))
            .read_to_end(&mut buf)?;
        if read != len as usize {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "string shorter than its length prefix",
            ));
        }
        String::from_utf8(buf)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8"))
    }

    /// Reads a length-prefixed byte blob (see [`Encoder::bytes`]); the
    /// same untrusted-prefix rules as [`Decoder::string`] apply.
    ///
    /// # Errors
    /// Fails with [`io::ErrorKind::InvalidData`] on oversized prefixes,
    /// [`io::ErrorKind::UnexpectedEof`] on truncation.
    pub fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()?;
        if len > MAX_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "blob length prefix too large",
            ));
        }
        let mut buf = Vec::with_capacity((len as usize).min(MAX_PREALLOC_BYTES));
        let read = self
            .source
            .by_ref()
            .take(u64::from(len))
            .read_to_end(&mut buf)?;
        if read != len as usize {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "blob shorter than its length prefix",
            ));
        }
        Ok(buf)
    }

    /// Reads a sequence length prefix.
    ///
    /// The returned length is *declared*, not verified — callers must
    /// size their initial allocation with [`seq_capacity`], never with
    /// `Vec::with_capacity(len)` directly.
    ///
    /// # Errors
    /// Fails with [`io::ErrorKind::InvalidData`] on oversized prefixes.
    pub fn seq_len(&mut self) -> io::Result<usize> {
        let len = self.u32()?;
        if len > MAX_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sequence length prefix too large",
            ));
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut enc = Encoder::new(Vec::new());
        enc.u8(7).unwrap();
        enc.u32(0xdead_beef).unwrap();
        enc.u64(u64::MAX).unwrap();
        enc.f64(-13.25).unwrap();
        enc.f64(f64::INFINITY).unwrap();
        enc.string("héllo").unwrap();
        enc.string("").unwrap();
        enc.seq_len(42).unwrap();
        let bytes = enc.into_inner();

        let mut dec = Decoder::new(bytes.as_slice());
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.f64().unwrap(), -13.25);
        assert_eq!(dec.f64().unwrap(), f64::INFINITY);
        assert_eq!(dec.string().unwrap(), "héllo");
        assert_eq!(dec.string().unwrap(), "");
        assert_eq!(dec.seq_len().unwrap(), 42);
        // exhausted
        assert!(dec.u8().is_err());
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        let mut enc = Encoder::new(Vec::new());
        enc.f64(f64::NAN).unwrap();
        let bytes = enc.into_inner();
        let mut dec = Decoder::new(bytes.as_slice());
        assert!(dec.f64().unwrap().is_nan());
    }

    #[test]
    fn truncated_input_errors() {
        let mut enc = Encoder::new(Vec::new());
        enc.string("hello world").unwrap();
        let bytes = enc.into_inner();
        let mut dec = Decoder::new(&bytes[..bytes.len() - 3]);
        assert!(dec.string().is_err());
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut enc = Encoder::new(Vec::new());
        enc.u32(u32::MAX).unwrap(); // absurd string length
        let bytes = enc.into_inner();
        let mut dec = Decoder::new(bytes.as_slice());
        let err = dec.string().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Encoder::new(Vec::new());
        enc.u32(2).unwrap();
        let mut bytes = enc.into_inner();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut dec = Decoder::new(bytes.as_slice());
        assert!(dec.string().is_err());
    }
}
