//! The Semantic Trajectory Store.
//!
//! Tables mirror the paper's PostGIS schema (§5.1): trajectory metadata,
//! stop/move episodes and the final structured semantic trajectories,
//! queryable by object, time range and space (an R\*-tree over episode
//! bounding boxes plays the role of the GiST index).
//!
//! Two write modes:
//!
//! * **in-memory** — everything lives in the process;
//! * **durable** — every write batch is also appended to a log file and
//!   flushed with `sync_data`, reproducing the realistic "storing
//!   dominates computing" latency profile of Fig. 17.

use crate::codec::{seq_capacity, Decoder, Encoder};
use parking_lot::Mutex;
use semitri_core::model::{
    Annotation, AnnotationValue, PlaceKind, PlaceRef, SemanticTuple, StructuredSemanticTrajectory,
};
use semitri_data::{PoiCategory, TransportMode};
use semitri_episodes::{Episode, EpisodeKind};
use semitri_geo::{Rect, TimeSpan, Timestamp};
use semitri_index::RStarTree;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// The log file is corrupt or from an incompatible version.
    Corrupt(String),
    /// A write referenced a trajectory that was never registered.
    UnknownTrajectory(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store log: {m}"),
            StoreError::UnknownTrajectory(id) => {
                write!(f, "unknown trajectory id {id}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Trajectory metadata row.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryMeta {
    /// Trajectory id (primary key).
    pub trajectory_id: u64,
    /// Moving object id.
    pub object_id: u64,
    /// Number of raw GPS records the trajectory had.
    pub record_count: u64,
}

/// Episode row: a stop/move episode of a stored trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEpisode {
    /// Owning trajectory.
    pub trajectory_id: u64,
    /// Position within the trajectory's episode list.
    pub index: u32,
    /// Stop or move.
    pub kind: EpisodeKind,
    /// Entering/leaving times.
    pub span: TimeSpan,
    /// Spatial extent.
    pub bbox: Rect,
}

const MAGIC: u32 = 0x5357_5254; // "SWRT"
const VERSION: u8 = 1;

const REC_META: u8 = 1;
const REC_EPISODE: u8 = 2;
const REC_SST: u8 = 3;

#[derive(Default)]
struct Inner {
    metas: HashMap<u64, TrajectoryMeta>,
    episodes: Vec<StoredEpisode>,
    /// spatial index over episode bboxes → index into `episodes`
    spatial: RStarTree<usize>,
    ssts: HashMap<u64, StructuredSemanticTrajectory>,
}

/// The embedded semantic trajectory store.
///
/// ```
/// use semitri_store::{SemanticTrajectoryStore, TrajectoryMeta};
///
/// let store = SemanticTrajectoryStore::in_memory();
/// store.put_trajectory(TrajectoryMeta {
///     trajectory_id: 1,
///     object_id: 9,
///     record_count: 1_000,
/// }).unwrap();
/// assert_eq!(store.trajectories_of(9), vec![1]);
/// assert_eq!(store.counts(), (1, 0, 0));
/// ```
pub struct SemanticTrajectoryStore {
    inner: Mutex<Inner>,
    log: Option<Mutex<BufWriter<File>>>,
    path: Option<PathBuf>,
}

impl SemanticTrajectoryStore {
    /// Creates an empty in-memory store.
    pub fn in_memory() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            log: None,
            path: None,
        }
    }

    /// Opens (or creates) a durable store backed by a synced log file.
    /// Existing contents are replayed into memory.
    ///
    /// # Errors
    /// Fails on I/O errors or a corrupt log.
    pub fn open_durable(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut inner = Inner::default();
        if path.exists() {
            replay(&path, &mut inner)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            let mut enc = Encoder::new(&mut file);
            enc.u32(MAGIC)?;
            enc.u8(VERSION)?;
            file.sync_data()?;
        }
        Ok(Self {
            inner: Mutex::new(inner),
            log: Some(Mutex::new(BufWriter::new(file))),
            path: Some(path),
        })
    }

    /// The backing file path, when durable.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn append(
        &self,
        write: impl FnOnce(&mut Encoder<&mut BufWriter<File>>) -> io::Result<()>,
    ) -> Result<(), StoreError> {
        if let Some(log) = &self.log {
            let mut guard = log.lock();
            {
                let mut enc = Encoder::new(&mut *guard);
                write(&mut enc)?;
            }
            guard.flush()?;
            guard.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Registers a trajectory's metadata.
    ///
    /// # Errors
    /// Fails only on durable-log I/O errors.
    pub fn put_trajectory(&self, meta: TrajectoryMeta) -> Result<(), StoreError> {
        self.append(|enc| {
            enc.u8(REC_META)?;
            enc.u64(meta.trajectory_id)?;
            enc.u64(meta.object_id)?;
            enc.u64(meta.record_count)
        })?;
        self.inner.lock().metas.insert(meta.trajectory_id, meta);
        Ok(())
    }

    /// Stores the stop/move episodes of a registered trajectory.
    ///
    /// # Errors
    /// Fails when the trajectory is unknown or on log I/O errors.
    pub fn put_episodes(&self, trajectory_id: u64, episodes: &[Episode]) -> Result<(), StoreError> {
        {
            let inner = self.inner.lock();
            if !inner.metas.contains_key(&trajectory_id) {
                return Err(StoreError::UnknownTrajectory(trajectory_id));
            }
        }
        self.append(|enc| {
            for (i, e) in episodes.iter().enumerate() {
                enc.u8(REC_EPISODE)?;
                enc.u64(trajectory_id)?;
                enc.u32(i as u32)?;
                enc.u8(match e.kind {
                    EpisodeKind::Stop => 0,
                    EpisodeKind::Move => 1,
                })?;
                enc.f64(e.span.start.0)?;
                enc.f64(e.span.end.0)?;
                enc.f64(e.bbox.min_x)?;
                enc.f64(e.bbox.min_y)?;
                enc.f64(e.bbox.max_x)?;
                enc.f64(e.bbox.max_y)?;
            }
            Ok(())
        })?;
        let mut inner = self.inner.lock();
        for (i, e) in episodes.iter().enumerate() {
            let row = StoredEpisode {
                trajectory_id,
                index: i as u32,
                kind: e.kind,
                span: e.span,
                bbox: e.bbox,
            };
            let idx = inner.episodes.len();
            if !row.bbox.is_empty() {
                inner.spatial.insert(row.bbox, idx);
            }
            inner.episodes.push(row);
        }
        Ok(())
    }

    /// Stores a structured semantic trajectory (replacing any previous one
    /// for the same id).
    ///
    /// # Errors
    /// Fails when the trajectory is unknown or on log I/O errors.
    pub fn put_sst(&self, sst: &StructuredSemanticTrajectory) -> Result<(), StoreError> {
        {
            let inner = self.inner.lock();
            if !inner.metas.contains_key(&sst.trajectory_id) {
                return Err(StoreError::UnknownTrajectory(sst.trajectory_id));
            }
        }
        self.append(|enc| encode_sst(enc, sst))?;
        self.inner
            .lock()
            .ssts
            .insert(sst.trajectory_id, sst.clone());
        Ok(())
    }

    /// Fetches trajectory metadata.
    pub fn get_trajectory(&self, trajectory_id: u64) -> Option<TrajectoryMeta> {
        self.inner.lock().metas.get(&trajectory_id).cloned()
    }

    /// All trajectory metadata rows, sorted by trajectory id.
    pub fn trajectory_metas(&self) -> Vec<TrajectoryMeta> {
        let inner = self.inner.lock();
        let mut out: Vec<TrajectoryMeta> = inner.metas.values().cloned().collect();
        out.sort_by_key(|m| m.trajectory_id);
        out
    }

    /// Fetches a stored structured semantic trajectory.
    pub fn get_sst(&self, trajectory_id: u64) -> Option<StructuredSemanticTrajectory> {
        self.inner.lock().ssts.get(&trajectory_id).cloned()
    }

    /// All trajectory ids of one moving object, sorted.
    pub fn trajectories_of(&self, object_id: u64) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut ids: Vec<u64> = inner
            .metas
            .values()
            .filter(|m| m.object_id == object_id)
            .map(|m| m.trajectory_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Episodes overlapping a time window.
    pub fn episodes_in_time(&self, window: TimeSpan) -> Vec<StoredEpisode> {
        let inner = self.inner.lock();
        inner
            .episodes
            .iter()
            .filter(|e| e.span.overlaps(&window))
            .cloned()
            .collect()
    }

    /// Episodes whose bounding box intersects a spatial window (served by
    /// the R\*-tree).
    pub fn episodes_in_rect(&self, window: &Rect) -> Vec<StoredEpisode> {
        let inner = self.inner.lock();
        let mut out: Vec<StoredEpisode> = inner
            .spatial
            .query(window)
            .into_iter()
            .map(|(_, &idx)| inner.episodes[idx].clone())
            .collect();
        out.sort_by_key(|e| (e.trajectory_id, e.index));
        out
    }

    /// Counts: `(trajectories, episodes, ssts)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        (inner.metas.len(), inner.episodes.len(), inner.ssts.len())
    }

    /// Trajectory ids whose semantic trajectory contains at least one
    /// tuple annotated with the given transport mode, sorted.
    pub fn ssts_with_mode(&self, mode: TransportMode) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut ids: Vec<u64> = inner
            .ssts
            .values()
            .filter(|sst| {
                sst.tuples.iter().any(|t| {
                    t.annotations
                        .iter()
                        .any(|a| matches!(a.value, AnnotationValue::Mode(m) if m == mode))
                })
            })
            .map(|sst| sst.trajectory_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Trajectory ids whose semantic trajectory contains at least one stop
    /// annotated with the given activity category, sorted.
    pub fn ssts_with_activity(&self, cat: PoiCategory) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut ids: Vec<u64> = inner
            .ssts
            .values()
            .filter(|sst| {
                sst.tuples.iter().any(|t| {
                    t.annotations
                        .iter()
                        .any(|a| matches!(a.value, AnnotationValue::Activity(c) if c == cat))
                })
            })
            .map(|sst| sst.trajectory_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Aggregate annotation statistics over all stored semantic
    /// trajectories: tuple counts per transport mode and per activity
    /// category — the "aggregative information" the paper's Analytics
    /// Layer persists in the store.
    pub fn annotation_statistics(&self) -> AnnotationStats {
        let inner = self.inner.lock();
        let mut stats = AnnotationStats::default();
        for sst in inner.ssts.values() {
            for t in &sst.tuples {
                for a in &t.annotations {
                    match a.value {
                        AnnotationValue::Mode(m) => {
                            stats.mode_tuples[mode_code(m) as usize] += 1;
                        }
                        AnnotationValue::Activity(c) => {
                            stats.activity_tuples[c.ordinal()] += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        stats
    }
}

impl SemanticTrajectoryStore {
    /// Rewrites the durable log to contain exactly the current state
    /// (dropping superseded SST versions), atomically replacing the file.
    /// No-op for in-memory stores.
    ///
    /// # Errors
    /// Fails on I/O errors; the original log is left untouched on failure.
    pub fn compact(&self) -> Result<(), StoreError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let Some(log) = &self.log else {
            return Ok(());
        };
        let tmp = path.with_extension("stlog.tmp");
        {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            let inner = self.inner.lock();
            {
                let mut enc = Encoder::new(&mut writer);
                enc.u32(MAGIC)?;
                enc.u8(VERSION)?;
                for m in inner.metas.values() {
                    enc.u8(REC_META)?;
                    enc.u64(m.trajectory_id)?;
                    enc.u64(m.object_id)?;
                    enc.u64(m.record_count)?;
                }
                for e in &inner.episodes {
                    enc.u8(REC_EPISODE)?;
                    enc.u64(e.trajectory_id)?;
                    enc.u32(e.index)?;
                    enc.u8(match e.kind {
                        EpisodeKind::Stop => 0,
                        EpisodeKind::Move => 1,
                    })?;
                    enc.f64(e.span.start.0)?;
                    enc.f64(e.span.end.0)?;
                    enc.f64(e.bbox.min_x)?;
                    enc.f64(e.bbox.min_y)?;
                    enc.f64(e.bbox.max_x)?;
                    enc.f64(e.bbox.max_y)?;
                }
                for sst in inner.ssts.values() {
                    encode_sst(&mut enc, sst)?;
                }
            }
            writer.flush()?;
            writer.get_ref().sync_data()?;
        }
        // swap in the compacted log under the writer lock so concurrent
        // appends cannot interleave with the rename
        let mut guard = log.lock();
        guard.flush()?;
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        *guard = BufWriter::new(file);
        Ok(())
    }

    /// Size of the durable log in bytes (`None` for in-memory stores).
    pub fn log_size(&self) -> Option<u64> {
        let path = self.path.as_ref()?;
        std::fs::metadata(path).ok().map(|m| m.len())
    }
}

/// Aggregate tuple counts per annotation value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnotationStats {
    /// Tuple counts per transport mode, indexed like [`TransportMode::ALL`].
    pub mode_tuples: [usize; 5],
    /// Tuple counts per activity category, indexed like
    /// [`PoiCategory::ALL`].
    pub activity_tuples: [usize; 5],
}

impl AnnotationStats {
    /// Tuple count of a transport mode.
    pub fn mode(&self, m: TransportMode) -> usize {
        self.mode_tuples[mode_code(m) as usize]
    }

    /// Tuple count of an activity category.
    pub fn activity(&self, c: PoiCategory) -> usize {
        self.activity_tuples[c.ordinal()]
    }
}

fn encode_sst(enc: &mut Encoder<impl Write>, sst: &StructuredSemanticTrajectory) -> io::Result<()> {
    enc.u8(REC_SST)?;
    enc.u64(sst.trajectory_id)?;
    enc.u64(sst.object_id)?;
    enc.seq_len(sst.tuples.len())?;
    for t in &sst.tuples {
        match &t.place {
            None => enc.u8(0)?,
            Some(p) => {
                enc.u8(1)?;
                enc.u8(match p.kind {
                    PlaceKind::Region => 0,
                    PlaceKind::Line => 1,
                    PlaceKind::Point => 2,
                })?;
                enc.u64(p.id)?;
                enc.string(&p.label)?;
            }
        }
        enc.f64(t.span.start.0)?;
        enc.f64(t.span.end.0)?;
        enc.seq_len(t.annotations.len())?;
        for a in &t.annotations {
            enc.string(&a.key)?;
            match &a.value {
                AnnotationValue::Mode(m) => {
                    enc.u8(0)?;
                    enc.u8(mode_code(*m))?;
                }
                AnnotationValue::Activity(c) => {
                    enc.u8(1)?;
                    enc.u8(c.ordinal() as u8)?;
                }
                AnnotationValue::Text(s) => {
                    enc.u8(2)?;
                    enc.string(s)?;
                }
                AnnotationValue::Number(n) => {
                    enc.u8(3)?;
                    enc.f64(*n)?;
                }
            }
        }
    }
    Ok(())
}

fn mode_code(m: TransportMode) -> u8 {
    TransportMode::ALL
        .iter()
        .position(|&x| x == m)
        .expect("mode in ALL") as u8
}

fn mode_from(code: u8) -> Result<TransportMode, StoreError> {
    TransportMode::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| StoreError::Corrupt(format!("bad mode code {code}")))
}

fn replay(path: &Path, inner: &mut Inner) -> Result<(), StoreError> {
    let file = File::open(path)?;
    let mut dec = Decoder::new(BufReader::new(file));
    let magic = dec
        .u32()
        .map_err(|_| StoreError::Corrupt("missing header".to_string()))?;
    if magic != MAGIC {
        return Err(StoreError::Corrupt("bad magic".to_string()));
    }
    let version = dec.u8()?;
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    loop {
        let tag = match dec.u8() {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        };
        match tag {
            REC_META => {
                let trajectory_id = dec.u64()?;
                let object_id = dec.u64()?;
                let record_count = dec.u64()?;
                inner.metas.insert(
                    trajectory_id,
                    TrajectoryMeta {
                        trajectory_id,
                        object_id,
                        record_count,
                    },
                );
            }
            REC_EPISODE => {
                let trajectory_id = dec.u64()?;
                let index = dec.u32()?;
                let kind = match dec.u8()? {
                    0 => EpisodeKind::Stop,
                    1 => EpisodeKind::Move,
                    k => return Err(StoreError::Corrupt(format!("bad episode kind {k}"))),
                };
                let start = dec.f64()?;
                let end = dec.f64()?;
                if end < start {
                    return Err(StoreError::Corrupt("episode span reversed".to_string()));
                }
                let bbox = Rect {
                    min_x: dec.f64()?,
                    min_y: dec.f64()?,
                    max_x: dec.f64()?,
                    max_y: dec.f64()?,
                };
                let row = StoredEpisode {
                    trajectory_id,
                    index,
                    kind,
                    span: TimeSpan::new(Timestamp(start), Timestamp(end)),
                    bbox,
                };
                let idx = inner.episodes.len();
                if !row.bbox.is_empty() {
                    inner.spatial.insert(row.bbox, idx);
                }
                inner.episodes.push(row);
            }
            REC_SST => {
                let trajectory_id = dec.u64()?;
                let object_id = dec.u64()?;
                let n = dec.seq_len()?;
                let mut tuples =
                    Vec::with_capacity(seq_capacity(n, std::mem::size_of::<SemanticTuple>()));
                for _ in 0..n {
                    let place = match dec.u8()? {
                        0 => None,
                        1 => {
                            let kind = match dec.u8()? {
                                0 => PlaceKind::Region,
                                1 => PlaceKind::Line,
                                2 => PlaceKind::Point,
                                k => {
                                    return Err(StoreError::Corrupt(format!("bad place kind {k}")))
                                }
                            };
                            let id = dec.u64()?;
                            let label = dec.string()?;
                            Some(PlaceRef::new(kind, id, label))
                        }
                        k => return Err(StoreError::Corrupt(format!("bad place tag {k}"))),
                    };
                    let start = dec.f64()?;
                    let end = dec.f64()?;
                    if end < start {
                        return Err(StoreError::Corrupt("tuple span reversed".to_string()));
                    }
                    let n_ann = dec.seq_len()?;
                    let mut annotations =
                        Vec::with_capacity(seq_capacity(n_ann, std::mem::size_of::<Annotation>()));
                    for _ in 0..n_ann {
                        let key = dec.string()?;
                        let value = match dec.u8()? {
                            0 => AnnotationValue::Mode(mode_from(dec.u8()?)?),
                            1 => {
                                let ord = dec.u8()? as usize;
                                let cat = PoiCategory::ALL.get(ord).copied().ok_or_else(|| {
                                    StoreError::Corrupt(format!("bad category {ord}"))
                                })?;
                                AnnotationValue::Activity(cat)
                            }
                            2 => AnnotationValue::Text(dec.string()?),
                            3 => AnnotationValue::Number(dec.f64()?),
                            k => {
                                return Err(StoreError::Corrupt(format!("bad annotation tag {k}")))
                            }
                        };
                        annotations.push(Annotation::new(key, value));
                    }
                    tuples.push(SemanticTuple {
                        place,
                        span: TimeSpan::new(Timestamp(start), Timestamp(end)),
                        annotations,
                    });
                }
                inner.ssts.insert(
                    trajectory_id,
                    StructuredSemanticTrajectory {
                        object_id,
                        trajectory_id,
                        tuples,
                    },
                );
            }
            t => return Err(StoreError::Corrupt(format!("unknown record tag {t}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::Point;

    fn episode(kind: EpisodeKind, t0: f64, t1: f64, x: f64) -> Episode {
        Episode {
            kind,
            start: 0,
            end: 1,
            span: TimeSpan::new(Timestamp(t0), Timestamp(t1)),
            bbox: Rect::new(x, 0.0, x + 10.0, 10.0),
            center: Point::new(x + 5.0, 5.0),
        }
    }

    fn sample_sst(id: u64) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 9,
            trajectory_id: id,
            tuples: vec![
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Region, 4, "home")),
                    span: TimeSpan::new(Timestamp(0.0), Timestamp(100.0)),
                    annotations: vec![Annotation::activity(PoiCategory::PersonLife)],
                },
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Line, 11, "Rue R4")),
                    span: TimeSpan::new(Timestamp(100.0), Timestamp(200.0)),
                    annotations: vec![
                        Annotation::mode(TransportMode::Metro),
                        Annotation::new("avg_speed", AnnotationValue::Number(15.5)),
                        Annotation::new("note", AnnotationValue::Text("rush hour".to_string())),
                    ],
                },
                SemanticTuple {
                    place: None,
                    span: TimeSpan::new(Timestamp(200.0), Timestamp(300.0)),
                    annotations: vec![],
                },
            ],
        }
    }

    #[test]
    fn in_memory_crud() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 9,
                record_count: 500,
            })
            .unwrap();
        store
            .put_episodes(1, &[episode(EpisodeKind::Stop, 0.0, 100.0, 0.0)])
            .unwrap();
        store.put_sst(&sample_sst(1)).unwrap();

        assert_eq!(store.counts(), (1, 1, 1));
        assert_eq!(store.get_trajectory(1).unwrap().record_count, 500);
        assert_eq!(store.get_sst(1).unwrap(), sample_sst(1));
        assert_eq!(store.trajectories_of(9), vec![1]);
        assert!(store.trajectories_of(404).is_empty());
    }

    #[test]
    fn unknown_trajectory_rejected() {
        let store = SemanticTrajectoryStore::in_memory();
        let err = store
            .put_episodes(99, &[episode(EpisodeKind::Stop, 0.0, 1.0, 0.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::UnknownTrajectory(99)));
        assert!(store.put_sst(&sample_sst(99)).is_err());
    }

    #[test]
    fn time_and_space_queries() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 10,
            })
            .unwrap();
        store
            .put_episodes(
                1,
                &[
                    episode(EpisodeKind::Stop, 0.0, 100.0, 0.0),
                    episode(EpisodeKind::Move, 100.0, 200.0, 500.0),
                    episode(EpisodeKind::Stop, 200.0, 300.0, 1_000.0),
                ],
            )
            .unwrap();

        let in_time = store.episodes_in_time(TimeSpan::new(Timestamp(150.0), Timestamp(250.0)));
        assert_eq!(in_time.len(), 2);

        let in_space = store.episodes_in_rect(&Rect::new(400.0, 0.0, 600.0, 10.0));
        assert_eq!(in_space.len(), 1);
        assert_eq!(in_space[0].kind, EpisodeKind::Move);
    }

    #[test]
    fn durable_roundtrip() {
        let dir = std::env::temp_dir().join(format!("semitri-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.stlog");
        let _ = std::fs::remove_file(&path);

        {
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: 7,
                    object_id: 2,
                    record_count: 42,
                })
                .unwrap();
            store
                .put_episodes(
                    7,
                    &[
                        episode(EpisodeKind::Stop, 0.0, 60.0, 0.0),
                        episode(EpisodeKind::Move, 60.0, 120.0, 100.0),
                    ],
                )
                .unwrap();
            store.put_sst(&sample_sst(7)).unwrap();
        }

        // reopen and verify replay
        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        assert_eq!(store.counts(), (1, 2, 1));
        assert_eq!(store.get_sst(7).unwrap(), sample_sst(7));
        assert_eq!(store.get_trajectory(7).unwrap().record_count, 42);
        let eps = store.episodes_in_time(TimeSpan::new(Timestamp(0.0), Timestamp(30.0)));
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Stop);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_log_detected() {
        let dir = std::env::temp_dir().join(format!("semitri-store-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.stlog");
        std::fs::write(&path, b"not a store log at all").unwrap();
        let err = SemanticTrajectoryStore::open_durable(&path)
            .err()
            .expect("corrupt");
        assert!(matches!(err, StoreError::Corrupt(_)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sst_overwrite_replaces() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 1,
            })
            .unwrap();
        store.put_sst(&sample_sst(1)).unwrap();
        let mut v2 = sample_sst(1);
        v2.tuples.truncate(1);
        store.put_sst(&v2).unwrap();
        assert_eq!(store.get_sst(1).unwrap().len(), 1);
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use semitri_geo::Point;

    fn sample_sst(id: u64, tuples: usize) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: id,
            tuples: (0..tuples)
                .map(|i| SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Region, i as u64, "cell")),
                    span: TimeSpan::new(Timestamp(i as f64), Timestamp(i as f64 + 1.0)),
                    annotations: vec![Annotation::mode(TransportMode::Walk)],
                })
                .collect(),
        }
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let dir = std::env::temp_dir().join(format!("semitri-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.stlog");
        let _ = std::fs::remove_file(&path);

        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 100,
            })
            .unwrap();
        // overwrite the same SST many times: the log accumulates versions
        for k in 1..=20 {
            store.put_sst(&sample_sst(1, k)).unwrap();
        }
        let before = store.log_size().unwrap();
        store.compact().unwrap();
        let after = store.log_size().unwrap();
        assert!(after < before, "compaction {before} -> {after}");

        // state survives compaction and subsequent appends
        store.put_sst(&sample_sst(1, 3)).unwrap();
        drop(store);
        let reopened = SemanticTrajectoryStore::open_durable(&path).unwrap();
        assert_eq!(reopened.get_sst(1).unwrap().len(), 3);
        assert_eq!(reopened.counts().0, 1);

        let _ = Point::ORIGIN;
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_in_memory_is_noop() {
        let store = SemanticTrajectoryStore::in_memory();
        store.compact().unwrap();
        assert_eq!(store.log_size(), None);
    }
}

#[cfg(test)]
mod annotation_query_tests {
    use super::*;
    use semitri_geo::Point;

    fn sst(id: u64, mode: TransportMode, act: PoiCategory) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: id,
            tuples: vec![
                SemanticTuple {
                    place: None,
                    span: TimeSpan::new(Timestamp(0.0), Timestamp(10.0)),
                    annotations: vec![Annotation::mode(mode)],
                },
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Point, 3, "poi")),
                    span: TimeSpan::new(Timestamp(10.0), Timestamp(20.0)),
                    annotations: vec![Annotation::activity(act)],
                },
            ],
        }
    }

    fn store_with(ssts: &[StructuredSemanticTrajectory]) -> SemanticTrajectoryStore {
        let store = SemanticTrajectoryStore::in_memory();
        for s in ssts {
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: s.trajectory_id,
                    object_id: s.object_id,
                    record_count: 10,
                })
                .unwrap();
            store.put_sst(s).unwrap();
        }
        let _ = Point::ORIGIN;
        store
    }

    #[test]
    fn query_by_mode_and_activity() {
        let store = store_with(&[
            sst(1, TransportMode::Metro, PoiCategory::Feedings),
            sst(2, TransportMode::Walk, PoiCategory::ItemSale),
            sst(3, TransportMode::Metro, PoiCategory::ItemSale),
        ]);
        assert_eq!(store.ssts_with_mode(TransportMode::Metro), vec![1, 3]);
        assert_eq!(store.ssts_with_mode(TransportMode::Bus), Vec::<u64>::new());
        assert_eq!(store.ssts_with_activity(PoiCategory::ItemSale), vec![2, 3]);
    }

    #[test]
    fn aggregate_statistics() {
        let store = store_with(&[
            sst(1, TransportMode::Metro, PoiCategory::Feedings),
            sst(2, TransportMode::Metro, PoiCategory::ItemSale),
        ]);
        let stats = store.annotation_statistics();
        assert_eq!(stats.mode(TransportMode::Metro), 2);
        assert_eq!(stats.mode(TransportMode::Walk), 0);
        assert_eq!(stats.activity(PoiCategory::Feedings), 1);
        assert_eq!(stats.activity(PoiCategory::ItemSale), 1);
    }

    #[test]
    fn statistics_empty_store() {
        let store = SemanticTrajectoryStore::in_memory();
        let stats = store.annotation_statistics();
        assert_eq!(stats, AnnotationStats::default());
    }
}
