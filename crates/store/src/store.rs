//! The Semantic Trajectory Store.
//!
//! Tables mirror the paper's PostGIS schema (§5.1): trajectory metadata,
//! stop/move episodes and the final structured semantic trajectories,
//! queryable by object, time range and space.
//!
//! Since the columnar engine landed, the in-memory layout is
//! warehouse-style rather than row-structs:
//!
//! * raw GPS fixes compress into [`crate::fixcol`] blocks
//!   (delta-of-delta timestamps, centimeter fixed-point positions,
//!   per-block min/max + bbox summaries);
//! * episodes live in plain columns with per-block summaries, and time /
//!   rect queries skip whole blocks the summary rules out;
//! * semantic-tuple annotation layers live in the bitpacked
//!   [`crate::matrix::SemanticMatrix`] streams, with the full SST body
//!   retained as a compact codec blob for exact reconstruction;
//! * warehouse aggregates ([`crate::olap`]) scan the compressed columns
//!   directly.
//!
//! Two write modes:
//!
//! * **in-memory** — everything lives in the process;
//! * **durable** — every write batch is also appended to a log file and
//!   flushed with `sync_data`, reproducing the realistic "storing
//!   dominates computing" latency profile of Fig. 17. Version-1 logs
//!   (the row-format era) still replay.

use crate::codec::{seq_capacity, Decoder, Encoder};
use crate::column::PackedVec;
use crate::fixcol::{FixBlock, FixColumnStore, BLOCK_LEN};
use crate::matrix::{SemanticMatrix, TupleLayers};
use crate::olap::{LanduseHourCounts, ModeShareByClass, PoiVisit};
use parking_lot::Mutex;
use semitri_core::model::{
    Annotation, AnnotationValue, PlaceKind, PlaceRef, SemanticTuple, StructuredSemanticTrajectory,
};
use semitri_core::pipeline::PipelineOutput;
use semitri_data::{
    GpsRecord, LanduseCategory, PoiCategory, RoadClass, RoadNetwork, TransportMode,
};
use semitri_episodes::{Episode, EpisodeKind};
use semitri_geo::{Rect, TimeSpan, Timestamp};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// The log file is corrupt or from an incompatible version.
    Corrupt(String),
    /// A write referenced a trajectory that was never registered.
    UnknownTrajectory(u64),
    /// A layered write's per-tuple rows did not align with the SST.
    LayerMismatch {
        /// Tuples in the SST.
        expected: usize,
        /// Layer rows supplied.
        got: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store log: {m}"),
            StoreError::UnknownTrajectory(id) => {
                write!(f, "unknown trajectory id {id}")
            }
            StoreError::LayerMismatch { expected, got } => {
                write!(f, "layer rows misaligned: {got} rows for {expected} tuples")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Trajectory metadata row.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryMeta {
    /// Trajectory id (primary key).
    pub trajectory_id: u64,
    /// Moving object id.
    pub object_id: u64,
    /// Number of raw GPS records the trajectory had.
    pub record_count: u64,
}

/// Episode row: a stop/move episode of a stored trajectory, materialized
/// from the episode columns on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEpisode {
    /// Owning trajectory.
    pub trajectory_id: u64,
    /// Position within the trajectory's episode list.
    pub index: u32,
    /// Stop or move.
    pub kind: EpisodeKind,
    /// Entering/leaving times.
    pub span: TimeSpan,
    /// Spatial extent.
    pub bbox: Rect,
}

const MAGIC: u32 = 0x5357_5254; // "SWRT"
/// Current log version (2 = columnar records).
const VERSION: u8 = 2;

const REC_META: u8 = 1;
/// v1 single-episode record (replayed, no longer written).
const REC_EPISODE: u8 = 2;
const REC_SST: u8 = 3;
/// v2: one compressed fix-column block.
const REC_FIXBLOCK: u8 = 4;
/// v2: per-tuple layer rows for a trajectory's SST.
const REC_LAYERS: u8 = 5;
/// v2: episode batch with record ranges.
const REC_EPISODES2: u8 = 6;

/// Largest fix-block payload the replay path will accept; an honest
/// block is ≤ ~6.5 KiB even with every column in raw-f64 fallback.
const MAX_FIXBLOCK_BYTES: usize = 64 * 1024;

/// Episodes per column block (one scan-skip summary each).
const EP_BLOCK: usize = 256;

#[derive(Debug, Clone, Copy)]
struct EpSummary {
    t_min: f64,
    t_max: f64,
    bbox: Rect,
}

/// Plain columns over all stored episodes, with one min/max summary per
/// [`EP_BLOCK`] rows for block skipping.
struct EpisodeColumns {
    traj: Vec<u64>,
    index: Vec<u32>,
    kind: PackedVec,
    t_start: Vec<f64>,
    t_end: Vec<f64>,
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
    rec_start: Vec<u32>,
    rec_end: Vec<u32>,
    summaries: Vec<EpSummary>,
}

impl Default for EpisodeColumns {
    fn default() -> Self {
        Self {
            traj: Vec::new(),
            index: Vec::new(),
            kind: PackedVec::new(1),
            t_start: Vec::new(),
            t_end: Vec::new(),
            min_x: Vec::new(),
            min_y: Vec::new(),
            max_x: Vec::new(),
            max_y: Vec::new(),
            rec_start: Vec::new(),
            rec_end: Vec::new(),
            summaries: Vec::new(),
        }
    }
}

impl EpisodeColumns {
    fn len(&self) -> usize {
        self.traj.len()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        traj: u64,
        index: u32,
        kind: EpisodeKind,
        span: TimeSpan,
        bbox: Rect,
        rec_start: u32,
        rec_end: u32,
    ) {
        if self.len() % EP_BLOCK == 0 {
            self.summaries.push(EpSummary {
                t_min: f64::INFINITY,
                t_max: f64::NEG_INFINITY,
                bbox: Rect::EMPTY,
            });
        }
        let s = self.summaries.last_mut().expect("summary pushed");
        s.t_min = s.t_min.min(span.start.0);
        s.t_max = s.t_max.max(span.end.0);
        if !bbox.is_empty() {
            s.bbox = s.bbox.union(&bbox);
        }
        self.traj.push(traj);
        self.index.push(index);
        self.kind.push(match kind {
            EpisodeKind::Stop => 0,
            EpisodeKind::Move => 1,
        });
        self.t_start.push(span.start.0);
        self.t_end.push(span.end.0);
        self.min_x.push(bbox.min_x);
        self.min_y.push(bbox.min_y);
        self.max_x.push(bbox.max_x);
        self.max_y.push(bbox.max_y);
        self.rec_start.push(rec_start);
        self.rec_end.push(rec_end);
    }

    fn row(&self, i: usize) -> StoredEpisode {
        StoredEpisode {
            trajectory_id: self.traj[i],
            index: self.index[i],
            kind: if self.kind.get(i) == 0 {
                EpisodeKind::Stop
            } else {
                EpisodeKind::Move
            },
            span: TimeSpan::new(Timestamp(self.t_start[i]), Timestamp(self.t_end[i])),
            bbox: Rect {
                min_x: self.min_x[i],
                min_y: self.min_y[i],
                max_x: self.max_x[i],
                max_y: self.max_y[i],
            },
        }
    }

    /// Visits rows overlapping the time window in storage order,
    /// returning `(blocks checked, blocks skipped)`.
    fn for_each_in_time(&self, window: &TimeSpan, mut f: impl FnMut(StoredEpisode)) -> (u64, u64) {
        let mut checked = 0u64;
        let mut skipped = 0u64;
        for (bi, s) in self.summaries.iter().enumerate() {
            checked += 1;
            if s.t_min > window.end.0 || s.t_max < window.start.0 {
                skipped += 1;
                continue;
            }
            let lo = bi * EP_BLOCK;
            let hi = (lo + EP_BLOCK).min(self.len());
            for i in lo..hi {
                if self.t_start[i] <= window.end.0 && window.start.0 <= self.t_end[i] {
                    f(self.row(i));
                }
            }
        }
        (checked, skipped)
    }

    /// Visits rows whose bbox intersects the window in storage order,
    /// returning `(blocks checked, blocks skipped)`.
    fn for_each_in_rect(&self, window: &Rect, mut f: impl FnMut(StoredEpisode)) -> (u64, u64) {
        let mut checked = 0u64;
        let mut skipped = 0u64;
        for (bi, s) in self.summaries.iter().enumerate() {
            checked += 1;
            if !s.bbox.intersects(window) {
                skipped += 1;
                continue;
            }
            let lo = bi * EP_BLOCK;
            let hi = (lo + EP_BLOCK).min(self.len());
            for i in lo..hi {
                if self.min_x[i] <= window.max_x
                    && window.min_x <= self.max_x[i]
                    && self.min_y[i] <= window.max_y
                    && window.min_y <= self.max_y[i]
                    && self.min_x[i] <= self.max_x[i]
                    && self.min_y[i] <= self.max_y[i]
                {
                    f(self.row(i));
                }
            }
        }
        (checked, skipped)
    }
}

#[derive(Default)]
struct Inner {
    metas: HashMap<u64, TrajectoryMeta>,
    episodes: EpisodeColumns,
    fixes: FixColumnStore,
    matrix: SemanticMatrix,
}

#[derive(Default)]
struct Counters {
    time_queries: AtomicU64,
    rect_queries: AtomicU64,
    olap_queries: AtomicU64,
    blocks_checked: AtomicU64,
    blocks_skipped: AtomicU64,
}

/// Point-in-time view of the store's storage and query counters —
/// polled by `semitri-obs` for the `store.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreMetricsSnapshot {
    /// Registered trajectories.
    pub trajectories: u64,
    /// Stored episodes.
    pub episodes: u64,
    /// Stored (alive) semantic trajectories.
    pub ssts: u64,
    /// Raw GPS fixes held in fix-column blocks.
    pub fix_count: u64,
    /// Fix-column blocks written.
    pub fix_blocks: u64,
    /// Bytes the fixes would occupy in the row layout.
    pub fix_raw_bytes: u64,
    /// Bytes of compressed fix payload actually held.
    pub fix_compressed_bytes: u64,
    /// Alive semantic tuples in the matrix.
    pub live_tuples: u64,
    /// Tombstoned tuples awaiting compaction.
    pub dead_tuples: u64,
    /// Bits held by the bitpacked label streams.
    pub label_bits: u64,
    /// Time-window episode queries served.
    pub time_queries: u64,
    /// Spatial episode queries served.
    pub rect_queries: u64,
    /// OLAP aggregate scans served.
    pub olap_queries: u64,
    /// Episode blocks examined by queries.
    pub ep_blocks_checked: u64,
    /// Episode blocks skipped via their min/max summary.
    pub ep_blocks_skipped: u64,
    /// Durable log size in bytes (0 when in-memory).
    pub log_bytes: u64,
}

impl StoreMetricsSnapshot {
    /// Compressed bytes per stored fix (0 when no fixes are stored).
    pub fn bytes_per_fix(&self) -> f64 {
        if self.fix_count == 0 {
            0.0
        } else {
            self.fix_compressed_bytes as f64 / self.fix_count as f64
        }
    }

    /// Label-stream bytes per alive tuple (all layers together).
    pub fn label_bytes_per_tuple(&self) -> f64 {
        let tuples = self.live_tuples + self.dead_tuples;
        if tuples == 0 {
            0.0
        } else {
            self.label_bits as f64 / 8.0 / tuples as f64
        }
    }

    /// Fraction of examined episode blocks skipped via summaries.
    pub fn block_skip_rate(&self) -> f64 {
        if self.ep_blocks_checked == 0 {
            0.0
        } else {
            self.ep_blocks_skipped as f64 / self.ep_blocks_checked as f64
        }
    }
}

/// The embedded semantic trajectory store.
///
/// ```
/// use semitri_store::{SemanticTrajectoryStore, TrajectoryMeta};
///
/// let store = SemanticTrajectoryStore::in_memory();
/// store.put_trajectory(TrajectoryMeta {
///     trajectory_id: 1,
///     object_id: 9,
///     record_count: 1_000,
/// }).unwrap();
/// assert_eq!(store.trajectories_of(9), vec![1]);
/// assert_eq!(store.counts(), (1, 0, 0));
/// ```
pub struct SemanticTrajectoryStore {
    inner: Mutex<Inner>,
    log: Option<Mutex<BufWriter<File>>>,
    path: Option<PathBuf>,
    counters: Counters,
}

impl SemanticTrajectoryStore {
    /// Creates an empty in-memory store.
    pub fn in_memory() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            log: None,
            path: None,
            counters: Counters::default(),
        }
    }

    /// Opens (or creates) a durable store backed by a synced log file.
    /// Existing contents are replayed into memory; version-1 (row
    /// format) logs migrate transparently.
    ///
    /// # Errors
    /// Fails on I/O errors or a corrupt log.
    pub fn open_durable(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut inner = Inner::default();
        if path.exists() {
            replay(&path, &mut inner)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            let mut enc = Encoder::new(&mut file);
            enc.u32(MAGIC)?;
            enc.u8(VERSION)?;
            file.sync_data()?;
        }
        Ok(Self {
            inner: Mutex::new(inner),
            log: Some(Mutex::new(BufWriter::new(file))),
            path: Some(path),
            counters: Counters::default(),
        })
    }

    /// The backing file path, when durable.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn append(
        &self,
        write: impl FnOnce(&mut Encoder<&mut BufWriter<File>>) -> io::Result<()>,
    ) -> Result<(), StoreError> {
        if let Some(log) = &self.log {
            let mut guard = log.lock();
            {
                let mut enc = Encoder::new(&mut *guard);
                write(&mut enc)?;
            }
            guard.flush()?;
            guard.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Registers a trajectory's metadata.
    ///
    /// # Errors
    /// Fails only on durable-log I/O errors.
    pub fn put_trajectory(&self, meta: TrajectoryMeta) -> Result<(), StoreError> {
        self.append(|enc| {
            enc.u8(REC_META)?;
            enc.u64(meta.trajectory_id)?;
            enc.u64(meta.object_id)?;
            enc.u64(meta.record_count)
        })?;
        self.inner.lock().metas.insert(meta.trajectory_id, meta);
        Ok(())
    }

    fn require_trajectory(&self, trajectory_id: u64) -> Result<(), StoreError> {
        if !self.inner.lock().metas.contains_key(&trajectory_id) {
            return Err(StoreError::UnknownTrajectory(trajectory_id));
        }
        Ok(())
    }

    /// Stores the stop/move episodes of a registered trajectory,
    /// including each episode's record range (the CSR episode →
    /// record-range index).
    ///
    /// # Errors
    /// Fails when the trajectory is unknown or on log I/O errors.
    pub fn put_episodes(&self, trajectory_id: u64, episodes: &[Episode]) -> Result<(), StoreError> {
        self.require_trajectory(trajectory_id)?;
        self.append(|enc| {
            enc.u8(REC_EPISODES2)?;
            enc.u64(trajectory_id)?;
            enc.seq_len(episodes.len())?;
            for (i, e) in episodes.iter().enumerate() {
                enc.u32(i as u32)?;
                enc.u8(match e.kind {
                    EpisodeKind::Stop => 0,
                    EpisodeKind::Move => 1,
                })?;
                enc.f64(e.span.start.0)?;
                enc.f64(e.span.end.0)?;
                enc.f64(e.bbox.min_x)?;
                enc.f64(e.bbox.min_y)?;
                enc.f64(e.bbox.max_x)?;
                enc.f64(e.bbox.max_y)?;
                enc.u32(e.start.min(u32::MAX as usize) as u32)?;
                enc.u32(e.end.min(u32::MAX as usize) as u32)?;
            }
            Ok(())
        })?;
        let mut inner = self.inner.lock();
        for (i, e) in episodes.iter().enumerate() {
            inner.episodes.push(
                trajectory_id,
                i as u32,
                e.kind,
                e.span,
                e.bbox,
                e.start.min(u32::MAX as usize) as u32,
                e.end.min(u32::MAX as usize) as u32,
            );
        }
        Ok(())
    }

    /// Stores a trajectory's raw GPS fixes in compressed fix-column
    /// blocks. Timestamps round-trip exactly; positions round-trip to
    /// within [`crate::fixcol::POSITION_QUANTUM`]`/2`.
    ///
    /// # Errors
    /// Fails when the trajectory is unknown or on log I/O errors.
    pub fn put_fixes(&self, trajectory_id: u64, fixes: &[GpsRecord]) -> Result<(), StoreError> {
        if fixes.is_empty() {
            return Ok(());
        }
        self.require_trajectory(trajectory_id)?;
        let blocks: Vec<FixBlock> = fixes.chunks(BLOCK_LEN).map(FixBlock::encode).collect();
        self.append(|enc| {
            for b in &blocks {
                enc.u8(REC_FIXBLOCK)?;
                enc.u64(trajectory_id)?;
                enc.bytes(&b.bytes)?;
            }
            Ok(())
        })?;
        let mut inner = self.inner.lock();
        for b in blocks {
            inner.fixes.push_block(trajectory_id, b);
        }
        Ok(())
    }

    /// Decodes a trajectory's stored fixes, in storage order.
    ///
    /// # Errors
    /// Fails when a stored block is corrupt.
    pub fn get_fixes(&self, trajectory_id: u64) -> Result<Vec<GpsRecord>, StoreError> {
        Ok(self.inner.lock().fixes.fixes_of(trajectory_id)?)
    }

    /// Stores a structured semantic trajectory (replacing any previous
    /// one for the same id). Annotation layers derive from the tuples
    /// alone; use [`SemanticTrajectoryStore::put_sst_with_layers`] or
    /// [`SemanticTrajectoryStore::put_annotated`] to attach road-class /
    /// landuse labels and record counts.
    ///
    /// # Errors
    /// Fails when the trajectory is unknown or on log I/O errors.
    pub fn put_sst(&self, sst: &StructuredSemanticTrajectory) -> Result<(), StoreError> {
        self.put_sst_inner(sst, None)
    }

    /// Stores a structured semantic trajectory together with explicit
    /// per-tuple layer rows (episode kind, road class, landuse, record
    /// count) for the compressed semantic matrix.
    ///
    /// # Errors
    /// Fails when the trajectory is unknown, the layers are misaligned,
    /// or on log I/O errors.
    pub fn put_sst_with_layers(
        &self,
        sst: &StructuredSemanticTrajectory,
        layers: &[TupleLayers],
    ) -> Result<(), StoreError> {
        if layers.len() != sst.tuples.len() {
            return Err(StoreError::LayerMismatch {
                expected: sst.tuples.len(),
                got: layers.len(),
            });
        }
        self.put_sst_inner(sst, Some(layers))
    }

    fn put_sst_inner(
        &self,
        sst: &StructuredSemanticTrajectory,
        layers: Option<&[TupleLayers]>,
    ) -> Result<(), StoreError> {
        self.require_trajectory(sst.trajectory_id)?;
        let mut blob = Vec::new();
        {
            let mut enc = Encoder::new(&mut blob);
            encode_sst_body(&mut enc, sst)?;
        }
        self.append(|enc| {
            enc.u8(REC_SST)?;
            enc.raw(&blob)?;
            if let Some(layers) = layers {
                enc.u8(REC_LAYERS)?;
                enc.u64(sst.trajectory_id)?;
                enc.seq_len(layers.len())?;
                for l in layers {
                    encode_layer_row(enc, l)?;
                }
            }
            Ok(())
        })?;
        let default_layers;
        let layers = match layers {
            Some(l) => l,
            None => {
                default_layers = default_layer_rows(sst);
                &default_layers
            }
        };
        self.inner.lock().matrix.insert(sst, layers, blob);
        Ok(())
    }

    /// Ingests one pipeline output end to end: metadata, compressed
    /// fixes, episodes with record ranges, and the SST with per-tuple
    /// layer rows derived from the pipeline's matched routes and region
    /// tuples (see [`derive_tuple_layers`]).
    ///
    /// # Errors
    /// Fails on log I/O errors.
    pub fn put_annotated(&self, out: &PipelineOutput, net: &RoadNetwork) -> Result<(), StoreError> {
        let records = out.cleaned.records();
        self.put_trajectory(TrajectoryMeta {
            trajectory_id: out.cleaned.trajectory_id,
            object_id: out.cleaned.object_id,
            record_count: records.len() as u64,
        })?;
        self.put_fixes(out.cleaned.trajectory_id, records)?;
        self.put_episodes(out.cleaned.trajectory_id, &out.episodes)?;
        let layers = derive_tuple_layers(out, net);
        self.put_sst_with_layers(&out.sst, &layers)
    }

    /// Fetches trajectory metadata.
    pub fn get_trajectory(&self, trajectory_id: u64) -> Option<TrajectoryMeta> {
        self.inner.lock().metas.get(&trajectory_id).cloned()
    }

    /// All trajectory metadata rows, sorted by trajectory id.
    pub fn trajectory_metas(&self) -> Vec<TrajectoryMeta> {
        let inner = self.inner.lock();
        let mut out: Vec<TrajectoryMeta> = inner.metas.values().cloned().collect();
        out.sort_by_key(|m| m.trajectory_id);
        out
    }

    /// Fetches a stored structured semantic trajectory, reconstructed
    /// from its codec blob.
    pub fn get_sst(&self, trajectory_id: u64) -> Option<StructuredSemanticTrajectory> {
        let inner = self.inner.lock();
        let blob = inner.matrix.blob_of(trajectory_id)?;
        let mut dec = Decoder::new(blob);
        decode_sst_body(&mut dec).ok()
    }

    /// All trajectory ids of one moving object, sorted.
    pub fn trajectories_of(&self, object_id: u64) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut ids: Vec<u64> = inner
            .metas
            .values()
            .filter(|m| m.object_id == object_id)
            .map(|m| m.trajectory_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn note_blocks(&self, counts: (u64, u64)) {
        self.counters
            .blocks_checked
            .fetch_add(counts.0, Ordering::Relaxed);
        self.counters
            .blocks_skipped
            .fetch_add(counts.1, Ordering::Relaxed);
    }

    /// Episodes overlapping a time window.
    pub fn episodes_in_time(&self, window: TimeSpan) -> Vec<StoredEpisode> {
        let mut out = Vec::new();
        self.episodes_in_time_with(window, &mut out);
        out
    }

    /// Like [`SemanticTrajectoryStore::episodes_in_time`], reusing a
    /// caller-owned buffer (cleared first) so repeated queries do not
    /// allocate.
    pub fn episodes_in_time_with(&self, window: TimeSpan, out: &mut Vec<StoredEpisode>) {
        out.clear();
        self.for_each_episode_in_time(window, |e| out.push(e.clone()));
    }

    /// Visits episodes overlapping a time window in storage order
    /// without materializing a result vector.
    pub fn for_each_episode_in_time(&self, window: TimeSpan, mut f: impl FnMut(&StoredEpisode)) {
        self.counters.time_queries.fetch_add(1, Ordering::Relaxed);
        if window.end.0 < window.start.0 {
            return; // degenerate (inverted) window matches nothing
        }
        let inner = self.inner.lock();
        let counts = inner.episodes.for_each_in_time(&window, |e| f(&e));
        drop(inner);
        self.note_blocks(counts);
    }

    /// Episodes whose bounding box intersects a spatial window (served
    /// by the block-skip scan over the episode columns), sorted by
    /// `(trajectory, index)`.
    pub fn episodes_in_rect(&self, window: &Rect) -> Vec<StoredEpisode> {
        let mut out = Vec::new();
        self.episodes_in_rect_with(window, &mut out);
        out
    }

    /// Like [`SemanticTrajectoryStore::episodes_in_rect`], reusing a
    /// caller-owned buffer (cleared first).
    pub fn episodes_in_rect_with(&self, window: &Rect, out: &mut Vec<StoredEpisode>) {
        out.clear();
        self.for_each_episode_in_rect(window, |e| out.push(e.clone()));
        out.sort_by_key(|e| (e.trajectory_id, e.index));
    }

    /// Visits episodes intersecting a spatial window in storage order
    /// without materializing a result vector.
    pub fn for_each_episode_in_rect(&self, window: &Rect, mut f: impl FnMut(&StoredEpisode)) {
        self.counters.rect_queries.fetch_add(1, Ordering::Relaxed);
        if window.is_empty() {
            return; // degenerate window matches nothing
        }
        let inner = self.inner.lock();
        let counts = inner.episodes.for_each_in_rect(window, |e| f(&e));
        drop(inner);
        self.note_blocks(counts);
    }

    /// Counts: `(trajectories, episodes, ssts)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        (
            inner.metas.len(),
            inner.episodes.len(),
            inner.matrix.sst_count(),
        )
    }

    /// Trajectory ids whose semantic trajectory contains at least one
    /// tuple annotated with the given transport mode, sorted. Scans the
    /// bitpacked mode stream.
    pub fn ssts_with_mode(&self, mode: TransportMode) -> Vec<u64> {
        self.inner.lock().matrix.ssts_with_mode(mode)
    }

    /// Trajectory ids whose semantic trajectory contains at least one
    /// stop annotated with the given activity category, sorted.
    pub fn ssts_with_activity(&self, cat: PoiCategory) -> Vec<u64> {
        self.inner.lock().matrix.ssts_with_activity(cat)
    }

    /// Aggregate annotation statistics over all stored semantic
    /// trajectories: tuple counts per transport mode and per activity
    /// category — the "aggregative information" the paper's Analytics
    /// Layer persists in the store.
    pub fn annotation_statistics(&self) -> AnnotationStats {
        self.inner.lock().matrix.annotation_statistics()
    }

    /// OLAP: stop tuples per landuse category per hour of day, scanned
    /// from the compressed kind/landuse streams and the span column.
    pub fn stops_per_landuse_hour(&self) -> LanduseHourCounts {
        self.counters.olap_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().matrix.stops_per_landuse_hour()
    }

    /// OLAP: record-weighted transport-mode share per road class.
    pub fn mode_share_by_road_class(&self) -> ModeShareByClass {
        self.counters.olap_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().matrix.mode_share_by_road_class()
    }

    /// OLAP: top-`n` POIs ranked by stop-tuple visits.
    pub fn top_poi_visits(&self, n: usize) -> Vec<PoiVisit> {
        self.counters.olap_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().matrix.top_poi_visits(n)
    }

    /// Publishes the current counters into the `store.*` gauge schema —
    /// called by the annotation server right before a `/metrics` scrape
    /// so the storage engine reports next to the pipeline stages.
    pub fn publish_metrics(&self, m: &semitri_obs::StoreMetrics) {
        let s = self.metrics();
        m.trajectories.set(s.trajectories as i64);
        m.episodes.set(s.episodes as i64);
        m.ssts.set(s.ssts as i64);
        m.fix_count.set(s.fix_count as i64);
        m.fix_blocks.set(s.fix_blocks as i64);
        m.fix_raw_bytes.set(s.fix_raw_bytes as i64);
        m.fix_compressed_bytes.set(s.fix_compressed_bytes as i64);
        m.live_tuples.set(s.live_tuples as i64);
        m.dead_tuples.set(s.dead_tuples as i64);
        m.label_bits.set(s.label_bits as i64);
        m.time_queries.set(s.time_queries as i64);
        m.rect_queries.set(s.rect_queries as i64);
        m.olap_queries.set(s.olap_queries as i64);
        m.ep_blocks_checked.set(s.ep_blocks_checked as i64);
        m.ep_blocks_skipped.set(s.ep_blocks_skipped as i64);
        m.log_bytes.set(s.log_bytes as i64);
    }

    /// Current storage/query counters.
    pub fn metrics(&self) -> StoreMetricsSnapshot {
        let inner = self.inner.lock();
        StoreMetricsSnapshot {
            trajectories: inner.metas.len() as u64,
            episodes: inner.episodes.len() as u64,
            ssts: inner.matrix.sst_count() as u64,
            fix_count: inner.fixes.fix_count(),
            fix_blocks: inner.fixes.block_count() as u64,
            fix_raw_bytes: inner.fixes.raw_bytes(),
            fix_compressed_bytes: inner.fixes.compressed_bytes(),
            live_tuples: inner.matrix.live_tuples() as u64,
            dead_tuples: inner.matrix.dead_tuples() as u64,
            label_bits: inner.matrix.label_bits(),
            time_queries: self.counters.time_queries.load(Ordering::Relaxed),
            rect_queries: self.counters.rect_queries.load(Ordering::Relaxed),
            olap_queries: self.counters.olap_queries.load(Ordering::Relaxed),
            ep_blocks_checked: self.counters.blocks_checked.load(Ordering::Relaxed),
            ep_blocks_skipped: self.counters.blocks_skipped.load(Ordering::Relaxed),
            log_bytes: self.log_size().unwrap_or(0),
        }
    }
}

impl SemanticTrajectoryStore {
    /// Rewrites the durable log to contain exactly the current state
    /// (dropping superseded SST versions), atomically replacing the
    /// file. No-op for in-memory stores.
    ///
    /// # Errors
    /// Fails on I/O errors; the original log is left untouched on failure.
    pub fn compact(&self) -> Result<(), StoreError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let Some(log) = &self.log else {
            return Ok(());
        };
        let tmp = path.with_extension("stlog.tmp");
        {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            let inner = self.inner.lock();
            {
                let mut enc = Encoder::new(&mut writer);
                enc.u32(MAGIC)?;
                enc.u8(VERSION)?;
                for m in inner.metas.values() {
                    enc.u8(REC_META)?;
                    enc.u64(m.trajectory_id)?;
                    enc.u64(m.object_id)?;
                    enc.u64(m.record_count)?;
                }
                // episode batches: one record per contiguous trajectory run
                let eps = &inner.episodes;
                let mut i = 0usize;
                while i < eps.len() {
                    let traj = eps.traj[i];
                    let mut j = i;
                    while j < eps.len() && eps.traj[j] == traj {
                        j += 1;
                    }
                    enc.u8(REC_EPISODES2)?;
                    enc.u64(traj)?;
                    enc.seq_len(j - i)?;
                    for k in i..j {
                        enc.u32(eps.index[k])?;
                        enc.u8(eps.kind.get(k) as u8)?;
                        enc.f64(eps.t_start[k])?;
                        enc.f64(eps.t_end[k])?;
                        enc.f64(eps.min_x[k])?;
                        enc.f64(eps.min_y[k])?;
                        enc.f64(eps.max_x[k])?;
                        enc.f64(eps.max_y[k])?;
                        enc.u32(eps.rec_start[k])?;
                        enc.u32(eps.rec_end[k])?;
                    }
                    i = j;
                }
                for (traj, block) in inner.fixes.blocks() {
                    enc.u8(REC_FIXBLOCK)?;
                    enc.u64(*traj)?;
                    enc.bytes(&block.bytes)?;
                }
                let mut ids: Vec<u64> = inner.matrix.trajectory_ids().collect();
                ids.sort_unstable();
                for id in ids {
                    let Some(blob) = inner.matrix.blob_of(id) else {
                        continue;
                    };
                    enc.u8(REC_SST)?;
                    enc.raw(blob)?;
                    if let Some(layers) = inner.matrix.layers_of(id) {
                        enc.u8(REC_LAYERS)?;
                        enc.u64(id)?;
                        enc.seq_len(layers.len())?;
                        for l in &layers {
                            encode_layer_row(&mut enc, l)?;
                        }
                    }
                }
            }
            writer.flush()?;
            writer.get_ref().sync_data()?;
        }
        // swap in the compacted log under the writer lock so concurrent
        // appends cannot interleave with the rename
        let mut guard = log.lock();
        guard.flush()?;
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        *guard = BufWriter::new(file);
        Ok(())
    }

    /// Size of the durable log in bytes (`None` for in-memory stores).
    pub fn log_size(&self) -> Option<u64> {
        let path = self.path.as_ref()?;
        std::fs::metadata(path).ok().map(|m| m.len())
    }
}

/// Default layer rows for an SST stored without pipeline context.
fn default_layer_rows(sst: &StructuredSemanticTrajectory) -> Vec<TupleLayers> {
    sst.tuples.iter().map(TupleLayers::derive_default).collect()
}

/// Derives per-tuple layer rows from a pipeline output: aligns each SST
/// tuple with its source episode (stop tuples map 1:1; move tuples map
/// one-per-mode-leg), takes the episode kind and the tuple's record
/// range, the road class of the leg's dominant matched segment, and the
/// dominant landuse category under the covered records.
pub fn derive_tuple_layers(out: &PipelineOutput, net: &RoadNetwork) -> Vec<TupleLayers> {
    const EPS: f64 = 1e-6;
    let mut layers = Vec::with_capacity(out.sst.tuples.len());
    let mut ep_idx = 0usize;
    for t in &out.sst.tuples {
        while ep_idx + 1 < out.episodes.len()
            && t.span.end.0 > out.episodes[ep_idx].span.end.0 + EPS
        {
            ep_idx += 1;
        }
        let Some(ep) = out.episodes.get(ep_idx) else {
            layers.push(TupleLayers::derive_default(t));
            continue;
        };
        let mut rec_lo = ep.start;
        let mut rec_hi = ep.end;
        let mut road_class = None;
        if ep.kind == EpisodeKind::Move {
            let entries = out
                .move_routes
                .iter()
                .find(|(i, _)| *i == ep_idx)
                .map(|(_, e)| e.as_slice())
                .unwrap_or(&[]);
            let leg: Vec<_> = entries
                .iter()
                .filter(|e| {
                    e.span.start.0 >= t.span.start.0 - EPS && e.span.end.0 <= t.span.end.0 + EPS
                })
                .collect();
            if let Some(longest) = leg.iter().max_by_key(|e| e.end - e.start) {
                road_class = Some(net.segment(longest.segment).class);
                let lo = leg.iter().map(|e| e.start).min().expect("leg nonempty");
                let hi = leg.iter().map(|e| e.end).max().expect("leg nonempty");
                rec_lo = ep.start + lo;
                rec_hi = (ep.start + hi).min(ep.end);
            }
        }
        // dominant landuse category by record overlap with the region
        // tuples (Algorithm 1 output)
        let mut best: Option<(usize, LanduseCategory)> = None;
        for rt in &out.region_tuples {
            let Some(cat) = rt.category else { continue };
            let lo = rt.start.max(rec_lo);
            let hi = rt.end.min(rec_hi);
            if hi > lo && best.is_none_or(|(b, _)| hi - lo > b) {
                best = Some((hi - lo, cat));
            }
        }
        layers.push(TupleLayers {
            kind: ep.kind,
            road_class,
            landuse: best.map(|(_, c)| c),
            records: rec_hi.saturating_sub(rec_lo).min(u32::MAX as usize) as u32,
        });
    }
    layers
}

/// Aggregate tuple counts per annotation value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnotationStats {
    /// Tuple counts per transport mode, indexed like [`TransportMode::ALL`].
    pub mode_tuples: [usize; 5],
    /// Tuple counts per activity category, indexed like
    /// [`PoiCategory::ALL`].
    pub activity_tuples: [usize; 5],
}

impl AnnotationStats {
    /// Tuple count of a transport mode.
    pub fn mode(&self, m: TransportMode) -> usize {
        self.mode_tuples[mode_code(m) as usize]
    }

    /// Tuple count of an activity category.
    pub fn activity(&self, c: PoiCategory) -> usize {
        self.activity_tuples[c.ordinal()]
    }
}

fn encode_layer_row(enc: &mut Encoder<impl Write>, l: &TupleLayers) -> io::Result<()> {
    enc.u8(match l.kind {
        EpisodeKind::Stop => 0,
        EpisodeKind::Move => 1,
    })?;
    enc.u8(l.road_class.map_or(0, |c| c.ordinal() as u8 + 1))?;
    enc.u8(l.landuse.map_or(0, |c| c.ordinal() as u8 + 1))?;
    enc.u32(l.records)
}

fn decode_layer_row(dec: &mut Decoder<impl io::Read>) -> Result<TupleLayers, StoreError> {
    let kind = match dec.u8()? {
        0 => EpisodeKind::Stop,
        1 => EpisodeKind::Move,
        k => return Err(StoreError::Corrupt(format!("bad layer kind {k}"))),
    };
    let road_class = match dec.u8()? {
        0 => None,
        c => Some(
            RoadClass::ALL
                .get(c as usize - 1)
                .copied()
                .ok_or_else(|| StoreError::Corrupt(format!("bad road class {c}")))?,
        ),
    };
    let landuse = match dec.u8()? {
        0 => None,
        c => Some(
            LanduseCategory::ALL
                .get(c as usize - 1)
                .copied()
                .ok_or_else(|| StoreError::Corrupt(format!("bad landuse {c}")))?,
        ),
    };
    let records = dec.u32()?;
    Ok(TupleLayers {
        kind,
        road_class,
        landuse,
        records,
    })
}

/// Encodes everything of an SST record after the `REC_SST` tag.
fn encode_sst_body(
    enc: &mut Encoder<impl Write>,
    sst: &StructuredSemanticTrajectory,
) -> io::Result<()> {
    enc.u64(sst.trajectory_id)?;
    enc.u64(sst.object_id)?;
    enc.seq_len(sst.tuples.len())?;
    for t in &sst.tuples {
        match &t.place {
            None => enc.u8(0)?,
            Some(p) => {
                enc.u8(1)?;
                enc.u8(match p.kind {
                    PlaceKind::Region => 0,
                    PlaceKind::Line => 1,
                    PlaceKind::Point => 2,
                })?;
                enc.u64(p.id)?;
                enc.string(&p.label)?;
            }
        }
        enc.f64(t.span.start.0)?;
        enc.f64(t.span.end.0)?;
        enc.seq_len(t.annotations.len())?;
        for a in &t.annotations {
            enc.string(&a.key)?;
            match &a.value {
                AnnotationValue::Mode(m) => {
                    enc.u8(0)?;
                    enc.u8(mode_code(*m))?;
                }
                AnnotationValue::Activity(c) => {
                    enc.u8(1)?;
                    enc.u8(c.ordinal() as u8)?;
                }
                AnnotationValue::Text(s) => {
                    enc.u8(2)?;
                    enc.string(s)?;
                }
                AnnotationValue::Number(n) => {
                    enc.u8(3)?;
                    enc.f64(*n)?;
                }
            }
        }
    }
    Ok(())
}

/// Decodes an SST record body (everything after the `REC_SST` tag).
fn decode_sst_body(
    dec: &mut Decoder<impl io::Read>,
) -> Result<StructuredSemanticTrajectory, StoreError> {
    let trajectory_id = dec.u64()?;
    let object_id = dec.u64()?;
    let n = dec.seq_len()?;
    let mut tuples = Vec::with_capacity(seq_capacity(n, std::mem::size_of::<SemanticTuple>()));
    for _ in 0..n {
        let place = match dec.u8()? {
            0 => None,
            1 => {
                let kind = match dec.u8()? {
                    0 => PlaceKind::Region,
                    1 => PlaceKind::Line,
                    2 => PlaceKind::Point,
                    k => return Err(StoreError::Corrupt(format!("bad place kind {k}"))),
                };
                let id = dec.u64()?;
                let label = dec.string()?;
                Some(PlaceRef::new(kind, id, label))
            }
            k => return Err(StoreError::Corrupt(format!("bad place tag {k}"))),
        };
        let start = dec.f64()?;
        let end = dec.f64()?;
        if end < start {
            return Err(StoreError::Corrupt("tuple span reversed".to_string()));
        }
        let n_ann = dec.seq_len()?;
        let mut annotations =
            Vec::with_capacity(seq_capacity(n_ann, std::mem::size_of::<Annotation>()));
        for _ in 0..n_ann {
            let key = dec.string()?;
            let value = match dec.u8()? {
                0 => AnnotationValue::Mode(mode_from(dec.u8()?)?),
                1 => {
                    let ord = dec.u8()? as usize;
                    let cat = PoiCategory::ALL
                        .get(ord)
                        .copied()
                        .ok_or_else(|| StoreError::Corrupt(format!("bad category {ord}")))?;
                    AnnotationValue::Activity(cat)
                }
                2 => AnnotationValue::Text(dec.string()?),
                3 => AnnotationValue::Number(dec.f64()?),
                k => return Err(StoreError::Corrupt(format!("bad annotation tag {k}"))),
            };
            annotations.push(Annotation::new(key, value));
        }
        tuples.push(SemanticTuple {
            place,
            span: TimeSpan::new(Timestamp(start), Timestamp(end)),
            annotations,
        });
    }
    Ok(StructuredSemanticTrajectory {
        object_id,
        trajectory_id,
        tuples,
    })
}

fn mode_code(m: TransportMode) -> u8 {
    TransportMode::ALL
        .iter()
        .position(|&x| x == m)
        .expect("mode in ALL") as u8
}

fn mode_from(code: u8) -> Result<TransportMode, StoreError> {
    TransportMode::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| StoreError::Corrupt(format!("bad mode code {code}")))
}

fn replay(path: &Path, inner: &mut Inner) -> Result<(), StoreError> {
    let file = File::open(path)?;
    let mut dec = Decoder::new(BufReader::new(file));
    let magic = dec
        .u32()
        .map_err(|_| StoreError::Corrupt("missing header".to_string()))?;
    if magic != MAGIC {
        return Err(StoreError::Corrupt("bad magic".to_string()));
    }
    let version = dec.u8()?;
    if version == 0 || version > VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    loop {
        let tag = match dec.u8() {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        };
        match tag {
            REC_META => {
                let trajectory_id = dec.u64()?;
                let object_id = dec.u64()?;
                let record_count = dec.u64()?;
                inner.metas.insert(
                    trajectory_id,
                    TrajectoryMeta {
                        trajectory_id,
                        object_id,
                        record_count,
                    },
                );
            }
            REC_EPISODE => {
                // v1 single-episode record: no record range was stored
                let trajectory_id = dec.u64()?;
                let index = dec.u32()?;
                let kind = match dec.u8()? {
                    0 => EpisodeKind::Stop,
                    1 => EpisodeKind::Move,
                    k => return Err(StoreError::Corrupt(format!("bad episode kind {k}"))),
                };
                let start = dec.f64()?;
                let end = dec.f64()?;
                if end < start {
                    return Err(StoreError::Corrupt("episode span reversed".to_string()));
                }
                let bbox = Rect {
                    min_x: dec.f64()?,
                    min_y: dec.f64()?,
                    max_x: dec.f64()?,
                    max_y: dec.f64()?,
                };
                inner.episodes.push(
                    trajectory_id,
                    index,
                    kind,
                    TimeSpan::new(Timestamp(start), Timestamp(end)),
                    bbox,
                    0,
                    0,
                );
            }
            REC_EPISODES2 => {
                let trajectory_id = dec.u64()?;
                let n = dec.seq_len()?;
                for _ in 0..n {
                    let index = dec.u32()?;
                    let kind = match dec.u8()? {
                        0 => EpisodeKind::Stop,
                        1 => EpisodeKind::Move,
                        k => return Err(StoreError::Corrupt(format!("bad episode kind {k}"))),
                    };
                    let start = dec.f64()?;
                    let end = dec.f64()?;
                    if end < start {
                        return Err(StoreError::Corrupt("episode span reversed".to_string()));
                    }
                    let bbox = Rect {
                        min_x: dec.f64()?,
                        min_y: dec.f64()?,
                        max_x: dec.f64()?,
                        max_y: dec.f64()?,
                    };
                    let rec_start = dec.u32()?;
                    let rec_end = dec.u32()?;
                    inner.episodes.push(
                        trajectory_id,
                        index,
                        kind,
                        TimeSpan::new(Timestamp(start), Timestamp(end)),
                        bbox,
                        rec_start,
                        rec_end,
                    );
                }
            }
            REC_SST => {
                let sst = decode_sst_body(&mut dec)?;
                let mut blob = Vec::new();
                {
                    let mut enc = Encoder::new(&mut blob);
                    encode_sst_body(&mut enc, &sst)?;
                }
                let layers = default_layer_rows(&sst);
                inner.matrix.insert(&sst, &layers, blob);
            }
            REC_LAYERS => {
                let trajectory_id = dec.u64()?;
                let n = dec.seq_len()?;
                let mut layers = Vec::with_capacity(seq_capacity(n, 8));
                for _ in 0..n {
                    layers.push(decode_layer_row(&mut dec)?);
                }
                if !inner.matrix.patch_layers(trajectory_id, &layers) {
                    return Err(StoreError::Corrupt(format!(
                        "layer record for missing/mismatched sst {trajectory_id}"
                    )));
                }
            }
            REC_FIXBLOCK => {
                let trajectory_id = dec.u64()?;
                let bytes = dec.bytes()?;
                if bytes.len() > MAX_FIXBLOCK_BYTES {
                    return Err(StoreError::Corrupt("oversized fix block".to_string()));
                }
                let block = FixBlock::from_bytes(bytes)
                    .map_err(|e| StoreError::Corrupt(format!("bad fix block: {e}")))?;
                inner.fixes.push_block(trajectory_id, block);
            }
            t => return Err(StoreError::Corrupt(format!("unknown record tag {t}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::Point;

    fn episode(kind: EpisodeKind, t0: f64, t1: f64, x: f64) -> Episode {
        Episode {
            kind,
            start: 0,
            end: 1,
            span: TimeSpan::new(Timestamp(t0), Timestamp(t1)),
            bbox: Rect::new(x, 0.0, x + 10.0, 10.0),
            center: Point::new(x + 5.0, 5.0),
        }
    }

    fn sample_sst(id: u64) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 9,
            trajectory_id: id,
            tuples: vec![
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Region, 4, "home")),
                    span: TimeSpan::new(Timestamp(0.0), Timestamp(100.0)),
                    annotations: vec![Annotation::activity(PoiCategory::PersonLife)],
                },
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Line, 11, "Rue R4")),
                    span: TimeSpan::new(Timestamp(100.0), Timestamp(200.0)),
                    annotations: vec![
                        Annotation::mode(TransportMode::Metro),
                        Annotation::new("avg_speed", AnnotationValue::Number(15.5)),
                        Annotation::new("note", AnnotationValue::Text("rush hour".to_string())),
                    ],
                },
                SemanticTuple {
                    place: None,
                    span: TimeSpan::new(Timestamp(200.0), Timestamp(300.0)),
                    annotations: vec![],
                },
            ],
        }
    }

    #[test]
    fn in_memory_crud() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 9,
                record_count: 500,
            })
            .unwrap();
        store
            .put_episodes(1, &[episode(EpisodeKind::Stop, 0.0, 100.0, 0.0)])
            .unwrap();
        store.put_sst(&sample_sst(1)).unwrap();

        assert_eq!(store.counts(), (1, 1, 1));
        assert_eq!(store.get_trajectory(1).unwrap().record_count, 500);
        assert_eq!(store.get_sst(1).unwrap(), sample_sst(1));
        assert_eq!(store.trajectories_of(9), vec![1]);
        assert!(store.trajectories_of(404).is_empty());
    }

    #[test]
    fn unknown_trajectory_rejected() {
        let store = SemanticTrajectoryStore::in_memory();
        let err = store
            .put_episodes(99, &[episode(EpisodeKind::Stop, 0.0, 1.0, 0.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::UnknownTrajectory(99)));
        assert!(store.put_sst(&sample_sst(99)).is_err());
        assert!(store
            .put_fixes(99, &[GpsRecord::new(Point::ORIGIN, Timestamp(0.0))])
            .is_err());
    }

    #[test]
    fn time_and_space_queries() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 10,
            })
            .unwrap();
        store
            .put_episodes(
                1,
                &[
                    episode(EpisodeKind::Stop, 0.0, 100.0, 0.0),
                    episode(EpisodeKind::Move, 100.0, 200.0, 500.0),
                    episode(EpisodeKind::Stop, 200.0, 300.0, 1_000.0),
                ],
            )
            .unwrap();

        let in_time = store.episodes_in_time(TimeSpan::new(Timestamp(150.0), Timestamp(250.0)));
        assert_eq!(in_time.len(), 2);

        let in_space = store.episodes_in_rect(&Rect::new(400.0, 0.0, 600.0, 10.0));
        assert_eq!(in_space.len(), 1);
        assert_eq!(in_space[0].kind, EpisodeKind::Move);
    }

    #[test]
    fn degenerate_windows_return_empty_without_scanning() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 10,
            })
            .unwrap();
        store
            .put_episodes(1, &[episode(EpisodeKind::Stop, 0.0, 100.0, 0.0)])
            .unwrap();
        let before = store.metrics().ep_blocks_checked;
        // inverted time window (constructed literally — TimeSpan::new
        // would reject it)
        let inverted = TimeSpan {
            start: Timestamp(50.0),
            end: Timestamp(10.0),
        };
        assert!(store.episodes_in_time(inverted).is_empty());
        assert!(store.episodes_in_rect(&Rect::EMPTY).is_empty());
        assert_eq!(
            store.metrics().ep_blocks_checked,
            before,
            "degenerate windows must not touch blocks"
        );
    }

    #[test]
    fn scratch_variants_reuse_buffer() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 10,
            })
            .unwrap();
        store
            .put_episodes(
                1,
                &[
                    episode(EpisodeKind::Stop, 0.0, 100.0, 0.0),
                    episode(EpisodeKind::Move, 100.0, 200.0, 500.0),
                ],
            )
            .unwrap();
        let mut buf = Vec::new();
        store.episodes_in_time_with(TimeSpan::new(Timestamp(0.0), Timestamp(50.0)), &mut buf);
        assert_eq!(buf.len(), 1);
        store.episodes_in_time_with(TimeSpan::new(Timestamp(0.0), Timestamp(300.0)), &mut buf);
        assert_eq!(buf.len(), 2, "buffer cleared between queries");
        let mut n = 0usize;
        store.for_each_episode_in_rect(&Rect::new(-1.0, -1.0, 2_000.0, 20.0), |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn durable_roundtrip() {
        let dir = std::env::temp_dir().join(format!("semitri-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.stlog");
        let _ = std::fs::remove_file(&path);

        {
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: 7,
                    object_id: 2,
                    record_count: 42,
                })
                .unwrap();
            store
                .put_episodes(
                    7,
                    &[
                        episode(EpisodeKind::Stop, 0.0, 60.0, 0.0),
                        episode(EpisodeKind::Move, 60.0, 120.0, 100.0),
                    ],
                )
                .unwrap();
            store.put_sst(&sample_sst(7)).unwrap();
        }

        // reopen and verify replay
        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        assert_eq!(store.counts(), (1, 2, 1));
        assert_eq!(store.get_sst(7).unwrap(), sample_sst(7));
        assert_eq!(store.get_trajectory(7).unwrap().record_count, 42);
        let eps = store.episodes_in_time(TimeSpan::new(Timestamp(0.0), Timestamp(30.0)));
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Stop);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_fixes_roundtrip() {
        let dir = std::env::temp_dir().join(format!("semitri-store-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixes.stlog");
        let _ = std::fs::remove_file(&path);

        let fixes: Vec<GpsRecord> = (0..700)
            .map(|i| {
                GpsRecord::new(
                    Point::new(i as f64 * 2.5, 1_000.0 - i as f64),
                    Timestamp(i as f64),
                )
            })
            .collect();
        {
            let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: 3,
                    object_id: 1,
                    record_count: fixes.len() as u64,
                })
                .unwrap();
            store.put_fixes(3, &fixes).unwrap();
        }
        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        let back = store.get_fixes(3).unwrap();
        assert_eq!(back.len(), fixes.len());
        for (a, b) in fixes.iter().zip(&back) {
            assert_eq!(a.t.0.to_bits(), b.t.0.to_bits(), "timestamps exact");
            assert!((a.point.x - b.point.x).abs() <= 0.005 + 1e-9);
            assert!((a.point.y - b.point.y).abs() <= 0.005 + 1e-9);
        }
        let m = store.metrics();
        assert_eq!(m.fix_count, 700);
        assert!(m.fix_compressed_bytes < m.fix_raw_bytes / 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_log_detected() {
        let dir = std::env::temp_dir().join(format!("semitri-store-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.stlog");
        std::fs::write(&path, b"not a store log at all").unwrap();
        let err = SemanticTrajectoryStore::open_durable(&path)
            .err()
            .expect("corrupt");
        assert!(matches!(err, StoreError::Corrupt(_)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sst_overwrite_replaces() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 1,
            })
            .unwrap();
        store.put_sst(&sample_sst(1)).unwrap();
        let mut v2 = sample_sst(1);
        v2.tuples.truncate(1);
        store.put_sst(&v2).unwrap();
        assert_eq!(store.get_sst(1).unwrap().len(), 1);
    }

    #[test]
    fn layer_mismatch_rejected() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 1,
            })
            .unwrap();
        let err = store.put_sst_with_layers(&sample_sst(1), &[]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::LayerMismatch {
                expected: 3,
                got: 0
            }
        ));
    }

    #[test]
    fn block_skipping_observed_on_disjoint_windows() {
        let store = SemanticTrajectoryStore::in_memory();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 10,
            })
            .unwrap();
        // two full blocks: first covers t∈[0,512), second t∈[512,1024)
        let eps: Vec<Episode> = (0..512)
            .map(|i| {
                episode(
                    EpisodeKind::Stop,
                    i as f64 * 2.0,
                    i as f64 * 2.0 + 1.0,
                    i as f64,
                )
            })
            .collect();
        store.put_episodes(1, &eps).unwrap();
        let hits = store.episodes_in_time(TimeSpan::new(Timestamp(900.0), Timestamp(901.0)));
        assert!(!hits.is_empty());
        let m = store.metrics();
        assert_eq!(m.ep_blocks_checked, 2);
        assert_eq!(m.ep_blocks_skipped, 1, "first block skipped by summary");
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use semitri_geo::Point;

    fn sample_sst(id: u64, tuples: usize) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: id,
            tuples: (0..tuples)
                .map(|i| SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Region, i as u64, "cell")),
                    span: TimeSpan::new(Timestamp(i as f64), Timestamp(i as f64 + 1.0)),
                    annotations: vec![Annotation::mode(TransportMode::Walk)],
                })
                .collect(),
        }
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let dir = std::env::temp_dir().join(format!("semitri-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.stlog");
        let _ = std::fs::remove_file(&path);

        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 100,
            })
            .unwrap();
        // overwrite the same SST many times: the log accumulates versions
        for k in 1..=20 {
            store.put_sst(&sample_sst(1, k)).unwrap();
        }
        let before = store.log_size().unwrap();
        store.compact().unwrap();
        let after = store.log_size().unwrap();
        assert!(after < before, "compaction {before} -> {after}");

        // state survives compaction and subsequent appends
        store.put_sst(&sample_sst(1, 3)).unwrap();
        drop(store);
        let reopened = SemanticTrajectoryStore::open_durable(&path).unwrap();
        assert_eq!(reopened.get_sst(1).unwrap().len(), 3);
        assert_eq!(reopened.counts().0, 1);

        let _ = Point::ORIGIN;
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_reclaims_tombstoned_tuples() {
        let dir = std::env::temp_dir().join(format!("semitri-compact-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.stlog");
        let _ = std::fs::remove_file(&path);

        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: 1,
                object_id: 1,
                record_count: 100,
            })
            .unwrap();
        for k in 1..=5 {
            store.put_sst(&sample_sst(1, k)).unwrap();
        }
        assert!(store.metrics().dead_tuples > 0);
        store.compact().unwrap();
        drop(store);
        let reopened = SemanticTrajectoryStore::open_durable(&path).unwrap();
        assert_eq!(reopened.metrics().dead_tuples, 0);
        assert_eq!(reopened.get_sst(1).unwrap().len(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_in_memory_is_noop() {
        let store = SemanticTrajectoryStore::in_memory();
        store.compact().unwrap();
        assert_eq!(store.log_size(), None);
    }
}

#[cfg(test)]
mod annotation_query_tests {
    use super::*;
    use semitri_geo::Point;

    fn sst(id: u64, mode: TransportMode, act: PoiCategory) -> StructuredSemanticTrajectory {
        StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: id,
            tuples: vec![
                SemanticTuple {
                    place: None,
                    span: TimeSpan::new(Timestamp(0.0), Timestamp(10.0)),
                    annotations: vec![Annotation::mode(mode)],
                },
                SemanticTuple {
                    place: Some(PlaceRef::new(PlaceKind::Point, 3, "poi")),
                    span: TimeSpan::new(Timestamp(10.0), Timestamp(20.0)),
                    annotations: vec![Annotation::activity(act)],
                },
            ],
        }
    }

    fn store_with(ssts: &[StructuredSemanticTrajectory]) -> SemanticTrajectoryStore {
        let store = SemanticTrajectoryStore::in_memory();
        for s in ssts {
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: s.trajectory_id,
                    object_id: s.object_id,
                    record_count: 10,
                })
                .unwrap();
            store.put_sst(s).unwrap();
        }
        let _ = Point::ORIGIN;
        store
    }

    #[test]
    fn query_by_mode_and_activity() {
        let store = store_with(&[
            sst(1, TransportMode::Metro, PoiCategory::Feedings),
            sst(2, TransportMode::Walk, PoiCategory::ItemSale),
            sst(3, TransportMode::Metro, PoiCategory::ItemSale),
        ]);
        assert_eq!(store.ssts_with_mode(TransportMode::Metro), vec![1, 3]);
        assert_eq!(store.ssts_with_mode(TransportMode::Bus), Vec::<u64>::new());
        assert_eq!(store.ssts_with_activity(PoiCategory::ItemSale), vec![2, 3]);
    }

    #[test]
    fn aggregate_statistics() {
        let store = store_with(&[
            sst(1, TransportMode::Metro, PoiCategory::Feedings),
            sst(2, TransportMode::Metro, PoiCategory::ItemSale),
        ]);
        let stats = store.annotation_statistics();
        assert_eq!(stats.mode(TransportMode::Metro), 2);
        assert_eq!(stats.mode(TransportMode::Walk), 0);
        assert_eq!(stats.activity(PoiCategory::Feedings), 1);
        assert_eq!(stats.activity(PoiCategory::ItemSale), 1);
    }

    #[test]
    fn statistics_empty_store() {
        let store = SemanticTrajectoryStore::in_memory();
        let stats = store.annotation_statistics();
        assert_eq!(stats, AnnotationStats::default());
    }

    #[test]
    fn olap_poi_ranks_and_default_layers() {
        let store = store_with(&[
            sst(1, TransportMode::Metro, PoiCategory::Feedings),
            sst(2, TransportMode::Walk, PoiCategory::ItemSale),
        ]);
        // both SSTs stop at POI id=3 labeled "poi"
        let ranks = store.top_poi_visits(5);
        assert_eq!(ranks.len(), 1);
        assert_eq!(ranks[0].place_id, 3);
        assert_eq!(ranks[0].visits, 2);
        assert_eq!(ranks[0].label, "poi");
    }
}
