//! KML export of annotated trajectories.
//!
//! Stands in for the paper's web interface \[31\]: the experiments there
//! render trajectories and their annotations as KML in Google Earth
//! (Figs. 15–16). This module writes the same information as plain KML
//! text so any geo viewer can display the results.

use semitri_core::model::{AnnotationValue, StructuredSemanticTrajectory};
use semitri_data::RawTrajectory;
use semitri_geo::{GeoPoint, LocalProjection};
use std::fmt::Write as _;

/// Escapes the five XML special characters.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

/// Renders a raw trajectory as a KML `LineString` placemark. `projection`
/// converts the local planar coordinates back to WGS-84.
pub fn raw_trajectory_kml(traj: &RawTrajectory, projection: &LocalProjection) -> String {
    let mut coords = String::new();
    for r in traj.records() {
        let g: GeoPoint = projection.to_geo(r.point);
        let _ = write!(coords, "{:.6},{:.6},0 ", g.lon, g.lat);
    }
    format!(
        "<Placemark>\n  <name>trajectory {} (object {})</name>\n  <LineString><coordinates>{}</coordinates></LineString>\n</Placemark>",
        traj.trajectory_id,
        traj.object_id,
        coords.trim_end()
    )
}

/// Renders a structured semantic trajectory as a KML folder: one placemark
/// per episode tuple with its place label and annotations in the
/// description — the textual equivalent of the paper's Fig. 15(d) table.
pub fn sst_kml(sst: &StructuredSemanticTrajectory) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<Folder>\n  <name>semantic trajectory {} (object {})</name>",
        sst.trajectory_id, sst.object_id
    );
    for (i, t) in sst.tuples.iter().enumerate() {
        let place = t
            .place
            .as_ref()
            .map(|p| xml_escape(&p.label))
            .unwrap_or_else(|| "?".to_string());
        let mut desc = format!("{} – {}", t.span.start, t.span.end);
        for a in &t.annotations {
            let v = match &a.value {
                AnnotationValue::Mode(m) => m.label().to_string(),
                AnnotationValue::Activity(c) => c.label().to_string(),
                AnnotationValue::Text(s) => xml_escape(s),
                AnnotationValue::Number(n) => format!("{n:.3}"),
            };
            let _ = write!(desc, "; {}={}", xml_escape(&a.key), v);
        }
        let _ = writeln!(
            out,
            "  <Placemark>\n    <name>{i}: {place}</name>\n    <description>{desc}</description>\n  </Placemark>"
        );
    }
    out.push_str("</Folder>");
    out
}

/// Wraps placemark fragments into a complete KML document.
pub fn kml_document(name: &str, fragments: &[String]) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<kml xmlns=\"http://www.opengis.net/kml/2.2\">\n<Document>\n");
    let _ = writeln!(out, "  <name>{}</name>", xml_escape(name));
    for f in fragments {
        out.push_str(f);
        out.push('\n');
    }
    out.push_str("</Document>\n</kml>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_core::model::{Annotation, PlaceKind, PlaceRef, SemanticTuple};
    use semitri_data::{GpsRecord, TransportMode};
    use semitri_geo::{Point, TimeSpan, Timestamp};

    #[test]
    fn raw_kml_contains_coordinates() {
        let proj = LocalProjection::new(GeoPoint::new(6.63, 46.52));
        let traj = RawTrajectory::new(
            3,
            5,
            vec![
                GpsRecord::new(Point::new(0.0, 0.0), Timestamp(0.0)),
                GpsRecord::new(Point::new(1_000.0, 0.0), Timestamp(10.0)),
            ],
        );
        let kml = raw_trajectory_kml(&traj, &proj);
        assert!(kml.contains("<LineString>"));
        assert!(kml.contains("6.630000,46.520000,0"));
        assert!(kml.contains("trajectory 5 (object 3)"));
    }

    #[test]
    fn sst_kml_lists_tuples_with_annotations() {
        let sst = StructuredSemanticTrajectory {
            object_id: 1,
            trajectory_id: 2,
            tuples: vec![SemanticTuple {
                place: Some(PlaceRef::new(PlaceKind::Line, 9, "M1 <metro>")),
                span: TimeSpan::new(Timestamp(0.0), Timestamp(60.0)),
                annotations: vec![Annotation::mode(TransportMode::Metro)],
            }],
        };
        let kml = sst_kml(&sst);
        assert!(kml.contains("M1 &lt;metro&gt;"));
        assert!(kml.contains("mode=metro"));
        assert!(!kml.contains("<metro>"));
    }

    #[test]
    fn document_wraps_fragments() {
        let doc = kml_document("test & demo", &["<Placemark/>".to_string()]);
        assert!(doc.starts_with("<?xml"));
        assert!(doc.contains("test &amp; demo"));
        assert!(doc.contains("<Placemark/>"));
        assert!(doc.ends_with("</kml>\n"));
    }
}
